//! The Workflow Execution Service.
//!
//! The coordinator owns every workflow instance's persistent state: task
//! control blocks ([`crate::state::TaskCb`]) and dependency *facts*, all
//! stored as objects in a [`TxManager`] so that each state transition is
//! an atomic action and a coordinator crash loses nothing committed
//! (paper §3, system-level fault tolerance). It:
//!
//! - evaluates input-set satisfaction and dispatches ready leaf tasks to
//!   executor nodes (one-way `StartTask` / `TaskDone` messages with
//!   watchdog timers — lost executors surface as timeouts),
//! - applies outcomes/aborts/marks/repeats per the Fig. 3 lifecycle,
//! - runs compound-task scopes: inward input propagation, outward output
//!   mappings, scope-level repeat (the Fig. 8 loop) and cancellation,
//! - retries system-level failures with exponential backoff, a bounded
//!   number of times,
//! - recovers all running instances from the write-ahead log after a
//!   crash, re-dispatching whatever was in flight.
//!
//! Re-evaluation is **event-driven**: each committed fact seeds a
//! [`Worklist`] from the plan's reverse dependency edges, so per-commit
//! work scales with the fan-out of the changed task, not the instance
//! size. The full scan survives only for instance start, crash recovery
//! and reconfiguration (where the plan itself changes), and — in debug
//! builds — as a quiescence oracle asserted after every drain. All fact
//! storage runs on dense per-object sub-keys interned per instance (the
//! [`crate::keys::InstanceKeys`] table over the [`crate::facts`]
//! layout): a readiness probe is one point read of exactly the bytes it
//! needs, and no commit or probe on the dispatch hot path decodes a
//! whole record or formats a string.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use flowscript_core::ast::OutputKind;
use flowscript_core::schema::{self, CompiledTask, Schema, TaskBody};
use flowscript_obs::{
    Counter, FlightRecorder, Gauge, Histogram, ObsEventKind, ObserveLevel, Registry,
};
use flowscript_plan::{eval as plan_eval, Plan, TaskId, Worklist};
use flowscript_sim::{Envelope, EventId, NodeId, ReplyToken, SimDuration, World};
use flowscript_tx::{FactKey, ObjectUid, StableStore, StoreKey, TxId, TxManager};

use crate::error::EngineError;
use crate::facts::{self, StoreFacts};
use crate::keys::{cb_uid, InstanceKeys};
use crate::msg::{EngineMsg, MarkMsg, StartTask, TaskDone, TaskResult};
use crate::reconfig::{self, Reconfig};
use crate::sched::{CostModel, ExecutorSlot, ExecutorSpec, ImplHints, SchedPolicy, Scheduler};
use crate::shard::ShardMap;
use crate::state::{CbState, TaskCb};
use crate::value::ObjectVal;

/// Maximum relays a misdirected message may take before the relay
/// drops it as a routing loop (see [`CoordStats::forward_loops`]).
/// One hop resolves any transient single-rebalance disagreement; four
/// leaves slack for stacked membership changes.
pub const MAX_FORWARD_HOPS: u32 = 4;

/// Tunable engine policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum automatic retries of a system-level failure (§3:
    /// "automatic (finite number of) retries").
    pub max_retries: u32,
    /// Base backoff before the first retry (doubles per retry).
    pub retry_backoff: SimDuration,
    /// Watchdog timeout for a dispatched task (plus any `duration_ms` /
    /// `deadline_ms` hints from the implementation clause).
    pub dispatch_timeout: SimDuration,
    /// Maximum times a task or compound may take a repeat outcome.
    pub max_repeats: u32,
    /// Write a checkpoint and compact the log every this many commits.
    pub checkpoint_every: Option<u64>,
    /// Re-evaluate the whole scope tree after every commit instead of
    /// the reverse-edge worklist. This is the full-scan oracle the
    /// worklist is property-tested against (identical dispatch traces);
    /// production runs leave it off.
    pub full_rescan: bool,
    /// Record every dispatch decision in an in-memory trace
    /// ([`CoordHandle::dispatch_trace`]). Unbounded — for equivalence
    /// tests and diagnostics only; production runs leave it off.
    pub record_dispatches: bool,
    /// How dispatch picks executors. The default honors the
    /// implementation clause's `location`/`priority` hints and tracks
    /// per-executor load; [`SchedPolicy::PathHash`] is the legacy
    /// baseline kept for the `scheduled` bench comparison.
    pub scheduler: SchedPolicy,
    /// Store dependency facts as one encoded record per fact instead of
    /// per-object sub-keys. This is the pre-split baseline the
    /// per-object layout is property-tested against (identical
    /// per-instance outcomes and dispatch traces) and the `fact_reads`
    /// bench baseline; production runs leave it off.
    pub whole_record_facts: bool,
    /// How much the engine observes itself. `Off` (the default) keeps
    /// only the always-on counters behind the public stats getters;
    /// `Metrics` adds the optional histograms (commit-drain length,
    /// dispatch latency, WAL frames per commit, scheduler pick load);
    /// `Trace` adds the per-shard flight recorder of lifecycle events
    /// queryable via [`crate::WorkflowSystem::trace`]. Every hook point
    /// is a branch on this enum, so `Off` costs one compare.
    pub observe: ObserveLevel,
    /// Flight-recorder capacity: the bounded ring keeps at most this
    /// many lifecycle events per shard, evicting oldest-first (the
    /// newest events of every instance survive). Only read when
    /// [`EngineConfig::observe`] is [`ObserveLevel::Trace`].
    pub recorder_capacity: usize,
    /// Group-commit batching of executor reports (see [`CommitBatch`]).
    /// Defaults on; [`CommitBatch::disabled`] reproduces the
    /// one-transaction-per-event pipeline as the baseline arm.
    pub commit_batch: CommitBatch,
    /// Feed observed completion times back into scheduling: the
    /// per-shard [`CostModel`] EWMA overrides absent-or-wrong declared
    /// `duration_ms` in load accounting and (never below the declared
    /// floor) in watchdog deadline math. Defaults on; the static-hints
    /// baseline (`false`) is the comparison arm of the `adaptive`
    /// bench variant.
    pub cost_feedback: bool,
    /// Per-shard admission cap: at most this many live (non-terminal)
    /// instances at once. Excess `StartInstance` RPCs park in a
    /// bounded admission queue and admit as instances terminate;
    /// `None` (the default) keeps the legacy unbounded behaviour.
    /// Direct in-process starts ([`CoordHandle::start_instance`])
    /// bypass admission — the cap governs the RPC surface.
    pub max_inflight_instances: Option<usize>,
    /// Admission-queue bound: once [`EngineConfig::max_inflight_instances`]
    /// is reached *and* this many starts are already queued, further
    /// `StartInstance` RPCs are turned away with a typed
    /// [`EngineMsg::Busy`] the client retries with backoff.
    pub admission_queue_limit: usize,
    /// Auto-tune the group-commit window between this floor and
    /// [`CommitBatch::max_window`] from the observed report arrival
    /// rate: bursts hold the full window (sync amortization), light
    /// load narrows it to this floor (commit latency). `None` (the
    /// default) keeps the static window.
    pub adaptive_min_window: Option<SimDuration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            retry_backoff: SimDuration::from_millis(50),
            dispatch_timeout: SimDuration::from_secs(30),
            max_repeats: 32,
            checkpoint_every: None,
            full_rescan: false,
            record_dispatches: false,
            scheduler: SchedPolicy::default(),
            whole_record_facts: false,
            observe: ObserveLevel::Off,
            recorder_capacity: 4096,
            commit_batch: CommitBatch::default(),
            cost_feedback: true,
            max_inflight_instances: None,
            admission_queue_limit: 64,
            adaptive_min_window: None,
        }
    }
}

/// Knobs of the batched commit pipeline.
///
/// Executor `Done`/`Mark` reports (including ones forwarded from relay
/// shards) buffer in a per-shard window and commit as **one** atomic
/// action: one lock pass over the union of touched keys, one WAL frame
/// ([`flowscript_tx::LogRecord::GroupCommit`]), one readiness
/// re-evaluation seeded from every completed task's consumers. Batching
/// is placement, not semantics — each report still applies exactly the
/// transition it would have alone, and the equivalence suite
/// (`engine/tests/batching.rs`) proves per-instance outcomes identical
/// to the unbatched pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitBatch {
    /// Flush when this many reports are pending. `1` disables batching.
    pub max_events: usize,
    /// Flush at most this long (virtual time) after the first buffered
    /// report. `0` disables batching.
    pub max_window: SimDuration,
}

impl CommitBatch {
    /// The unbatched baseline: every report pays its own transaction,
    /// exactly the pre-batching pipeline.
    pub fn disabled() -> Self {
        Self {
            max_events: 1,
            max_window: SimDuration::ZERO,
        }
    }

    /// Whether reports actually buffer under these knobs.
    pub fn enabled(&self) -> bool {
        self.max_events > 1 && self.max_window > SimDuration::ZERO
    }
}

impl Default for CommitBatch {
    fn default() -> Self {
        Self {
            max_events: 64,
            max_window: SimDuration::from_millis(1),
        }
    }
}

/// A terminated instance's (or compound's) outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Outcome name.
    pub name: String,
    /// Its declared kind (outcome or abort outcome).
    pub kind: OutputKind,
    /// Objects produced with it.
    pub objects: BTreeMap<String, ObjectVal>,
}

/// Where an instance stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Work remains (or is in flight).
    Running,
    /// The root compound terminated.
    Completed(Outcome),
    /// No task can run and the root cannot terminate — the paper's
    /// "failure exceptions from the underlying system".
    Stuck {
        /// Human-readable explanation (failed/waiting tasks).
        reason: String,
    },
}

impl InstanceStatus {
    /// Whether the instance reached a terminal status.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, InstanceStatus::Running)
    }
}

fn kind_discriminant(kind: OutputKind) -> u8 {
    match kind {
        OutputKind::Outcome => 0,
        OutputKind::AbortOutcome => 1,
        OutputKind::RepeatOutcome => 2,
        OutputKind::Mark => 3,
    }
}

fn kind_from(discriminant: u8) -> Result<OutputKind, CodecError> {
    Ok(match discriminant {
        0 => OutputKind::Outcome,
        1 => OutputKind::AbortOutcome,
        2 => OutputKind::RepeatOutcome,
        3 => OutputKind::Mark,
        other => {
            return Err(CodecError::InvalidDiscriminant {
                ty: "OutputKind",
                value: u64::from(other),
            })
        }
    })
}

impl Encode for Outcome {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        w.put_u8(kind_discriminant(self.kind));
        self.objects.encode(w);
    }
}

impl Decode for Outcome {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Outcome {
            name: r.get_str()?.to_owned(),
            kind: kind_from(r.get_u8()?)?,
            objects: BTreeMap::decode(r)?,
        })
    }
}

impl Encode for InstanceStatus {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            InstanceStatus::Running => w.put_u8(0),
            InstanceStatus::Completed(outcome) => {
                w.put_u8(1);
                outcome.encode(w);
            }
            InstanceStatus::Stuck { reason } => {
                w.put_u8(2);
                w.put_str(reason);
            }
        }
    }
}

impl Decode for InstanceStatus {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => InstanceStatus::Running,
            1 => InstanceStatus::Completed(Outcome::decode(r)?),
            2 => InstanceStatus::Stuck {
                reason: r.get_str()?.to_owned(),
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "InstanceStatus",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// Persistent per-instance metadata.
#[derive(Debug, Clone, PartialEq)]
struct InstanceMeta {
    script: String,
    source: String,
    root: String,
    set: String,
    inputs: BTreeMap<String, ObjectVal>,
    status: InstanceStatus,
    reconfig_count: u32,
    /// The dense numeric id all of this instance's fact keys carry.
    instance_id: u32,
    /// The repository version the instance was started from (its "repo
    /// pointer", together with `script`), when started via RPC.
    version: Option<u32>,
    /// Fingerprint of the instance's current compiled plan. Crash
    /// recovery fetches the plan persisted under this fingerprint and
    /// skips the front end entirely.
    plan_fingerprint: u64,
}

impl Encode for InstanceMeta {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.script);
        w.put_str(&self.source);
        w.put_str(&self.root);
        w.put_str(&self.set);
        self.inputs.encode(w);
        self.status.encode(w);
        w.put_u32(self.reconfig_count);
        w.put_u32(self.instance_id);
        self.version.encode(w);
        w.put_u64(self.plan_fingerprint);
    }
}

impl Decode for InstanceMeta {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(InstanceMeta {
            script: r.get_str()?.to_owned(),
            source: r.get_str()?.to_owned(),
            root: r.get_str()?.to_owned(),
            set: r.get_str()?.to_owned(),
            inputs: BTreeMap::decode(r)?,
            status: InstanceStatus::decode(r)?,
            reconfig_count: r.get_u32()?,
            instance_id: r.get_u32()?,
            version: Option::decode(r)?,
            plan_fingerprint: r.get_u64()?,
        })
    }
}

/// Engine counters (diagnostics and benchmarks).
///
/// Since the metrics registry landed this is a *view*: the live values
/// are `coord.*` counters in the shard's [`Registry`], and
/// [`CoordHandle::stats`] materialises them into this struct. The
/// exhaustive-construction there plus the exhaustive destructuring in
/// `AddAssign` keep the view complete by compile error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Task dispatches sent to executors.
    pub dispatches: u64,
    /// Automatic retries of system-level failures.
    pub retries: u64,
    /// Tasks that exhausted their retries.
    pub failures: u64,
    /// Marks published.
    pub marks: u64,
    /// Repeat outcomes taken (leaf + compound).
    pub repeats: u64,
    /// Reconfigurations applied.
    pub reconfigs: u64,
    /// Instances recovered after a coordinator restart.
    pub recovered_instances: u64,
    /// Worklist entries processed (readiness/output re-checks). The
    /// event-driven pipeline keeps this proportional to dependency
    /// fan-out; the full-scan oracle makes it proportional to instance
    /// size.
    pub evaluations: u64,
    /// Misdirected requests this coordinator forwarded to the owning
    /// shard (clients that route via the shard map never cause one).
    pub forwarded: u64,
    /// Retries that had to land back on the node the previous attempt
    /// failed on because no eligible alternative existed (a single
    /// executor, or a `location` pin matching only the failed node).
    pub no_alternative_retries: u64,
    /// Dispatches dropped because the task or its control block
    /// vanished between scheduling and sending (only a mid-flight
    /// reconfiguration can legitimately cause one).
    pub dropped_dispatches: u64,
    /// Instances this coordinator handed off to another shard (the 2PC
    /// moves of live rebalancing, counted at the commit decision).
    pub handoffs: u64,
    /// Forwarded messages dropped at the relay hop cap — two
    /// coordinators whose shard maps disagree (the mid-rebalance state)
    /// would otherwise ping-pong a report forever.
    pub forward_loops: u64,
    /// `StartInstance` RPCs turned away with [`EngineMsg::Busy`]: the
    /// shard was at its admission cap *and* its admission queue was
    /// full (`coord.busy_rejections`).
    pub busy_rejections: u64,
    /// Instances this shard adopted from a *dead* shard's claimed
    /// storage (crash-driven failover; planned hand-offs count under
    /// `handoffs` instead).
    pub adoptions: u64,
}

impl std::ops::AddAssign<&CoordStats> for CoordStats {
    fn add_assign(&mut self, other: &CoordStats) {
        // Exhaustive destructuring: adding a counter without summing it
        // here is a compile error, so sharded aggregates stay complete.
        let CoordStats {
            dispatches,
            retries,
            failures,
            marks,
            repeats,
            reconfigs,
            recovered_instances,
            evaluations,
            forwarded,
            no_alternative_retries,
            dropped_dispatches,
            handoffs,
            forward_loops,
            busy_rejections,
            adoptions,
        } = *other;
        self.dispatches += dispatches;
        self.retries += retries;
        self.failures += failures;
        self.marks += marks;
        self.repeats += repeats;
        self.reconfigs += reconfigs;
        self.recovered_instances += recovered_instances;
        self.evaluations += evaluations;
        self.forwarded += forwarded;
        self.no_alternative_retries += no_alternative_retries;
        self.dropped_dispatches += dropped_dispatches;
        self.handoffs += handoffs;
        self.forward_loops += forward_loops;
        self.busy_rejections += busy_rejections;
        self.adoptions += adoptions;
    }
}

/// The coordinator's handles into the shard [`Registry`]: always-on
/// `coord.*` counters (one per [`CoordStats`] field) plus the optional
/// histograms gated on [`EngineConfig::observe`].
#[derive(Clone)]
struct CoordMetrics {
    dispatches: Counter,
    retries: Counter,
    failures: Counter,
    marks: Counter,
    repeats: Counter,
    reconfigs: Counter,
    recovered_instances: Counter,
    evaluations: Counter,
    forwarded: Counter,
    no_alternative_retries: Counter,
    dropped_dispatches: Counter,
    handoffs: Counter,
    forward_loops: Counter,
    busy_rejections: Counter,
    adoptions: Counter,
    /// Worklist steps per drain-to-quiescence (`coord.commit_drain_len`).
    commit_drain_len: Histogram,
    /// Executor reports coalesced per batch flush (`coord.batch_size`).
    batch_size: Histogram,
    /// Virtual nanoseconds from dispatch send to the executor's
    /// `TaskDone` reply (`coord.dispatch_latency_ns`; timeouts and
    /// cancellations are not replies and do not sample).
    dispatch_latency_ns: Histogram,
    /// The chosen executor's load at each placement decision
    /// (`sched.pick_load`).
    sched_pick_load: Histogram,
    /// Wall-clock nanoseconds one instance was unavailable during a
    /// hand-off move (`coord.handoff_pause_ns`; recorded on the source
    /// shard per committed move).
    handoff_pause_ns: Histogram,
    /// Wall-clock nanoseconds one instance was unavailable during a
    /// planned drain round (`coord.drain_pause_ns`; every instance in
    /// a batched round shares the round's pause, recorded on the
    /// draining shard).
    drain_pause_ns: Histogram,
    /// Virtual nanoseconds a `StartInstance` waited in the admission
    /// queue before being admitted (`sched.admission_wait_ns`).
    admission_wait_ns: Histogram,
    /// Virtual nanoseconds a ready dispatch waited parked behind
    /// saturated executor capacity (`sched.queue_wait_ns`).
    queue_wait_ns: Histogram,
    /// Current capacity-parked dispatch count (`sched.ready_queue_depth`).
    ready_queue_depth: Gauge,
    /// Current admission-queue depth (`coord.admission_queue_depth`).
    admission_queue_depth: Gauge,
}

impl CoordMetrics {
    fn register(registry: &Registry) -> Self {
        CoordMetrics {
            dispatches: registry.counter("coord.dispatches"),
            retries: registry.counter("coord.retries"),
            failures: registry.counter("coord.failures"),
            marks: registry.counter("coord.marks"),
            repeats: registry.counter("coord.repeats"),
            reconfigs: registry.counter("coord.reconfigs"),
            recovered_instances: registry.counter("coord.recovered_instances"),
            evaluations: registry.counter("coord.evaluations"),
            forwarded: registry.counter("coord.forwarded"),
            no_alternative_retries: registry.counter("coord.no_alternative_retries"),
            dropped_dispatches: registry.counter("coord.dropped_dispatches"),
            handoffs: registry.counter("coord.handoffs"),
            forward_loops: registry.counter("coord.forward_loops"),
            busy_rejections: registry.counter("coord.busy_rejections"),
            adoptions: registry.counter("coord.adoptions"),
            commit_drain_len: registry.histogram("coord.commit_drain_len"),
            batch_size: registry.histogram("coord.batch_size"),
            dispatch_latency_ns: registry.histogram("coord.dispatch_latency_ns"),
            sched_pick_load: registry.histogram("sched.pick_load"),
            handoff_pause_ns: registry.histogram("coord.handoff_pause_ns"),
            drain_pause_ns: registry.histogram("coord.drain_pause_ns"),
            admission_wait_ns: registry.histogram("sched.admission_wait_ns"),
            queue_wait_ns: registry.histogram("sched.queue_wait_ns"),
            ready_queue_depth: registry.gauge("sched.ready_queue_depth"),
            admission_queue_depth: registry.gauge("coord.admission_queue_depth"),
        }
    }

    /// The [`CoordStats`] view of the counters. Exhaustive struct
    /// construction: a new counter that is not wired through here is a
    /// compile error.
    fn stats(&self) -> CoordStats {
        CoordStats {
            dispatches: self.dispatches.get(),
            retries: self.retries.get(),
            failures: self.failures.get(),
            marks: self.marks.get(),
            repeats: self.repeats.get(),
            reconfigs: self.reconfigs.get(),
            recovered_instances: self.recovered_instances.get(),
            evaluations: self.evaluations.get(),
            forwarded: self.forwarded.get(),
            no_alternative_retries: self.no_alternative_retries.get(),
            dropped_dispatches: self.dropped_dispatches.get(),
            handoffs: self.handoffs.get(),
            forward_loops: self.forward_loops.get(),
            busy_rejections: self.busy_rejections.get(),
            adoptions: self.adoptions.get(),
        }
    }
}

/// One dispatch decision, in order of occurrence (used by the
/// worklist/full-scan equivalence tests and as a diagnostic trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRecord {
    /// Instance name.
    pub instance: String,
    /// Dispatched task path.
    pub path: String,
    /// Attempt number.
    pub attempt: u32,
    /// The executor node the dispatch was sent to. (The shard/worklist
    /// equivalence tests project this away: per-shard load views make
    /// the *placement* legitimately differ across shard counts while
    /// the `(path, attempt)` sequence stays identical.)
    pub executor: NodeId,
}

/// An executor report buffered in the batch window.
#[derive(Debug)]
enum PendingEvent {
    /// A `TaskDone` report (completion, error or repeat).
    Done(TaskDone),
    /// A mid-task mark emission.
    Mark(MarkMsg),
}

/// The post-commit bookkeeping owed for one report staged into a batch
/// flush: trace event, terminal accounting, watchdog clearance and the
/// readiness seed.
struct StagedEffect {
    instance: String,
    path: String,
    attempt: u32,
    task_id: TaskId,
    /// Trace-event payload (``done `x```, ``aborted `x```, ``mark `x```).
    what: String,
    is_mark: bool,
}

/// What staging one buffered report into the shared batch action
/// concluded.
enum Staging {
    /// Fast path: the transition and its facts are staged in the action.
    Staged(StagedEffect),
    /// The report is stale or a duplicate — exactly what the one-event
    /// path drops on the floor.
    Consumed,
    /// Valid but not batchable (error retries, repeats, undeclared
    /// outputs): run the one-event handler after the batch commits.
    Slow,
    /// A storage fault: abort the whole batch action and fall back to
    /// the one-event pipeline for the entire window.
    Error,
}

/// Scheduler accounting for one outstanding dispatch: where it went,
/// the load cost it was charged at (the unit of remaining-work
/// accounting), the virtual send time (dispatch-latency metric and
/// cost-model sample base) and the implementation code that ran (the
/// [`CostModel`] EWMA key).
#[derive(Debug, Clone)]
struct DispatchedTask {
    node: NodeId,
    cost: u64,
    sent_ns: u64,
    code: String,
}

/// One dispatch parked in the per-shard ready queue because every
/// eligible executor sat at its declared capacity. The path stays in
/// `InstanceRt::in_flight` while parked (stuck detection and crash
/// recovery treat it as outstanding work); the queue itself is
/// volatile — the control block committed `Executing` *before* the
/// park, so recovery re-dispatches (and possibly re-parks) it.
#[derive(Debug, Clone)]
struct ParkedDispatch {
    instance: String,
    path: String,
    attempt: u32,
    inputs: BTreeMap<String, ObjectVal>,
    repeat_objects: BTreeMap<String, ObjectVal>,
    /// Scheduling hints captured at park time (eligibility re-checked
    /// against these when the queue drains).
    hints: ImplHints,
    /// Virtual park time (`sched.queue_wait_ns` sample base).
    parked_ns: u64,
}

/// One `StartInstance` RPC parked in the bounded admission queue until
/// the shard drops below its instance cap. The client's reply token is
/// held open; the reply (Ack or error) goes out when the start finally
/// runs.
struct AdmissionTicket {
    instance: String,
    script: String,
    version: Option<u32>,
    set: String,
    inputs: BTreeMap<String, ObjectVal>,
    token: ReplyToken,
    /// Virtual enqueue time (`sched.admission_wait_ns` sample base).
    enqueued_ns: u64,
}

/// Volatile per-instance runtime state (rebuilt on recovery).
struct InstanceRt {
    /// The hierarchical schema — the input to dynamic reconfiguration.
    /// `None` until first needed: instances started from a
    /// repository-served plan (or recovered from a persisted plan) skip
    /// the front end entirely, and the schema is recompiled from the
    /// persisted source on demand.
    schema: Option<Rc<Schema>>,
    /// The compiled execution plan all hot paths run off (served by the
    /// repository's plan cache, or lowered locally; re-lowered after
    /// each reconfiguration).
    plan: Rc<Plan>,
    /// Interned storage keys: control-block uids formatted once, fact
    /// keys precomputed per plan source (rebuilt with the plan).
    keys: Rc<InstanceKeys>,
    bindings: BTreeMap<String, String>,
    watchdogs: BTreeMap<String, EventId>,
    /// Paths with an outstanding dispatch, scheduled retry or pending
    /// repeat re-execution.
    in_flight: BTreeSet<String>,
    /// The executor each outstanding dispatch was sent to, keyed by
    /// dense plan task id (the last map on the dispatch hot path was
    /// string-keyed until PR 9). Entry inserted when the dispatch
    /// counts, removed exactly when the scheduler load is released.
    dispatched_to: BTreeMap<TaskId, DispatchedTask>,
    /// The node the most recent *failed* attempt of a path ran on;
    /// consumed by the next dispatch so the retry relocates whenever
    /// an eligible alternative exists.
    retry_from: BTreeMap<String, NodeId>,
    /// Control blocks not yet in a terminal state, maintained
    /// incrementally at every transition commit (recounted only on
    /// recovery and reconfiguration). Stuck detection reads this
    /// instead of enumerating the store.
    nonterminal: usize,
}

// ---------------------------------------------------------------------
// Object uid layout (cold paths; facts use dense `FactKey`s).
// ---------------------------------------------------------------------

fn meta_uid(instance: &str) -> ObjectUid {
    ObjectUid::new(format!("inst/{instance}/meta"))
}

fn reconfig_uid(instance: &str, n: u32) -> ObjectUid {
    ObjectUid::new(format!("inst/{instance}/reconfig/{n:08}"))
}

fn bind_uid(instance: &str, code: &str) -> ObjectUid {
    ObjectUid::new(format!("inst/{instance}/bind/{code}"))
}

/// Compiled plans persist once per fingerprint, shared by every
/// instance running that plan; recovery decodes instead of recompiling.
fn plan_uid(fingerprint: u64) -> ObjectUid {
    ObjectUid::new(format!("sys/plan/{fingerprint:016x}"))
}

/// Inverse of [`plan_uid`]: the fingerprint a persisted-plan uid names.
fn plan_uid_fingerprint(uid: &ObjectUid) -> Option<u64> {
    uid.as_str()
        .strip_prefix("sys/plan/")
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
}

/// The persistent instance-id allocator.
fn instance_seq_uid() -> ObjectUid {
    ObjectUid::new("sys/instance_seq")
}

/// Everything one instance move ships from source to destination
/// shard: the moving transaction's identity and the raw committed
/// bytes of the instance's whole keyspace — metadata, control blocks,
/// rebindings, reconfiguration records, the pinned compiled plan and
/// every dependency fact (one contiguous range scan). Produced by
/// [`CoordHandle::handoff_collect`] on the source, consumed by
/// [`CoordHandle::handoff_prepare`] on the destination; fact keys
/// still carry the source shard's dense instance id (the destination
/// re-keys them under its own allocator while staging).
#[derive(Debug, Clone)]
pub struct HandoffPackage {
    /// The move's distributed transaction (2PC, source-coordinated).
    pub tx: TxId,
    /// The instance being moved.
    pub instance: String,
    /// Source coordinator node index — the 2PC coordinator a restarted
    /// destination queries to terminate an in-doubt stage.
    src_node: u32,
    /// The instance's dense fact-key id on the source shard.
    src_instance_id: u32,
    /// Raw committed entries, keyed as the source stored them.
    entries: Vec<(StoreKey, Vec<u8>)>,
}

impl HandoffPackage {
    /// Number of committed entries the package carries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the package carries no entries (it never does for a
    /// real instance — the meta object alone is one entry).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Packages `instance` straight from a dead shard's reopened storage —
/// the collect half of crash-driven adoption. There is no resident
/// runtime to consult, so everything derives from the committed meta:
/// the `inst/{name}/` uid prefix, the plan pinned under the meta's
/// fingerprint, and the dense fact range of the meta's instance id.
/// `src_node` is the dead shard (stamped into the claim trace).
/// Returns `None` for a missing or undecodable meta.
pub(crate) fn package_stored_instance(
    mgr: &TxManager<StableStore>,
    instance: &str,
    tx: TxId,
    src_node: u32,
) -> Option<HandoffPackage> {
    let meta: InstanceMeta = mgr.read_committed(&meta_uid(instance)).ok()??;
    let mut entries: Vec<(StoreKey, Vec<u8>)> = Vec::new();
    for uid in mgr.uids_with_prefix(&format!("inst/{instance}/")) {
        let key = StoreKey::Uid(uid);
        if let Some(bytes) = mgr.read_committed_bytes(&key).map(<[u8]>::to_vec) {
            entries.push((key, bytes));
        }
    }
    let plan_key = StoreKey::Uid(plan_uid(meta.plan_fingerprint));
    if let Some(bytes) = mgr.read_committed_bytes(&plan_key).map(<[u8]>::to_vec) {
        entries.push((plan_key, bytes));
    }
    let lo = FactKey::instance_first(meta.instance_id);
    let hi = FactKey::instance_last(meta.instance_id);
    for fact in mgr.fact_keys_in_range(lo, hi) {
        let key = StoreKey::Fact(fact);
        if let Some(bytes) = mgr.read_committed_bytes(&key).map(<[u8]>::to_vec) {
            entries.push((key, bytes));
        }
    }
    Some(HandoffPackage {
        tx,
        instance: instance.to_string(),
        src_node,
        src_instance_id: meta.instance_id,
        entries,
    })
}

/// The execution service state. Use through [`CoordHandle`].
pub struct Coordinator {
    node: NodeId,
    repo: NodeId,
    /// Load-aware executor selection over the shared fleet (each shard
    /// keeps its own load view; no cross-shard coordination on the
    /// dispatch hot path).
    sched: Scheduler,
    /// Observed-duration feedback: per-code EWMA of real completion
    /// times, sampled at every genuine `TaskDone` release. Volatile by
    /// design (an estimate, not state) — recovery restarts it empty
    /// and the declared hints carry placement until it re-converges.
    costs: CostModel,
    /// Dispatches parked because every eligible executor sat at its
    /// declared capacity, ordered by `(priority desc, arrival)`.
    /// Drained whenever a release frees a slot. Volatile: each parked
    /// path's control block committed `Executing` before the park, so
    /// recovery re-dispatches it.
    parked: BTreeMap<(std::cmp::Reverse<i64>, u64), ParkedDispatch>,
    /// Arrival tie-break for `parked` keys.
    park_seq: u64,
    /// `StartInstance` RPCs waiting out the admission cap, in arrival
    /// order. Bounded by [`EngineConfig::admission_queue_limit`].
    admission_queue: std::collections::VecDeque<AdmissionTicket>,
    /// Live (non-terminal) instances resident on this shard — the
    /// admission-control gauge. Maintained at instance start, terminal
    /// transition, stuck/revive, adoption and hand-off; recounted on
    /// recovery.
    live_instances: usize,
    /// Starts past admission but still in their repository round-trip
    /// (counted so a burst cannot overshoot the cap mid-RPC).
    starting: usize,
    /// Report inter-arrival EWMA in virtual nanoseconds (adaptive
    /// commit-window tuning; `u64::MAX` until the second report).
    arrival_gap_ns: u64,
    /// Virtual time of the last buffered report.
    last_report_ns: u64,
    /// Instance ownership across all coordinator nodes of the system
    /// (shared verbatim by every shard; requests for instances this
    /// node does not own are forwarded to the owner).
    shard: ShardMap,
    /// Where instances this node handed off went — the dual-delivery
    /// relay table for the window between a move's commit and the
    /// rebalance's final map flip, when this node's `shard` map still
    /// claims ownership. Volatile, but rebuilt on recovery from
    /// replayed `HandOffEnd` frames; cleared by the flip
    /// ([`CoordHandle::set_shard_map`]), after which the map itself
    /// routes to the new owner.
    moved: BTreeMap<String, NodeId>,
    config: EngineConfig,
    mgr: TxManager<StableStore>,
    storage: StableStore,
    instances: BTreeMap<String, InstanceRt>,
    commits: u64,
    /// `commits` as of the last checkpoint — the once-per-drain
    /// threshold check works off the delta (see
    /// [`Coordinator::maybe_checkpoint`]).
    commits_at_checkpoint: u64,
    /// Executor reports buffered in the current batch window, in
    /// arrival order. Volatile by design: a crash loses the open window
    /// as a unit, exactly as if the messages were still in the network.
    pending: Vec<PendingEvent>,
    /// Whether a batch-window flush timer is outstanding.
    window_armed: bool,
    /// Next batch id (per-shard; trace events carry it so coalesced
    /// completions are visible in `WorkflowSystem::trace`).
    batch_seq: u64,
    /// The batch id commits currently run under, if a flush is active.
    current_batch: Option<u64>,
    /// Ordered dispatch decisions (equivalence tests, diagnostics).
    dispatch_log: Vec<DispatchRecord>,
    /// This shard's metric registry: `coord.*`, `sched.*`, `tx.*` and
    /// `wal.*` live here. Shared with the [`TxManager`], surviving
    /// crash-recovery reopens.
    registry: Registry,
    /// Counter/histogram handles into `registry`.
    metrics: CoordMetrics,
    /// The shard's flight recorder. Intentionally NOT reset by
    /// [`Coordinator::recover`]: it models an external telemetry sink,
    /// so a trace spans crashes of the coordinator it describes.
    recorder: FlightRecorder,
}

/// A cloneable handle to the coordinator, used by node handlers, timers
/// and the [`crate::WorkflowSystem`] facade.
#[derive(Clone)]
pub struct CoordHandle {
    inner: Rc<RefCell<Coordinator>>,
}

impl Coordinator {
    /// Opens the coordinator over durable `storage` (recovering any
    /// previous state).
    ///
    /// # Errors
    ///
    /// Corrupt storage.
    pub fn open(
        node: NodeId,
        repo: NodeId,
        executors: Vec<NodeId>,
        config: EngineConfig,
        storage: impl Into<StableStore>,
    ) -> Result<Self, EngineError> {
        Self::open_sharded(
            node,
            repo,
            executors.into_iter().map(ExecutorSpec::unbounded).collect(),
            config,
            storage,
            ShardMap::new(vec![node]),
        )
    }

    /// [`Coordinator::open`] for one shard of a multi-coordinator
    /// system: `shard` names every coordinator node (this one
    /// included), and this coordinator serves only the instances the
    /// map assigns to `node`, forwarding the rest. Each executor comes
    /// with its optional `location` label — the scheduler's hard
    /// placement constraint — and its declared capacity.
    ///
    /// # Errors
    ///
    /// Corrupt storage.
    pub fn open_sharded(
        node: NodeId,
        repo: NodeId,
        executors: Vec<ExecutorSpec>,
        config: EngineConfig,
        storage: impl Into<StableStore>,
        shard: ShardMap,
    ) -> Result<Self, EngineError> {
        let storage = storage.into();
        debug_assert!(
            shard.nodes().contains(&node),
            "shard map must include the node"
        );
        let registry = Registry::new();
        let metrics = CoordMetrics::register(&registry);
        let recorder = FlightRecorder::new(node.index() as u32, config.recorder_capacity);
        let mgr = TxManager::open_with_metrics(
            node.index() as u32,
            storage.clone(),
            &registry,
            config.observe,
        )?;
        let sched = Scheduler::new(executors, config.scheduler);
        Ok(Self {
            node,
            repo,
            sched,
            costs: CostModel::new(),
            parked: BTreeMap::new(),
            park_seq: 0,
            admission_queue: std::collections::VecDeque::new(),
            live_instances: 0,
            starting: 0,
            arrival_gap_ns: u64::MAX,
            last_report_ns: 0,
            shard,
            config,
            mgr,
            storage,
            moved: BTreeMap::new(),
            instances: BTreeMap::new(),
            commits: 0,
            commits_at_checkpoint: 0,
            pending: Vec::new(),
            window_armed: false,
            batch_seq: 0,
            current_batch: None,
            dispatch_log: Vec::new(),
            registry,
            metrics,
            recorder,
        })
    }

    /// Appends a lifecycle event to the flight recorder (no-op below
    /// [`ObserveLevel::Trace`]).
    fn record_event(
        &self,
        at_ns: u64,
        instance: &str,
        task: Option<&str>,
        attempt: u32,
        kind: ObsEventKind,
    ) {
        if self.config.observe.trace() {
            self.recorder.record(at_ns, instance, task, attempt, kind);
        }
    }

    fn commit(&mut self, action: flowscript_tx::AtomicAction) -> Result<(), EngineError> {
        self.mgr.commit(action)?;
        self.commits += 1;
        Ok(())
    }

    /// Checkpoints when the threshold of commits has accumulated since
    /// the last one. Evaluated once per drain (and after each batch
    /// flush) rather than per commit, so a group commit can never stall
    /// mid-batch on a `rewrite_with_checkpoint` — and never while a
    /// commit group is open.
    fn maybe_checkpoint(&mut self) -> Result<(), EngineError> {
        let Some(every) = self.config.checkpoint_every else {
            return Ok(());
        };
        if self.mgr.in_group() || self.commits - self.commits_at_checkpoint < every {
            return Ok(());
        }
        self.commits_at_checkpoint = self.commits;
        self.gc_plans()?;
        self.mgr.checkpoint()?;
        Ok(())
    }

    /// Folds one buffered report's arrival into the inter-arrival EWMA
    /// (same 1/4 gain as the cost model). The very first report only
    /// seeds the clock — a gap measured from time zero is noise.
    fn note_report_arrival(&mut self, now_ns: u64) {
        if self.config.adaptive_min_window.is_none() {
            return;
        }
        if self.last_report_ns != 0 {
            let gap = now_ns.saturating_sub(self.last_report_ns);
            self.arrival_gap_ns = if self.arrival_gap_ns == u64::MAX {
                gap
            } else {
                ((u128::from(self.arrival_gap_ns) * 3 + u128::from(gap)) / 4) as u64
            };
        }
        self.last_report_ns = now_ns;
    }

    /// The commit window to arm right now. Static configs return
    /// [`CommitBatch::max_window`] unchanged; with
    /// [`EngineConfig::adaptive_min_window`] set, a bursty report
    /// stream (mean gap ≤ ¼ of the full window) holds the full window
    /// to amortize the flush, while light load narrows to the floor so
    /// a lone report commits sooner.
    fn effective_window(&self) -> SimDuration {
        let max = self.config.commit_batch.max_window;
        let Some(min) = self.config.adaptive_min_window else {
            return max;
        };
        if self.arrival_gap_ns <= max.as_nanos() / 4 {
            max
        } else {
            min.min(max)
        }
    }

    /// A `Commit` trace event stamped with the active batch id, so
    /// traces show which completions coalesced into one flush.
    fn commit_event(&self, what: String) -> ObsEventKind {
        ObsEventKind::Commit {
            what,
            batch: self.current_batch,
        }
    }

    /// Stages one buffered report's fast-path transition into the shared
    /// batch `action`. The control block is read *through the action* so
    /// a transition staged by an earlier report in the same batch is
    /// visible — duplicates and stale attempts are consumed exactly as
    /// the one-event path would drop them.
    fn stage_event(
        &mut self,
        action: &flowscript_tx::AtomicAction,
        event: &PendingEvent,
        plan: &Plan,
        keys: &InstanceKeys,
        task_id: TaskId,
    ) -> Staging {
        match event {
            PendingEvent::Done(msg) => {
                let cb = match self.mgr.read::<TaskCb>(action, keys.cb(task_id)) {
                    Ok(Some(cb)) => cb,
                    Ok(None) => return Staging::Consumed,
                    Err(_) => return Staging::Error,
                };
                if !matches!(cb.state, CbState::Executing { .. })
                    || cb.incarnation != msg.incarnation
                    || cb.attempt != msg.attempt
                {
                    return Staging::Consumed;
                }
                let TaskResult::Output { name, objects, .. } = &msg.result else {
                    return Staging::Slow; // error retry: per-event bookkeeping
                };
                let class = plan.class_of(plan.task(task_id));
                let kind = match plan.class_output(class, name).map(|output| output.kind) {
                    Some(kind @ (OutputKind::Outcome | OutputKind::AbortOutcome)) => kind,
                    // Undeclared outputs, mark-as-completion and repeats
                    // take their failure/retry paths post-commit.
                    _ => return Staging::Slow,
                };
                let Some(out_key) = keys.out_key(plan, task_id, name) else {
                    return Staging::Consumed;
                };
                let stamped: BTreeMap<String, ObjectVal> = objects
                    .clone()
                    .into_iter()
                    .map(|(k, v)| (k, v.produced_by(msg.path.clone())))
                    .collect();
                let mut cb = cb;
                cb.transition(if kind == OutputKind::Outcome {
                    CbState::Done {
                        outcome: name.clone(),
                    }
                } else {
                    CbState::Aborted {
                        outcome: name.clone(),
                    }
                });
                let whole = self.config.whole_record_facts;
                let write = self.mgr.write(action, keys.cb(task_id), &cb).and_then(|_| {
                    facts::write_fact_map(&mut self.mgr, action, plan, out_key, &stamped, whole)
                });
                match write {
                    Ok(()) => Staging::Staged(StagedEffect {
                        instance: msg.instance.clone(),
                        path: msg.path.clone(),
                        attempt: msg.attempt,
                        task_id,
                        what: if kind == OutputKind::Outcome {
                            format!("done `{name}`")
                        } else {
                            format!("aborted `{name}`")
                        },
                        is_mark: false,
                    }),
                    Err(_) => Staging::Error,
                }
            }
            PendingEvent::Mark(msg) => {
                let cb = match self.mgr.read::<TaskCb>(action, keys.cb(task_id)) {
                    Ok(Some(cb)) => cb,
                    Ok(None) => return Staging::Consumed,
                    Err(_) => return Staging::Error,
                };
                if !matches!(cb.state, CbState::Executing { .. })
                    || cb.incarnation != msg.incarnation
                    || cb.attempt != msg.attempt
                    || cb.mark_emitted(&msg.mark)
                {
                    return Staging::Consumed;
                }
                let class = plan.class_of(plan.task(task_id));
                let declared = plan
                    .class_output(class, &msg.mark)
                    .is_some_and(|output| output.kind == OutputKind::Mark);
                if !declared {
                    return Staging::Consumed;
                }
                let Some(out_key) = keys.out_key(plan, task_id, &msg.mark) else {
                    return Staging::Consumed;
                };
                let mut cb = cb;
                cb.marks_emitted.push(msg.mark.clone());
                let stamped: BTreeMap<String, ObjectVal> = msg
                    .objects
                    .clone()
                    .into_iter()
                    .map(|(k, v)| (k, v.produced_by(msg.path.clone())))
                    .collect();
                let whole = self.config.whole_record_facts;
                let write = self.mgr.write(action, keys.cb(task_id), &cb).and_then(|_| {
                    facts::write_fact_map(&mut self.mgr, action, plan, out_key, &stamped, whole)
                });
                match write {
                    Ok(()) => Staging::Staged(StagedEffect {
                        instance: msg.instance.clone(),
                        path: msg.path.clone(),
                        attempt: msg.attempt,
                        task_id,
                        what: format!("mark `{}`", msg.mark),
                        is_mark: true,
                    }),
                    Err(_) => Staging::Error,
                }
            }
        }
    }

    /// Drops persisted plan blobs (`sys/plan/…`) no instance references
    /// any more. Plans persist once per fingerprint; every
    /// reconfiguration re-fingerprints, so without this a reconfigured
    /// instance strands its old blobs forever. Runs at checkpoint time
    /// (cold path): the reference set is every resident instance's
    /// current plan plus every persisted meta's fingerprint — covering
    /// instances the shard has not (re)loaded.
    fn gc_plans(&mut self) -> Result<(), EngineError> {
        let mut live: BTreeSet<u64> = self
            .instances
            .values()
            .map(|rt| rt.plan.fingerprint)
            .collect();
        for uid in self.mgr.uids_matching("inst/", "/meta") {
            if let Ok(Some(meta)) = self.mgr.read_committed::<InstanceMeta>(&uid) {
                live.insert(meta.plan_fingerprint);
            }
        }
        let stale: Vec<ObjectUid> = self
            .mgr
            .uids_with_prefix("sys/plan/")
            .into_iter()
            .filter(|uid| plan_uid_fingerprint(uid).is_none_or(|fp| !live.contains(&fp)))
            .collect();
        if stale.is_empty() {
            return Ok(());
        }
        let action = self.mgr.begin();
        for uid in &stale {
            self.mgr.delete(&action, uid)?;
        }
        // Straight to the manager: the checkpoint that follows compacts
        // this commit away, and routing through `Self::commit` would
        // re-trigger the checkpoint counter.
        self.mgr.commit(action)?;
        Ok(())
    }

    fn read_cb(&self, instance: &str, path: &str) -> Option<TaskCb> {
        self.mgr
            .read_committed(&cb_uid(instance, path))
            .ok()
            .flatten()
    }

    /// Hot-path control-block read through the interned uid table.
    fn read_cb_id(&self, keys: &InstanceKeys, task: TaskId) -> Option<TaskCb> {
        self.mgr.read_committed(keys.cb(task)).ok().flatten()
    }

    fn read_meta(&self, instance: &str) -> Option<InstanceMeta> {
        self.mgr.read_committed(&meta_uid(instance)).ok().flatten()
    }

    /// Materializes an instance's volatile runtime from committed
    /// state: the persisted fingerprinted plan when valid (recompiling
    /// the source and replaying persisted reconfigurations as the
    /// fallback), rebindings, interned keys and the non-terminal count.
    /// Pure state load — arms no timers and dispatches nothing. Shared
    /// by crash recovery and hand-off adoption.
    fn load_instance(&mut self, name: &str, meta: &InstanceMeta) -> Option<InstanceRt> {
        let cached: Option<Plan> = self
            .mgr
            .read_committed::<Plan>(&plan_uid(meta.plan_fingerprint))
            .ok()
            .flatten()
            .filter(|plan| {
                plan.fingerprint == meta.plan_fingerprint
                    && plan.is_well_formed()
                    && plan.verify_fingerprint()
            });
        let (plan, schema) = match cached {
            Some(plan) => (plan, None),
            None => {
                // Fallback: recompile and replay persisted
                // reconfigurations in order.
                let mut schema = schema::compile_source(&meta.source, &meta.root).ok()?;
                for op_uid in self.mgr.uids_with_prefix(&format!("inst/{name}/reconfig/")) {
                    if let Ok(Some(op)) = self.mgr.read_committed::<Reconfig>(&op_uid) {
                        let _ = reconfig::apply(&mut schema, &op);
                    }
                }
                (Plan::lower(&schema), Some(Rc::new(schema)))
            }
        };
        let mut bindings = BTreeMap::new();
        for bind in self.mgr.uids_with_prefix(&format!("inst/{name}/bind/")) {
            if let Ok(Some(to)) = self.mgr.read_committed::<String>(&bind) {
                let code = bind
                    .as_str()
                    .trim_start_matches(&format!("inst/{name}/bind/"))
                    .to_string();
                bindings.insert(code, to);
            }
        }
        let keys = InstanceKeys::build(&plan, name, meta.instance_id);
        let nonterminal = count_nonterminal(&self.mgr, &plan, &keys);
        Some(InstanceRt {
            plan: Rc::new(plan),
            keys: Rc::new(keys),
            schema,
            bindings,
            watchdogs: BTreeMap::new(),
            in_flight: BTreeSet::new(),
            dispatched_to: BTreeMap::new(),
            retry_from: BTreeMap::new(),
            nonterminal,
        })
    }

    /// Packages one resident instance's entire committed keyspace for
    /// a hand-off under moving transaction `tx`: the `inst/{name}/` uid
    /// prefix, the pinned compiled plan, and the dense fact range — the
    /// collect half shared by single moves, batched drains and (via
    /// [`package_stored_instance`]) crash-driven claims.
    fn package_instance(
        &mut self,
        instance: &str,
        tx: TxId,
    ) -> Result<HandoffPackage, EngineError> {
        let Some(rt) = self.instances.get(instance) else {
            return Err(EngineError::UnknownInstance(instance.to_string()));
        };
        let keys = rt.keys.clone();
        let fingerprint = rt.plan.fingerprint;
        let mut entries: Vec<(StoreKey, Vec<u8>)> = Vec::new();
        // Every string-keyed object of the instance (meta, control
        // blocks, rebindings, reconfiguration records) ...
        for uid in self.mgr.uids_with_prefix(&format!("inst/{instance}/")) {
            let key = StoreKey::Uid(uid);
            if let Some(bytes) = self.mgr.read_committed_bytes(&key).map(<[u8]>::to_vec) {
                entries.push((key, bytes));
            }
        }
        // ... the pinned compiled plan ...
        let plan_key = StoreKey::Uid(plan_uid(fingerprint));
        if let Some(bytes) = self.mgr.read_committed_bytes(&plan_key).map(<[u8]>::to_vec) {
            entries.push((plan_key, bytes));
        }
        // ... and every dependency fact: one contiguous range scan.
        let (lo, hi) = keys.instance_fact_range();
        for fact in self.mgr.fact_keys_in_range(lo, hi) {
            let key = StoreKey::Fact(fact);
            if let Some(bytes) = self.mgr.read_committed_bytes(&key).map(<[u8]>::to_vec) {
                entries.push((key, bytes));
            }
        }
        Ok(HandoffPackage {
            tx,
            instance: instance.to_string(),
            src_node: self.node.index() as u32,
            src_instance_id: keys.instance_id,
            entries,
        })
    }

    /// Deletes every committed object of `instance` in one atomic
    /// action: the whole `inst/{name}/` uid prefix plus the dense fact
    /// range of the meta's instance id. The storage half of the source
    /// side of a committed hand-off (the shared compiled-plan blob
    /// stays; plan GC collects it once no local meta pins it).
    fn purge_instance(&mut self, instance: &str) -> Result<(), EngineError> {
        let meta: Option<InstanceMeta> = self.mgr.read_committed(&meta_uid(instance))?;
        let action = self.mgr.begin();
        for uid in self.mgr.uids_with_prefix(&format!("inst/{instance}/")) {
            self.mgr.delete(&action, &uid)?;
        }
        if let Some(meta) = meta {
            let lo = FactKey::instance_first(meta.instance_id);
            let hi = FactKey::instance_last(meta.instance_id);
            for fact in self.mgr.fact_keys_in_range(lo, hi) {
                self.mgr.delete_key(&action, &StoreKey::Fact(fact))?;
            }
        }
        self.commit(action)?;
        Ok(())
    }

    /// Records `n` control blocks entering a terminal state (stuck
    /// detection stays O(1) by never recounting).
    fn note_terminals(&mut self, instance: &str, n: usize) {
        if let Some(rt) = self.instances.get_mut(instance) {
            rt.nonterminal = rt.nonterminal.saturating_sub(n);
        }
    }

    /// Records `n` control blocks leaving a terminal state (scope
    /// resets revive terminated constituents).
    fn note_revived(&mut self, instance: &str, n: usize) {
        if let Some(rt) = self.instances.get_mut(instance) {
            rt.nonterminal += n;
        }
    }

    /// Ends the load accounting of an outstanding dispatch: removes the
    /// path's `dispatched_to` entry and releases the cost it was
    /// charged at. Idempotent (the entry gates the release); returns
    /// the executor the dispatch ran on, if one was counted.
    ///
    /// `now_ns` is the completion time for the `coord.dispatch_latency_ns`
    /// histogram and the cost model's EWMA sample; pass 0 on
    /// non-completion paths (timeouts, failures, subtree sweeps) so
    /// they skew neither the latency distribution nor the duration
    /// estimates.
    fn release_dispatch(&mut self, instance: &str, path: &str, now_ns: u64) -> Option<NodeId> {
        let dispatched = self.instances.get_mut(instance).and_then(|rt| {
            let id = rt.plan.task_by_path(path)?;
            rt.dispatched_to.remove(&id)
        })?;
        self.sched.note_release(dispatched.node, dispatched.cost);
        if now_ns > 0 && now_ns >= dispatched.sent_ns {
            let elapsed = now_ns - dispatched.sent_ns;
            // Only genuine completions reach here: watchdogs and sweeps
            // release with now_ns = 0 and never teach the model.
            if self.config.cost_feedback {
                self.costs.observe(&dispatched.code, elapsed);
            }
            if self.config.observe.metrics() {
                self.metrics.dispatch_latency_ns.record(elapsed);
            }
        }
        Some(dispatched.node)
    }

    /// Drops every piece of volatile tracking under `scope_path` —
    /// armed watchdogs, in-flight markers, retry origins and the
    /// dispatch load accounting — when the subtree is cancelled or
    /// reset. Returns the disarmed watchdog events for the caller to
    /// cancel outside the borrow.
    fn sweep_subtree(&mut self, instance: &str, scope_path: &str) -> Vec<(String, EventId)> {
        let prefix = format!("{scope_path}/");
        let stale: Vec<(String, EventId)> = self
            .instances
            .get_mut(instance)
            .map(|rt| {
                let stale: Vec<(String, EventId)> = rt
                    .watchdogs
                    .iter()
                    .filter(|(path, _)| path.starts_with(&prefix))
                    .map(|(path, id)| (path.clone(), *id))
                    .collect();
                for (path, _) in &stale {
                    rt.watchdogs.remove(path);
                }
                rt.in_flight.retain(|path| !path.starts_with(&prefix));
                rt.retry_from.retain(|path, _| !path.starts_with(&prefix));
                stale
            })
            .unwrap_or_default();
        // Release every outstanding dispatch under the subtree (a
        // fired watchdog can outlive its load entry and vice versa, so
        // sweep the accounting map itself).
        let dispatched: Vec<String> = self
            .instances
            .get(instance)
            .map(|rt| {
                rt.dispatched_to
                    .keys()
                    .map(|&id| rt.plan.str(rt.plan.task(id).path).to_string())
                    .filter(|path| path.starts_with(&prefix))
                    .collect()
            })
            .unwrap_or_default();
        for path in dispatched {
            let _ = self.release_dispatch(instance, &path, 0);
        }
        // A cancelled subtree's parked dispatches must never run.
        self.parked
            .retain(|_, entry| entry.instance != instance || !entry.path.starts_with(&prefix));
        stale
    }

    /// Drops every parked dispatch of `instance` (instance hand-off or
    /// purge — the new owner re-dispatches from its own committed
    /// control blocks).
    fn unpark_instance(&mut self, instance: &str) {
        self.parked.retain(|_, entry| entry.instance != instance);
    }

    /// Recounts an instance's non-terminal control blocks from the
    /// committed store — point reads over the plan's dense ids, used
    /// only where the plan itself changed (recovery, reconfiguration).
    fn recount_nonterminal(&mut self, instance: &str) {
        let Some(rt) = self.instances.get(instance) else {
            return;
        };
        let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
        let count = count_nonterminal(&self.mgr, &plan, &keys);
        if let Some(rt) = self.instances.get_mut(instance) {
            rt.nonterminal = count;
        }
    }

    /// Looks up a compiled task and its containing scope's path — the
    /// schema-walking twin of `Plan::task_by_path`, kept as the
    /// reference implementation (hot paths use the plan's index).
    #[allow(dead_code)]
    fn find_task<'a>(schema: &'a Schema, path: &str) -> Option<(&'a CompiledTask, String)> {
        let mut segments = path.split('/');
        let root_name = segments.next()?;
        if root_name != schema.root.name {
            return None;
        }
        let segments: Vec<&str> = segments.collect();
        if segments.is_empty() {
            return None;
        }
        let mut scope = &schema.root;
        let mut scope_path = schema.root.name.clone();
        for (i, segment) in segments.iter().enumerate() {
            let task = scope.task(segment)?;
            if i == segments.len() - 1 {
                return Some((task, scope_path));
            }
            let TaskBody::Scope(inner) = &task.body else {
                return None;
            };
            scope_path = format!("{scope_path}/{segment}");
            scope = inner;
        }
        None
    }
}

impl CoordHandle {
    /// Wraps a coordinator.
    pub fn new(coordinator: Coordinator) -> Self {
        Self {
            inner: Rc::new(RefCell::new(coordinator)),
        }
    }

    /// Installs the message handler on the coordinator's node.
    pub fn install(&self, world: &mut World) {
        let node = self.inner.borrow().node;
        let handle = self.clone();
        world.set_handler(node, move |world, envelope| {
            handle.handle_message(world, envelope);
        });
        let handle = self.clone();
        world.set_restart_hook(node, move |world, _| {
            handle.recover(world);
        });
    }

    /// Engine counters, materialized from the `coord.*` registry
    /// entries.
    pub fn stats(&self) -> CoordStats {
        self.inner.borrow().metrics.stats()
    }

    /// This shard's metric registry (counters, gauges, histograms for
    /// the coordinator, scheduler, transaction manager and WAL).
    pub fn registry(&self) -> Registry {
        self.inner.borrow().registry.clone()
    }

    /// This shard's flight recorder. Empty unless
    /// [`EngineConfig::observe`] is [`ObserveLevel::Trace`].
    pub fn recorder(&self) -> FlightRecorder {
        self.inner.borrow().recorder.clone()
    }

    /// Ordered dispatch decisions since the coordinator opened (the
    /// worklist/full-scan equivalence tests compare these verbatim).
    /// Empty unless [`EngineConfig::record_dispatches`] is set.
    pub fn dispatch_trace(&self) -> Vec<DispatchRecord> {
        self.inner.borrow().dispatch_log.clone()
    }

    /// Current log size in bytes (ablation measurements).
    pub fn log_size(&self) -> u64 {
        self.inner.borrow().mgr.log_size()
    }

    /// Uid prefix scans this coordinator's store has served (the
    /// stuck-diagnostics regression guard: zero during normal runs).
    pub fn store_prefix_scans(&self) -> u64 {
        self.inner.borrow().mgr.prefix_scan_count()
    }

    /// Fact range scans this coordinator's store has served (the
    /// per-object regression guard: readiness probes are point reads,
    /// so a clean run performs none — only repeats, cancellations,
    /// recovery and reconfiguration legitimately scan).
    pub fn store_fact_range_scans(&self) -> u64 {
        self.inner.borrow().mgr.fact_range_scan_count()
    }

    /// Fingerprints of the compiled-plan blobs persisted in this
    /// shard's store (`sys/plan/…`) — the plan-GC observability hook.
    /// Performs a uid prefix scan: admin/monitoring only.
    pub fn persisted_plan_fingerprints(&self) -> Vec<u64> {
        self.inner
            .borrow()
            .mgr
            .uids_with_prefix("sys/plan/")
            .into_iter()
            .filter_map(|uid| plan_uid_fingerprint(&uid))
            .collect()
    }

    /// Overwrites every stored sub-key of one published output fact
    /// with undecodable bytes — fault injection for the corrupt-record
    /// tests (a probe must surface the fault, not read "absent").
    #[doc(hidden)]
    pub fn poison_fact(&self, instance: &str, path: &str, output: &str) -> bool {
        let mut coordinator = self.inner.borrow_mut();
        let Some(rt) = coordinator.instances.get(instance) else {
            return false;
        };
        let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
        let Some(task) = plan.task_by_path(path) else {
            return false;
        };
        let Some(base) = keys.out_key(&plan, task, output) else {
            return false;
        };
        let mut targets = coordinator.mgr.fact_keys_in_range(base, base.fact_last());
        if targets.is_empty() {
            targets.push(base);
        }
        let action = coordinator.mgr.begin();
        for key in targets {
            if coordinator
                .mgr
                .write_key_raw(&action, &StoreKey::Fact(key), vec![0xFF, 0xFF, 0xFF])
                .is_err()
            {
                coordinator.mgr.abort(action);
                return false;
            }
        }
        coordinator.mgr.commit(action).is_ok()
    }

    /// Administrative fact repair: atomically replaces whatever is
    /// stored for `output` of `path` (including undecodable bytes a
    /// storage fault left behind) with `objects`, revives the instance
    /// if it was parked `Stuck`, and re-enters evaluation through the
    /// full scan — the repaired fact has no commit to seed from, so
    /// this mirrors reconfiguration re-entry.
    ///
    /// When `output` is a terminal outcome (`completion`/`abort`) and
    /// the task has not yet terminated, the task is **force-completed**
    /// with it, exactly as if the executor had replied — the escape
    /// hatch for a task whose real reply was lost to the fault.
    ///
    /// # Errors
    ///
    /// Unknown instance/task, an undeclared output name, or a failed
    /// commit. Validation failures leave the instance untouched.
    pub fn repair_fact(
        &self,
        world: &mut World,
        instance: &str,
        path: &str,
        output: &str,
        objects: BTreeMap<String, ObjectVal>,
    ) -> Result<(), EngineError> {
        // Repair reads current state: absorb the batch window first.
        self.flush_pending(world);
        {
            let mut coordinator = self.inner.borrow_mut();
            let Some(rt) = coordinator.instances.get(instance) else {
                return Err(EngineError::UnknownInstance(instance.to_string()));
            };
            let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
            let Some(task_id) = plan.task_by_path(path) else {
                return Err(EngineError::UnknownTask(path.to_string()));
            };
            let class = plan.class_of(plan.task(task_id));
            let kind = plan
                .class_output(class, output)
                .map(|decl| decl.kind)
                .ok_or_else(|| {
                    EngineError::BadInputs(format!("task `{path}` declares no output `{output}`"))
                })?;
            let Some(out_key) = keys.out_key(&plan, task_id, output) else {
                return Err(EngineError::UnknownTask(path.to_string()));
            };
            let Some(mut cb) = coordinator.read_cb_id(&keys, task_id) else {
                return Err(EngineError::UnknownTask(path.to_string()));
            };
            let force = matches!(kind, OutputKind::Outcome | OutputKind::AbortOutcome)
                && !cb.state.is_terminal();
            let stamped: BTreeMap<String, ObjectVal> = objects
                .into_iter()
                .map(|(k, v)| (k, v.produced_by(path.to_string())))
                .collect();
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            // Drop the stored sub-keys first: a corrupt record may use a
            // different layout than the rewrite below.
            for fact in coordinator
                .mgr
                .fact_keys_in_range(out_key, out_key.fact_last())
            {
                coordinator.mgr.delete_key(&action, &StoreKey::Fact(fact))?;
            }
            facts::write_fact_map(
                &mut coordinator.mgr,
                &action,
                &plan,
                out_key,
                &stamped,
                whole,
            )?;
            if force {
                cb.transition(if kind == OutputKind::Outcome {
                    CbState::Done {
                        outcome: output.to_string(),
                    }
                } else {
                    CbState::Aborted {
                        outcome: output.to_string(),
                    }
                });
                coordinator.mgr.write(&action, keys.cb(task_id), &cb)?;
            }
            let mut revived = false;
            if let Some(mut meta) = coordinator.read_meta(instance) {
                if matches!(meta.status, InstanceStatus::Stuck { .. }) {
                    meta.status = InstanceStatus::Running;
                    coordinator.mgr.write(&action, &meta_uid(instance), &meta)?;
                    revived = true;
                }
            }
            coordinator.commit(action)?;
            if revived {
                // Back from Stuck: the instance counts against the
                // admission cap again.
                coordinator.live_instances += 1;
            }
            if force {
                coordinator.note_terminals(instance, 1);
            }
            let what = if force {
                format!("forced `{output}` of `{path}`")
            } else {
                format!("republished `{output}` of `{path}`")
            };
            coordinator.record_event(
                world.now().as_nanos(),
                instance,
                Some(path),
                cb.attempt,
                ObsEventKind::Repair { what },
            );
        }
        self.evaluate(world, instance);
        self.pump(world);
        Ok(())
    }

    /// The node this coordinator runs on.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// This shard's current view of the executor fleet: per-executor
    /// location label and in-flight dispatch count (monitoring; the
    /// scheduling tests assert the counts drain to zero).
    pub fn executor_loads(&self) -> Vec<ExecutorSlot> {
        self.inner.borrow().sched.snapshot()
    }

    fn handle_message(&self, world: &mut World, envelope: &Envelope) {
        // A fenced shard is a zombie: its storage was claimed by
        // another node and its instances run there now. Probe the
        // claim *before* touching any state, so a zombie that never
        // crashed (a false-positive failure detection) is muzzled at
        // the door rather than discovering the fence mid-commit with
        // half-mutated volatile state. Dropped requests time out at
        // the sender, exactly like a down node.
        if self.inner.borrow_mut().mgr.probe_fence().is_some() {
            return;
        }
        let Ok(msg) = flowscript_codec::from_bytes::<EngineMsg>(&envelope.payload) else {
            return; // corrupt message: drop, sender will time out / retry
        };
        self.deliver(world, envelope, msg, 0);
    }

    /// Handles one engine message that has been relayed `hops` times
    /// already (0 for a direct send; unwrapped [`EngineMsg::Forwarded`]
    /// layers carry the count).
    fn deliver(&self, world: &mut World, envelope: &Envelope, msg: EngineMsg, hops: u32) {
        match msg {
            EngineMsg::Forwarded {
                epoch: _,
                hops: relayed,
                inner,
            } => {
                let Ok(inner) = flowscript_codec::from_bytes::<EngineMsg>(&inner) else {
                    return;
                };
                self.deliver(world, envelope, inner, relayed);
            }
            EngineMsg::Done(done) => {
                if let Some(owner) = self.misdirected(&done.instance) {
                    let instance = done.instance.clone();
                    self.forward_oneway(world, owner, &instance, EngineMsg::Done(done), hops);
                    return;
                }
                if self.batching_enabled() {
                    self.enqueue_event(world, PendingEvent::Done(done));
                } else {
                    self.on_task_done(world, done);
                    self.pump(world);
                }
            }
            EngineMsg::Mark(mark) => {
                if let Some(owner) = self.misdirected(&mark.instance) {
                    let instance = mark.instance.clone();
                    self.forward_oneway(world, owner, &instance, EngineMsg::Mark(mark), hops);
                    return;
                }
                if self.batching_enabled() {
                    self.enqueue_event(world, PendingEvent::Mark(mark));
                } else {
                    self.on_mark(world, mark);
                    self.pump(world);
                }
            }
            EngineMsg::StartInstance {
                instance,
                script,
                version,
                set,
                inputs,
                epoch,
            } => {
                let Some(token) = envelope.reply_token() else {
                    return;
                };
                if let Some(owner) = self.misdirected(&instance) {
                    let relay = EngineMsg::StartInstance {
                        instance: instance.clone(),
                        script,
                        version,
                        set,
                        inputs,
                        epoch,
                    };
                    self.forward_start(world, owner, &instance, token, relay, hops);
                    return;
                }
                let ticket = AdmissionTicket {
                    instance,
                    script,
                    version,
                    set,
                    inputs,
                    token,
                    enqueued_ns: world.now().as_nanos(),
                };
                self.admit_or_queue(world, ticket);
            }
            EngineMsg::HandoffQuery { tx_node, tx_seq } => {
                self.on_handoff_query(world, envelope.src, TxId::new(tx_node, tx_seq));
            }
            EngineMsg::HandoffVerdict {
                tx_node,
                tx_seq,
                committed,
            } => {
                self.on_handoff_verdict(world, TxId::new(tx_node, tx_seq), committed);
            }
            _ => {}
        }
    }

    // -----------------------------------------------------------------
    // Admission control: per-shard instance cap on the RPC surface.
    // -----------------------------------------------------------------

    /// Gates one owned `StartInstance` RPC on the admission cap: under
    /// the cap (with nothing already queued ahead) the start runs
    /// immediately; at the cap it parks in the bounded admission
    /// queue, its reply token held open; with the queue also full the
    /// client gets a typed [`EngineMsg::Busy`] to retry with backoff.
    fn admit_or_queue(&self, world: &mut World, ticket: AdmissionTicket) {
        enum Verdict {
            Admit,
            Busy(u32),
        }
        let verdict = {
            let mut coordinator = self.inner.borrow_mut();
            let occupancy = coordinator.live_instances + coordinator.starting;
            match coordinator.config.max_inflight_instances {
                None => Verdict::Admit,
                // FIFO fairness: a free slot goes to the queue head,
                // never to a start that arrived after queued ones.
                Some(cap) if occupancy < cap && coordinator.admission_queue.is_empty() => {
                    Verdict::Admit
                }
                Some(_)
                    if coordinator.admission_queue.len()
                        < coordinator.config.admission_queue_limit =>
                {
                    coordinator.record_event(
                        ticket.enqueued_ns,
                        &ticket.instance,
                        None,
                        0,
                        ObsEventKind::Parked {
                            queue_depth: coordinator.admission_queue.len() as u64 + 1,
                        },
                    );
                    coordinator.admission_queue.push_back(ticket);
                    if coordinator.config.observe.metrics() {
                        coordinator
                            .metrics
                            .admission_queue_depth
                            .set(coordinator.admission_queue.len() as i64);
                    }
                    return;
                }
                Some(_) => {
                    coordinator.metrics.busy_rejections.inc();
                    Verdict::Busy(coordinator.admission_queue.len() as u32)
                }
            }
        };
        match verdict {
            Verdict::Admit => {
                self.on_start_instance(
                    world,
                    ticket.token,
                    ticket.instance,
                    ticket.script,
                    ticket.version,
                    ticket.set,
                    ticket.inputs,
                );
            }
            Verdict::Busy(queue_depth) => {
                let reply = EngineMsg::Busy { queue_depth };
                world.rpc_reply_to(ticket.token, flowscript_codec::to_bytes(&reply));
            }
        }
    }

    /// Admits queued starts while the shard sits under its cap (called
    /// whenever an instance leaves the live set). Each admitted start
    /// counts toward occupancy from its repository round-trip on, so a
    /// burst of admissions cannot overshoot the cap.
    fn admit_from_queue(&self, world: &mut World) {
        loop {
            let ticket = {
                let mut coordinator = self.inner.borrow_mut();
                let Some(cap) = coordinator.config.max_inflight_instances else {
                    return;
                };
                if coordinator.live_instances + coordinator.starting >= cap {
                    return;
                }
                let Some(ticket) = coordinator.admission_queue.pop_front() else {
                    return;
                };
                let now_ns = world.now().as_nanos();
                let waited = now_ns.saturating_sub(ticket.enqueued_ns);
                if coordinator.config.observe.metrics() {
                    coordinator.metrics.admission_wait_ns.record(waited);
                    coordinator
                        .metrics
                        .admission_queue_depth
                        .set(coordinator.admission_queue.len() as i64);
                }
                coordinator.record_event(
                    now_ns,
                    &ticket.instance,
                    None,
                    0,
                    ObsEventKind::Admitted { wait_ns: waited },
                );
                ticket
            };
            self.on_start_instance(
                world,
                ticket.token,
                ticket.instance,
                ticket.script,
                ticket.version,
                ticket.set,
                ticket.inputs,
            );
        }
    }

    /// The release pump: runs after any event that can free executor
    /// capacity or admission headroom — completed/failed/timed-out
    /// tasks, terminal instances, hand-offs, recovery — first draining
    /// the capacity-parked ready queue, then admitting queued starts.
    /// Never called from inside a drain (dispatch cascades would
    /// re-enter); the outer event handlers call it exactly once.
    fn pump(&self, world: &mut World) {
        self.drain_parked(world);
        self.admit_from_queue(world);
    }

    /// Re-dispatches parked work, highest `(priority, arrival)` first,
    /// as long as some entry's eligible executors have free capacity.
    /// Per-entry eligibility keeps a pinned entry whose location is
    /// still full from blocking an unpinned one behind it.
    fn drain_parked(&self, world: &mut World) {
        loop {
            let entry = {
                let mut coordinator = self.inner.borrow_mut();
                let key = coordinator
                    .parked
                    .iter()
                    .find(|(_, entry)| !coordinator.sched.all_saturated(&entry.hints))
                    .map(|(key, _)| *key);
                let Some(key) = key else {
                    return;
                };
                let entry = coordinator.parked.remove(&key).expect("key just found");
                let now_ns = world.now().as_nanos();
                if coordinator.config.observe.metrics() {
                    coordinator
                        .metrics
                        .queue_wait_ns
                        .record(now_ns.saturating_sub(entry.parked_ns));
                    coordinator
                        .metrics
                        .ready_queue_depth
                        .set(coordinator.parked.len() as i64);
                }
                coordinator.record_event(
                    now_ns,
                    &entry.instance,
                    Some(&entry.path),
                    entry.attempt,
                    ObsEventKind::Admitted {
                        wait_ns: now_ns.saturating_sub(entry.parked_ns),
                    },
                );
                entry
            };
            self.dispatch(
                world,
                &entry.instance,
                &entry.path,
                entry.attempt,
                entry.inputs,
                entry.repeat_objects,
            );
        }
    }

    // -----------------------------------------------------------------
    // The batch window: group commit over executor reports.
    // -----------------------------------------------------------------

    fn batching_enabled(&self) -> bool {
        self.inner.borrow().config.commit_batch.enabled()
    }

    /// Buffers an executor report into the open batch window, flushing
    /// when the window fills. The first report of a window arms a
    /// one-shot timer so a lone report still commits within
    /// `max_window` of sim time.
    fn enqueue_event(&self, world: &mut World, event: PendingEvent) {
        enum Next {
            Flush,
            Arm(NodeId, SimDuration),
            Wait,
        }
        let next = {
            let mut coordinator = self.inner.borrow_mut();
            coordinator.note_report_arrival(world.now().as_nanos());
            coordinator.pending.push(event);
            if coordinator.pending.len() >= coordinator.config.commit_batch.max_events {
                Next::Flush
            } else if coordinator.window_armed {
                Next::Wait
            } else {
                coordinator.window_armed = true;
                Next::Arm(coordinator.node, coordinator.effective_window())
            }
        };
        match next {
            Next::Flush => self.flush_batch(world),
            Next::Arm(node, window) => {
                let handle = self.clone();
                world.schedule_node_after(node, window, move |world| {
                    handle.on_batch_window(world);
                });
            }
            Next::Wait => {}
        }
    }

    /// The batch window elapsed: flush whatever accumulated. A window
    /// whose reports were already flushed by the count trigger is a
    /// no-op (the stale timer fires on an empty buffer).
    fn on_batch_window(&self, world: &mut World) {
        {
            let mut coordinator = self.inner.borrow_mut();
            // A fenced coordinator is a zombie: another node claimed its
            // storage. Buffered reports die with it — the claimant's
            // copies are the truth now (same muzzle as
            // [`Self::handle_message`], for the timer entry points).
            if coordinator.mgr.probe_fence().is_some() {
                return;
            }
            coordinator.window_armed = false;
            if coordinator.pending.is_empty() {
                return;
            }
        }
        self.flush_batch(world);
    }

    /// Drains the batch window immediately, if it holds any reports.
    /// Admin entry points (reconfiguration, operator abort, fact
    /// repair) call this first so their reads and cascades see every
    /// report that already arrived.
    fn flush_pending(&self, world: &mut World) {
        if self.inner.borrow().pending.is_empty() {
            return;
        }
        self.flush_batch(world);
    }

    /// Commits every report buffered in the window as one batch: a
    /// single atomic action over the union of touched control blocks
    /// (locks taken in deterministic [`StoreKey`] order), a single WAL
    /// group frame covering the batch *and* the readiness cascade it
    /// triggers, and one consumer-seeded re-evaluation per touched
    /// instance. Reports the shared action cannot absorb (error
    /// retries, repeats, undeclared outputs) run through their
    /// one-event handlers after the batch commits — still inside the
    /// WAL group, serialized as if they had arrived just after it.
    fn flush_batch(&self, world: &mut World) {
        let events = std::mem::take(&mut self.inner.borrow_mut().pending);
        if events.is_empty() {
            return;
        }
        {
            let mut coordinator = self.inner.borrow_mut();
            let id = coordinator.batch_seq;
            coordinator.batch_seq += 1;
            coordinator.current_batch = Some(id);
            if coordinator.config.observe.metrics() {
                coordinator.metrics.batch_size.record(events.len() as u64);
            }
            coordinator.mgr.begin_group();
        }

        // Per-event plan context, and the key union for the lock
        // pre-pass.
        type EventCtx = Option<(Rc<Plan>, Rc<InstanceKeys>, TaskId)>;
        let mut contexts: Vec<EventCtx> = Vec::with_capacity(events.len());
        let mut cb_keys: BTreeSet<StoreKey> = BTreeSet::new();
        for event in &events {
            let (instance, path) = match event {
                PendingEvent::Done(msg) => (&msg.instance, &msg.path),
                PendingEvent::Mark(msg) => (&msg.instance, &msg.path),
            };
            let ctx = self.instance_ctx(instance).and_then(|(plan, keys)| {
                let task = plan.task_by_path(path)?;
                Some((plan, keys, task))
            });
            if let Some((_, keys, task)) = &ctx {
                cb_keys.insert(StoreKey::from(keys.cb(*task)));
            }
            contexts.push(ctx);
        }

        let mut staged: Vec<StagedEffect> = Vec::new();
        let mut slow: BTreeSet<usize> = BTreeSet::new();
        let committed = {
            let mut coordinator = self.inner.borrow_mut();
            let action = coordinator.mgr.begin();
            // One ordered pass acquires every control-block lock before
            // any transition stages.
            let mut ok = cb_keys
                .iter()
                .all(|key| coordinator.mgr.read_key_raw(&action, key).is_ok());
            if ok {
                for (idx, (event, ctx)) in events.iter().zip(&contexts).enumerate() {
                    let Some((plan, keys, task)) = ctx else {
                        continue; // unknown instance or path: dropped, as ever
                    };
                    match coordinator.stage_event(&action, event, plan, keys, *task) {
                        Staging::Staged(effect) => staged.push(effect),
                        Staging::Consumed => {}
                        Staging::Slow => {
                            slow.insert(idx);
                        }
                        Staging::Error => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                coordinator.commit(action).is_ok()
            } else {
                coordinator.mgr.abort(action);
                false
            }
        };

        if committed {
            let now_ns = world.now().as_nanos();
            let mut touched: Vec<(String, Vec<TaskId>)> = Vec::new();
            {
                let mut coordinator = self.inner.borrow_mut();
                for effect in &staged {
                    if effect.is_mark {
                        coordinator.metrics.marks.inc();
                    } else {
                        coordinator.note_terminals(&effect.instance, 1);
                    }
                    let kind = coordinator.commit_event(effect.what.clone());
                    coordinator.record_event(
                        now_ns,
                        &effect.instance,
                        Some(&effect.path),
                        effect.attempt,
                        kind,
                    );
                    match touched
                        .iter_mut()
                        .find(|(name, _)| name == &effect.instance)
                    {
                        Some((_, tasks)) => tasks.push(effect.task_id),
                        None => touched.push((effect.instance.clone(), vec![effect.task_id])),
                    }
                }
            }
            // Completed dispatches release their watchdogs and load
            // *before* the cascade dispatches anything new.
            for effect in &staged {
                if !effect.is_mark {
                    let _ = self.clear_watch(world, &effect.instance, &effect.path);
                }
            }
            // One readiness pass per touched instance, seeded from the
            // union of its completions (first-touch arrival order).
            for (instance, tasks) in &touched {
                self.evaluate_from(world, instance, tasks);
            }
        } else {
            // The shared action rolled back, so committed state is
            // untouched: replay the whole window through the one-event
            // pipeline instead.
            slow = (0..events.len()).collect();
        }

        // The leftovers run inside the same WAL group, as if they had
        // arrived right after the batch.
        for (idx, event) in events.into_iter().enumerate() {
            if slow.contains(&idx) {
                match event {
                    PendingEvent::Done(msg) => self.on_task_done(world, msg),
                    PendingEvent::Mark(msg) => self.on_mark(world, msg),
                }
            }
        }

        {
            let mut coordinator = self.inner.borrow_mut();
            let _ = coordinator.mgr.end_group();
            coordinator.current_batch = None;
        }
        let _ = self.inner.borrow_mut().maybe_checkpoint();
        // A flushed batch both frees executor slots (completions) and
        // settles instances — revisit parked dispatches and the
        // admission queue.
        self.pump(world);
    }

    // -----------------------------------------------------------------
    // Shard routing.
    // -----------------------------------------------------------------

    /// `Some(owner)` when `instance` belongs to a *different*
    /// coordinator per the shared shard map (the request must be
    /// forwarded), `None` when this node owns it.
    fn misdirected(&self, instance: &str) -> Option<NodeId> {
        let coordinator = self.inner.borrow();
        // Residency beats the map: the instant a committed hand-off is
        // adopted, this node *is* the owner — even while its own map is
        // still the pre-flip one (a crashed destination recovers the
        // move before any map update reaches it). Without this, the
        // stale map bounces relayed reports straight back at the
        // relayer until the hop cap eats them.
        if coordinator.instances.contains_key(instance) {
            return None;
        }
        let owner = coordinator.shard.node_of(instance);
        if owner != coordinator.node {
            return Some(owner);
        }
        // The map says "mine" but the instance was handed off and the
        // rebalance's map flip hasn't happened yet (the dual-delivery
        // window): relay to where it went.
        coordinator.moved.get(instance).copied()
    }

    /// Relays a misdirected one-way message (`Done`/`Mark`) to the
    /// owning shard, wrapped in [`EngineMsg::Forwarded`] so the hop
    /// count travels with it. A message that already burned
    /// [`MAX_FORWARD_HOPS`] relays is circling between coordinators
    /// whose shard maps disagree — it is dropped and counted
    /// (`coord.forward_loops`) instead of bouncing forever. The relay
    /// charges only `forwarded`; the owner counts the operation itself
    /// exactly once.
    fn forward_oneway(
        &self,
        world: &mut World,
        owner: NodeId,
        instance: &str,
        inner: EngineMsg,
        hops: u32,
    ) {
        let (node, wrapped) = {
            let coordinator = self.inner.borrow();
            if hops >= MAX_FORWARD_HOPS {
                coordinator.metrics.forward_loops.inc();
                return;
            }
            coordinator.metrics.forwarded.inc();
            let epoch = coordinator.shard.epoch();
            coordinator.record_event(
                world.now().as_nanos(),
                instance,
                None,
                0,
                ObsEventKind::Forward {
                    to: owner.index() as u32,
                    epoch,
                },
            );
            let wrapped = EngineMsg::Forwarded {
                epoch,
                hops: hops + 1,
                inner: flowscript_codec::to_bytes(&inner),
            };
            (coordinator.node, wrapped)
        };
        world.send(node, owner, flowscript_codec::to_bytes(&wrapped));
    }

    /// Relays a misdirected `StartInstance` RPC to the owning shard and
    /// pipes the owner's reply back to the original caller. At the hop
    /// cap the caller gets a diagnosable error instead of a hang.
    fn forward_start(
        &self,
        world: &mut World,
        owner: NodeId,
        instance: &str,
        token: ReplyToken,
        inner: EngineMsg,
        hops: u32,
    ) {
        let (node, wrapped) = {
            let coordinator = self.inner.borrow();
            if hops >= MAX_FORWARD_HOPS {
                coordinator.metrics.forward_loops.inc();
                drop(coordinator);
                let reply = EngineMsg::Ack {
                    result: Err(format!(
                        "instance `{instance}` bounced through {hops} shards without \
                         finding an owner (disagreeing shard maps?)"
                    )),
                };
                world.rpc_reply_to(token, flowscript_codec::to_bytes(&reply));
                return;
            }
            coordinator.metrics.forwarded.inc();
            let epoch = coordinator.shard.epoch();
            coordinator.record_event(
                world.now().as_nanos(),
                instance,
                None,
                0,
                ObsEventKind::Forward {
                    to: owner.index() as u32,
                    epoch,
                },
            );
            let wrapped = EngineMsg::Forwarded {
                epoch,
                hops: hops + 1,
                inner: flowscript_codec::to_bytes(&inner),
            };
            (coordinator.node, wrapped)
        };
        world.rpc_call(
            node,
            owner,
            flowscript_codec::to_bytes(&wrapped),
            SimDuration::from_secs(8),
            move |world, reply| {
                let bytes = match reply {
                    Ok(bytes) => bytes,
                    Err(err) => flowscript_codec::to_bytes(&EngineMsg::Ack {
                        result: Err(format!("owning shard unreachable: {err}")),
                    }),
                };
                world.rpc_reply_to(token, bytes);
            },
        );
    }

    // -----------------------------------------------------------------
    // Live hand-off (rebalancing).
    //
    // One instance moves in four steps, a 2PC with the source as
    // coordinator:
    //
    //   1. `handoff_collect` (source): WAL `HandOffBegin` intent, then
    //      gather the instance's entire committed keyspace into a
    //      [`HandoffPackage`].
    //   2. `handoff_prepare` (destination): re-key the package under a
    //      freshly allocated instance id and stage it as a prepared
    //      remote transaction (durable yes-vote, write locks held).
    //   3. `handoff_commit` (source): WAL `HandOffEnd` — the durable
    //      decision — then atomically delete the instance's keyspace
    //      and drop its volatile runtime. From here the source only
    //      relays (executor replies to in-flight tasks are forwarded
    //      to the new owner by the ordinary misdirection path).
    //   4. `handoff_apply` (destination): resolve the prepared stage
    //      and adopt the materialized instance — watchdogs re-armed
    //      for executing tasks *without* attempt bumps, so a relayed
    //      reply applies exactly as if the instance had never moved.
    //
    // Crash repair: `recover` purges committed-away instances whose
    // delete didn't land, presumed-aborts dangling intents, re-announces
    // verdicts, and chases in-doubt stages with `HandoffQuery`.
    // -----------------------------------------------------------------

    /// Step 1 (source): logs the move intent and packages the
    /// instance's committed keyspace. The batch window is flushed
    /// first so the package reflects every report that has arrived.
    ///
    /// # Errors
    ///
    /// Unknown instance, or storage failure logging the intent.
    pub fn handoff_collect(
        &self,
        world: &mut World,
        instance: &str,
        dest: NodeId,
    ) -> Result<HandoffPackage, EngineError> {
        // The package must be the whole committed truth: absorb the
        // batch window first so no report is stranded in memory.
        self.flush_pending(world);
        let mut coordinator = self.inner.borrow_mut();
        if !coordinator.instances.contains_key(instance) {
            return Err(EngineError::UnknownInstance(instance.to_string()));
        }
        let tx = coordinator
            .mgr
            .handoff_begin(instance, dest.index() as u32)?;
        coordinator.package_instance(instance, tx)
    }

    /// Step 1 for a whole batch bound for one destination (planned
    /// drains): ONE moving transaction covers every instance — the
    /// destination stages them as one prepared transaction and the
    /// decision applies to the batch atomically, so a drain pays one
    /// 2PC round per batch instead of one per instance.
    ///
    /// # Errors
    ///
    /// Unknown instance, or storage failure logging the intents.
    pub fn handoff_collect_batch(
        &self,
        world: &mut World,
        instances: &[String],
        dest: NodeId,
    ) -> Result<Vec<HandoffPackage>, EngineError> {
        self.flush_pending(world);
        let mut coordinator = self.inner.borrow_mut();
        for instance in instances {
            if !coordinator.instances.contains_key(instance.as_str()) {
                return Err(EngineError::UnknownInstance(instance.clone()));
            }
        }
        let tx = coordinator
            .mgr
            .handoff_begin_batch(instances, dest.index() as u32)?;
        instances
            .iter()
            .map(|instance| coordinator.package_instance(instance, tx))
            .collect()
    }

    /// Step 2 (destination): re-keys the package under a freshly
    /// allocated local instance id and stages it as a prepared remote
    /// transaction — the durable yes-vote. Nothing is visible until
    /// the source's decision arrives ([`Self::handoff_apply`] or a
    /// replayed verdict).
    ///
    /// Moves into one destination must run sequentially: the id
    /// allocation reads *committed* state, so a second prepare before
    /// the first resolves would draw the same id.
    ///
    /// # Errors
    ///
    /// Lock conflict on a staged key, undecodable metadata, or storage
    /// failure persisting the vote.
    pub fn handoff_prepare(&self, package: &HandoffPackage) -> Result<(), EngineError> {
        self.handoff_prepare_batch(std::slice::from_ref(package))
    }

    /// Step 2 for a whole batch staged under ONE moving transaction:
    /// the committed id sequence is read once and a contiguous id
    /// range `base..base + N` allocated up front, so the batch costs a
    /// single durable prepare (one yes-vote frame) however many
    /// instances it carries.
    ///
    /// # Errors
    ///
    /// As for [`Self::handoff_prepare`]; all packages must share one
    /// moving transaction.
    pub fn handoff_prepare_batch(&self, packages: &[HandoffPackage]) -> Result<(), EngineError> {
        let Some(first) = packages.first() else {
            return Ok(());
        };
        let mut coordinator = self.inner.borrow_mut();
        // The instances keep their names; only the dense fact-key id is
        // shard-local. Allocate the destination's next id range and
        // re-key each package at its offset.
        let base: u32 = coordinator
            .mgr
            .read_committed(&instance_seq_uid())?
            .unwrap_or(0);
        let total: usize = packages.iter().map(|p| p.entries.len()).sum();
        let mut writes: Vec<(StoreKey, Option<Vec<u8>>)> = Vec::with_capacity(total + 1);
        writes.push((
            StoreKey::Uid(instance_seq_uid()),
            Some(flowscript_codec::to_bytes(&(base + packages.len() as u32))),
        ));
        for (offset, package) in packages.iter().enumerate() {
            debug_assert_eq!(package.tx, first.tx, "batch spans one moving tx");
            let new_id = base + offset as u32;
            let meta_key = StoreKey::Uid(meta_uid(&package.instance));
            for (key, bytes) in &package.entries {
                match key {
                    StoreKey::Fact(fact) => {
                        debug_assert_eq!(fact.instance, package.src_instance_id);
                        let fact = FactKey {
                            instance: new_id,
                            ..*fact
                        };
                        writes.push((StoreKey::Fact(fact), Some(bytes.clone())));
                    }
                    key if *key == meta_key => {
                        let mut meta: InstanceMeta = flowscript_codec::from_bytes(bytes)
                            .map_err(|e| EngineError::Tx(format!("hand-off meta corrupt: {e}")))?;
                        meta.instance_id = new_id;
                        writes.push((key.clone(), Some(flowscript_codec::to_bytes(&meta))));
                    }
                    key => writes.push((key.clone(), Some(bytes.clone()))),
                }
            }
        }
        coordinator
            .mgr
            .prepare_remote(first.tx, first.src_node, writes)?;
        Ok(())
    }

    /// Step 3 (source): durably decides the move committed, then
    /// atomically deletes the instance's keyspace and drops its
    /// volatile runtime (watchdogs disarmed, outstanding dispatch load
    /// released — the executor replies those dispatches still owe will
    /// arrive here and be relayed to the new owner by the ordinary
    /// misdirection path).
    ///
    /// # Errors
    ///
    /// Storage failure. The decision record lands before the delete,
    /// so a failure here leaves a committed move whose purge crash
    /// recovery finishes.
    pub fn handoff_commit(
        &self,
        world: &mut World,
        instance: &str,
        tx: TxId,
        dest: NodeId,
    ) -> Result<(), EngineError> {
        self.handoff_commit_inner(world, instance, tx, dest)?;
        // Freed executor load and a freed admission slot: parked
        // dispatches of other instances may now place, and a queued
        // start may now admit.
        self.pump(world);
        Ok(())
    }

    /// Step 3 for a whole batch decided under ONE moving transaction.
    /// The per-instance decision frames and keyspace purges run inside
    /// a WAL commit group, flushing as a single atomic `GroupCommit`
    /// frame: a crash can never leave half the batch committed and the
    /// other half presumed aborted — which matters, because the
    /// destination resolves its one staged transaction all-or-nothing.
    ///
    /// # Errors
    ///
    /// As for [`Self::handoff_commit`].
    pub fn handoff_commit_batch(
        &self,
        world: &mut World,
        instances: &[String],
        tx: TxId,
        dest: NodeId,
    ) -> Result<(), EngineError> {
        self.inner.borrow_mut().mgr.begin_group();
        let mut result = Ok(());
        for instance in instances {
            result = self.handoff_commit_inner(world, instance, tx, dest);
            if result.is_err() {
                break;
            }
        }
        {
            let mut coordinator = self.inner.borrow_mut();
            if coordinator.mgr.end_group().is_err() && result.is_ok() {
                result = Err(EngineError::Tx("hand-off batch flush failed".to_string()));
            }
        }
        // The whole batch's freed load and admission slots at once.
        self.pump(world);
        result
    }

    fn handoff_commit_inner(
        &self,
        world: &mut World,
        instance: &str,
        tx: TxId,
        dest: NodeId,
    ) -> Result<(), EngineError> {
        let watchdogs = {
            let mut coordinator = self.inner.borrow_mut();
            // The durable decision record: from here the move is
            // committed, crash or no crash.
            coordinator
                .mgr
                .handoff_end(tx, instance, dest.index() as u32, true)?;
            let was_running = coordinator
                .mgr
                .read_committed::<InstanceMeta>(&meta_uid(instance))
                .ok()
                .flatten()
                .is_some_and(|meta| meta.status == InstanceStatus::Running);
            coordinator.purge_instance(instance)?;
            // Dual delivery: until the rebalance flips this node's map,
            // executor replies for the moved instance still land here —
            // the relay table routes them to the new owner.
            coordinator.moved.insert(instance.to_string(), dest);
            let mut stale = Vec::new();
            if let Some(rt) = coordinator.instances.remove(instance) {
                stale.extend(rt.watchdogs.into_values());
                for dispatched in rt.dispatched_to.values() {
                    coordinator
                        .sched
                        .note_release(dispatched.node, dispatched.cost);
                }
            }
            // The moved instance's parked dispatches must never run
            // here — the new owner re-dispatches from its own committed
            // control blocks. Its admission slot frees up too.
            coordinator.unpark_instance(instance);
            if was_running {
                coordinator.live_instances = coordinator.live_instances.saturating_sub(1);
            }
            coordinator.metrics.handoffs.inc();
            let epoch = coordinator.shard.epoch();
            coordinator.record_event(
                world.now().as_nanos(),
                instance,
                None,
                0,
                ObsEventKind::HandOff {
                    to: dest.index() as u32,
                    epoch,
                },
            );
            stale
        };
        for id in watchdogs {
            world.cancel(id);
        }
        Ok(())
    }

    /// Aborts a move whose destination could not prepare (step 3's
    /// other branch): durably records the abort so the intent is not
    /// replayed as in-doubt. The instance never stopped being served
    /// here.
    ///
    /// # Errors
    ///
    /// Storage failure persisting the abort record.
    pub fn handoff_abort(&self, instance: &str, tx: TxId, dest: NodeId) -> Result<(), EngineError> {
        let mut coordinator = self.inner.borrow_mut();
        coordinator
            .mgr
            .handoff_end(tx, instance, dest.index() as u32, false)?;
        Ok(())
    }

    /// Step 4 (destination): applies the source's decision to the
    /// prepared stage — commit makes the re-keyed keyspace visible and
    /// adopts the instance, abort discards the stage and releases its
    /// locks. Idempotent: resolving an unknown transaction is a no-op.
    ///
    /// # Errors
    ///
    /// Storage failure persisting the resolution.
    pub fn handoff_apply(
        &self,
        world: &mut World,
        tx: TxId,
        committed: bool,
    ) -> Result<(), EngineError> {
        self.inner.borrow_mut().mgr.resolve_remote(tx, committed)?;
        if committed {
            self.adopt_orphans(world);
        }
        Ok(())
    }

    /// Destination half of crash-driven adoption: commits a dead
    /// shard's packaged instance locally under a freshly allocated id.
    /// No 2PC — the source is dead and its storage fenced behind the
    /// claimant, so the claim is ONE local atomic commit. Idempotent:
    /// an instance already present (resident or committed) is skipped
    /// with `Ok(false)`, which is what lets a driver that crashed
    /// mid-claim simply run the whole adoption again.
    ///
    /// The caller adopts the landed orphans afterwards via
    /// [`Self::adopt_claimed`] (one sweep per destination).
    ///
    /// # Errors
    ///
    /// Undecodable claimed metadata, or storage failure on the commit.
    pub fn claim_adopt(
        &self,
        world: &mut World,
        package: &HandoffPackage,
        epoch: u64,
    ) -> Result<bool, EngineError> {
        let mut coordinator = self.inner.borrow_mut();
        if coordinator.instances.contains_key(&package.instance)
            || coordinator.mgr.exists(&meta_uid(&package.instance))
        {
            return Ok(false);
        }
        let new_id: u32 = coordinator
            .mgr
            .read_committed(&instance_seq_uid())?
            .unwrap_or(0);
        let meta_key = StoreKey::Uid(meta_uid(&package.instance));
        let action = coordinator.mgr.begin();
        coordinator
            .mgr
            .write(&action, &instance_seq_uid(), &(new_id + 1))?;
        for (key, bytes) in &package.entries {
            match key {
                StoreKey::Fact(fact) => {
                    debug_assert_eq!(fact.instance, package.src_instance_id);
                    let fact = FactKey {
                        instance: new_id,
                        ..*fact
                    };
                    coordinator
                        .mgr
                        .write_key_raw(&action, &StoreKey::Fact(fact), bytes.clone())?;
                }
                key if *key == meta_key => {
                    let mut meta: InstanceMeta = flowscript_codec::from_bytes(bytes)
                        .map_err(|e| EngineError::Tx(format!("claimed meta corrupt: {e}")))?;
                    meta.instance_id = new_id;
                    coordinator.mgr.write_key_raw(
                        &action,
                        key,
                        flowscript_codec::to_bytes(&meta),
                    )?;
                }
                key => coordinator.mgr.write_key_raw(&action, key, bytes.clone())?,
            }
        }
        coordinator.commit(action)?;
        coordinator.record_event(
            world.now().as_nanos(),
            &package.instance,
            None,
            0,
            ObsEventKind::Claim {
                from: package.src_node,
                epoch,
            },
        );
        Ok(true)
    }

    /// Adopts every instance whose committed state sits in this
    /// shard's store without a resident runtime — the landing half of
    /// a hand-off (and of a replayed verdict after a destination
    /// crash). Unlike crash recovery this bumps no attempts and
    /// re-dispatches nothing: the old owner relays in-flight executor
    /// replies, so the execution history stays byte-identical to an
    /// unmoved run. Watchdogs are re-armed as the safety net for a
    /// relay that never arrives.
    fn adopt_orphans(&self, world: &mut World) {
        self.adopt_orphans_as(world, None);
    }

    /// [`Self::adopt_orphans`] for crash-driven adoption: the landing
    /// trace event is [`ObsEventKind::Adopted`] — stamped with the dead
    /// shard and the claim's membership epoch — and the
    /// `coord.adoptions` counter ticks once per instance.
    pub(crate) fn adopt_claimed(&self, world: &mut World, from: u32, epoch: u64) {
        self.adopt_orphans_as(world, Some((from, epoch)));
    }

    fn adopt_orphans_as(&self, world: &mut World, claim: Option<(u32, u64)>) {
        let adopted: Vec<(String, bool)> = {
            let mut coordinator = self.inner.borrow_mut();
            let metas: Vec<ObjectUid> = coordinator.mgr.uids_matching("inst/", "/meta");
            let mut adopted = Vec::new();
            for uid in metas {
                let name = uid
                    .as_str()
                    .trim_start_matches("inst/")
                    .trim_end_matches("/meta")
                    .to_string();
                if coordinator.instances.contains_key(&name) {
                    continue;
                }
                let Ok(Some(meta)) = coordinator.mgr.read_committed::<InstanceMeta>(&uid) else {
                    continue;
                };
                let Some(rt) = coordinator.load_instance(&name, &meta) else {
                    continue;
                };
                coordinator.instances.insert(name.clone(), rt);
                if meta.status == InstanceStatus::Running {
                    // An adopted live instance occupies an admission
                    // slot on its new shard.
                    coordinator.live_instances += 1;
                }
                let kind = match claim {
                    Some((from, claim_epoch)) => {
                        coordinator.metrics.adoptions.inc();
                        ObsEventKind::Adopted {
                            from,
                            epoch: claim_epoch,
                        }
                    }
                    None => ObsEventKind::HandOff {
                        to: coordinator.node.index() as u32,
                        epoch: coordinator.shard.epoch(),
                    },
                };
                coordinator.record_event(world.now().as_nanos(), &name, None, 0, kind);
                adopted.push((name, meta.status == InstanceStatus::Running));
            }
            adopted
        };
        for (name, running) in adopted {
            self.arm_adopted_watchdogs(world, &name);
            if running {
                // Full re-evaluation: an adopted instance has no
                // commit to seed from. Executing tasks are not
                // re-dispatched — their transitions gate on the
                // control-block state.
                self.evaluate(world, &name);
            }
        }
    }

    /// Arms fresh watchdogs for every task an adopted instance has in
    /// the `Executing` state, marking them in flight. The normal case
    /// is the watchdog being disarmed by the old owner's relayed
    /// `TaskDone`; it fires only if the reply (or its relay) is truly
    /// lost, turning the move into an ordinary bounded retry.
    fn arm_adopted_watchdogs(&self, world: &mut World, instance: &str) {
        let (node, executing) = {
            let coordinator = self.inner.borrow();
            let Some(rt) = coordinator.instances.get(instance) else {
                return;
            };
            let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
            let executing: Vec<(String, u32, u32, SimDuration)> = (0..plan.tasks.len() as TaskId)
                .filter_map(|id| {
                    let cb = coordinator.read_cb_id(&keys, id)?;
                    matches!(cb.state, CbState::Executing { .. }).then(|| {
                        let task = plan.task(id);
                        let hints = ImplHints::from_map(&plan.implementation_map(task));
                        // Same timeout math as a fresh dispatch —
                        // including the observed-duration extension for
                        // the (bindings-resolved) code, so a relay
                        // delayed past a lying short hint still lands
                        // before the adopted watchdog fires.
                        let timeout = if coordinator.config.cost_feedback {
                            let script_code = plan.code(task).unwrap_or("").to_string();
                            let code = rt
                                .bindings
                                .get(&script_code)
                                .cloned()
                                .unwrap_or(script_code);
                            coordinator.costs.watchdog_timeout(
                                &code,
                                &hints,
                                coordinator.config.dispatch_timeout,
                            )
                        } else {
                            hints.watchdog_timeout(coordinator.config.dispatch_timeout)
                        };
                        (cb.path.clone(), cb.incarnation, cb.attempt, timeout)
                    })
                })
                .collect();
            (coordinator.node, executing)
        };
        for (path, incarnation, attempt, timeout) in executing {
            let handle = self.clone();
            let instance_owned = instance.to_string();
            let path_owned = path.clone();
            let watchdog = world.schedule_node_after(node, timeout, move |world| {
                handle.on_watchdog(world, &instance_owned, &path_owned, incarnation, attempt);
            });
            let stale = {
                let mut coordinator = self.inner.borrow_mut();
                coordinator.instances.get_mut(instance).and_then(|rt| {
                    rt.in_flight.insert(path.clone());
                    rt.watchdogs.insert(path, watchdog)
                })
            };
            if let Some(stale) = stale {
                world.cancel(stale);
            }
        }
    }

    /// A restarted destination asking what happened to an in-doubt
    /// move (source side). The decision record is durable before any
    /// destination learns of a commit, so an unknown transaction means
    /// abort — presumed abort.
    fn on_handoff_query(&self, world: &mut World, from: NodeId, tx: TxId) {
        let (node, committed) = {
            let coordinator = self.inner.borrow();
            (
                coordinator.node,
                coordinator.mgr.coordinator_decision(tx).unwrap_or(false),
            )
        };
        let verdict = EngineMsg::HandoffVerdict {
            tx_node: tx.node(),
            tx_seq: tx.seq(),
            committed,
        };
        world.send(node, from, flowscript_codec::to_bytes(&verdict));
    }

    /// The source's durable decision arriving for a stage this shard
    /// prepared (destination side).
    fn on_handoff_verdict(&self, world: &mut World, tx: TxId, committed: bool) {
        let _ = self.handoff_apply(world, tx, committed);
    }

    /// The shard map's current epoch on this coordinator.
    pub fn shard_epoch(&self) -> u64 {
        self.inner.borrow().shard.epoch()
    }

    /// Replaces this coordinator's shard map — the final flip of a
    /// rebalance, after every moved instance committed. Requests for
    /// instances the new map assigns elsewhere forward from now on.
    pub fn set_shard_map(&self, map: ShardMap) {
        let mut coordinator = self.inner.borrow_mut();
        coordinator.shard = map;
        // The new map is authoritative: relay tombstones from the
        // moves that led to this flip are now redundant.
        coordinator.moved.clear();
    }

    /// [`Self::set_shard_map`] for a coordinator that stays behind as a
    /// pure relay (a drained shard retired from the map, or any node
    /// whose relay table may reference departed peers). Instead of
    /// clearing the relay table, every entry pointing at a node the new
    /// map no longer carries is re-pointed at the new map's owner — so
    /// a late executor report forwards straight to the adopter instead
    /// of bouncing off a dead address and burning `forward_loops` hops.
    pub fn set_shard_map_relay(&self, map: ShardMap) {
        let mut coordinator = self.inner.borrow_mut();
        let moved = std::mem::take(&mut coordinator.moved);
        for (instance, dest) in moved {
            let dest = if map.nodes().contains(&dest) {
                dest
            } else {
                map.node_of(&instance)
            };
            coordinator.moved.insert(instance, dest);
        }
        coordinator.shard = map;
    }

    /// Records one committed move's instance-unavailability window in
    /// the `coord.handoff_pause_ns` histogram (measured wall-clock by
    /// the rebalance driver, on the source shard).
    pub fn note_handoff_pause(&self, ns: u64) {
        self.inner.borrow().metrics.handoff_pause_ns.record(ns);
    }

    /// Records one drain round's instance-unavailability window in the
    /// `coord.drain_pause_ns` histogram (measured wall-clock by the
    /// drain driver, on the departing shard — the whole batch is
    /// unavailable for the round, so the round IS the per-instance
    /// pause bound).
    pub fn note_drain_pause(&self, ns: u64) {
        self.inner.borrow().metrics.drain_pause_ns.record(ns);
    }

    /// Records a fleet-level trace event (drain begin/end) against
    /// this shard, labeled with the shard's node name rather than an
    /// instance.
    pub(crate) fn record_system_event(&self, now_ns: u64, label: &str, kind: ObsEventKind) {
        self.inner
            .borrow_mut()
            .record_event(now_ns, label, None, 0, kind);
    }

    // -----------------------------------------------------------------
    // Instance lifecycle.
    // -----------------------------------------------------------------

    /// Client request: start an instance of a repository script. Fetches
    /// the script from the repository, then compiles and launches.
    #[allow(clippy::too_many_arguments)]
    fn on_start_instance(
        &self,
        world: &mut World,
        token: ReplyToken,
        instance: String,
        script: String,
        version: Option<u32>,
        set: String,
        inputs: BTreeMap<String, ObjectVal>,
    ) {
        let (node, repo) = {
            let coordinator = self.inner.borrow();
            (coordinator.node, coordinator.repo)
        };
        if self.inner.borrow().instances.contains_key(&instance)
            || self.inner.borrow().read_meta(&instance).is_some()
        {
            let reply = EngineMsg::Ack {
                result: Err(format!("instance `{instance}` already exists")),
            };
            world.rpc_reply_to(token, flowscript_codec::to_bytes(&reply));
            return;
        }
        let get = EngineMsg::RepoGet {
            name: script.clone(),
            version,
        };
        // The start occupies an admission slot for the whole repository
        // round-trip — otherwise a burst of starts all admitted before
        // any instance materializes would blow straight past the cap.
        self.inner.borrow_mut().starting += 1;
        let handle = self.clone();
        world.rpc_call(
            node,
            repo,
            flowscript_codec::to_bytes(&get),
            SimDuration::from_secs(5),
            move |world, reply| {
                {
                    let mut coordinator = handle.inner.borrow_mut();
                    coordinator.starting = coordinator.starting.saturating_sub(1);
                }
                let result = match reply {
                    Err(err) => Err(format!("repository unreachable: {err}")),
                    Ok(bytes) => match flowscript_codec::from_bytes::<EngineMsg>(&bytes) {
                        Ok(EngineMsg::RepoReply {
                            result: Ok(stored_version),
                            source,
                            root,
                            plan,
                        }) => {
                            // Use the repository's cached plan when it
                            // decodes AND survives structural +
                            // fingerprint validation (a corrupted plan
                            // must fall back to local lowering, not
                            // panic mid-evaluate).
                            let served = (!plan.is_empty())
                                .then(|| flowscript_codec::from_bytes::<Plan>(&plan).ok())
                                .flatten()
                                .filter(|plan| plan.is_well_formed() && plan.verify_fingerprint());
                            handle
                                .start_instance_full(
                                    world,
                                    &instance,
                                    &script,
                                    &source,
                                    &root,
                                    &set,
                                    inputs.clone(),
                                    served,
                                    Some(stored_version),
                                )
                                .map_err(|e| e.to_string())
                        }
                        Ok(EngineMsg::RepoReply {
                            result: Err(err), ..
                        }) => Err(err),
                        _ => Err("malformed repository reply".to_string()),
                    },
                };
                let reply = EngineMsg::Ack { result };
                world.rpc_reply_to(token, flowscript_codec::to_bytes(&reply));
                // A failed start frees its reserved slot; a successful
                // one may still have room under the cap. Either way the
                // queue head gets another look.
                handle.pump(world);
            },
        );
    }

    /// Compiles and launches an instance (also used directly by tests).
    ///
    /// # Errors
    ///
    /// Invalid script, bad inputs or storage failure.
    #[allow(clippy::too_many_arguments)]
    pub fn start_instance(
        &self,
        world: &mut World,
        instance: &str,
        script_name: &str,
        source: &str,
        root: &str,
        set: &str,
        inputs: BTreeMap<String, ObjectVal>,
    ) -> Result<(), EngineError> {
        self.start_instance_full(
            world,
            instance,
            script_name,
            source,
            root,
            set,
            inputs,
            None,
            None,
        )
    }

    /// [`CoordHandle::start_instance`], optionally reusing a plan the
    /// repository already compiled for this script version.
    #[allow(clippy::too_many_arguments)]
    fn start_instance_full(
        &self,
        world: &mut World,
        instance: &str,
        script_name: &str,
        source: &str,
        root: &str,
        set: &str,
        inputs: BTreeMap<String, ObjectVal>,
        served_plan: Option<Plan>,
        version: Option<u32>,
    ) -> Result<(), EngineError> {
        // Compile-once, execute-many: a validated served plan skips the
        // whole front end here. The hierarchical schema is materialized
        // lazily (only reconfiguration needs it).
        let (plan, schema) = match served_plan {
            Some(plan) => (plan, None),
            None => {
                let schema = schema::compile_source(source, root)?;
                let plan = Plan::lower(&schema);
                (plan, Some(Rc::new(schema)))
            }
        };
        // Validate the chosen input set against the root task class.
        let root_class = plan
            .classes
            .get(plan.root().class as usize)
            .ok_or_else(|| EngineError::InvalidScript("root class missing".into()))?;
        let set_info = plan.class_set(root_class, set).ok_or_else(|| {
            EngineError::BadInputs(format!(
                "taskclass `{}` has no input set `{set}`",
                plan.str(root_class.name)
            ))
        })?;
        for object in &plan.class_objects[set_info.objects.as_range()] {
            let (name, class) = (plan.str(object.name), plan.str(object.class));
            match inputs.get(name) {
                None => {
                    return Err(EngineError::BadInputs(format!(
                        "missing input object `{name}`"
                    )))
                }
                Some(value) if value.class != class => {
                    return Err(EngineError::BadInputs(format!(
                        "input `{name}` has class `{}`, expected `{class}`",
                        value.class
                    )))
                }
                Some(_) => {}
            }
        }
        let root_path = plan.str(plan.root().path).to_string();

        let mut coordinator = self.inner.borrow_mut();
        if coordinator.instances.contains_key(instance) {
            return Err(EngineError::DuplicateInstance(instance.to_string()));
        }
        // Allocate the dense instance id from the persistent sequence.
        let instance_id: u32 = coordinator
            .mgr
            .read_committed(&instance_seq_uid())?
            .unwrap_or(0);
        let keys = InstanceKeys::build(&plan, instance, instance_id);
        let root_in = keys
            .in_key(&plan, 0, set)
            .ok_or_else(|| EngineError::BadInputs(format!("unmapped input set `{set}`")))?;
        let meta = InstanceMeta {
            script: script_name.to_string(),
            source: source.to_string(),
            root: root.to_string(),
            set: set.to_string(),
            inputs: inputs.clone(),
            status: InstanceStatus::Running,
            reconfig_count: 0,
            instance_id,
            version,
            plan_fingerprint: plan.fingerprint,
        };
        let action = coordinator.mgr.begin();
        coordinator
            .mgr
            .write(&action, &instance_seq_uid(), &(instance_id + 1))?;
        coordinator.mgr.write(&action, &meta_uid(instance), &meta)?;
        // Persist the compiled plan once per fingerprint so crash
        // recovery decodes it instead of recompiling from source.
        if !coordinator.mgr.exists(&plan_uid(plan.fingerprint)) {
            coordinator
                .mgr
                .write(&action, &plan_uid(plan.fingerprint), &plan)?;
        }
        // Root control block starts Active with the supplied inputs bound.
        let mut root_cb = TaskCb::new(root_path.clone());
        root_cb.transition(CbState::Active {
            set: set.to_string(),
        });
        coordinator.mgr.write(&action, keys.cb(0), &root_cb)?;
        // The root's input binding goes through the fact layout like
        // every other fact, so root-input fallbacks probe per object.
        let whole = coordinator.config.whole_record_facts;
        facts::write_fact_map(
            &mut coordinator.mgr,
            &action,
            &plan,
            root_in,
            &inputs,
            whole,
        )?;
        // Every descendant starts Waiting — the plan's DFS order makes
        // this one flat scan instead of a scope-tree recursion.
        for (id, task) in plan.tasks.iter().enumerate().skip(1) {
            let path = plan.str(task.path);
            coordinator
                .mgr
                .write(&action, keys.cb(id as TaskId), &TaskCb::new(path))?;
        }
        coordinator.commit(action)?;
        let task_count = plan.tasks.len();
        coordinator.instances.insert(
            instance.to_string(),
            InstanceRt {
                schema,
                plan: Rc::new(plan),
                keys: Rc::new(keys),
                bindings: BTreeMap::new(),
                watchdogs: BTreeMap::new(),
                in_flight: BTreeSet::new(),
                dispatched_to: BTreeMap::new(),
                retry_from: BTreeMap::new(),
                // Root Active + every descendant Waiting.
                nonterminal: task_count,
            },
        );
        // The admission cap counts live (Running) instances; this one
        // just became live.
        coordinator.live_instances += 1;
        coordinator.record_event(
            world.now().as_nanos(),
            instance,
            Some(&root_path),
            0,
            ObsEventKind::InstanceStart,
        );
        drop(coordinator);
        self.evaluate(world, instance);
        Ok(())
    }

    /// Instance status (monitoring API).
    pub fn status(&self, instance: &str) -> Result<InstanceStatus, EngineError> {
        self.inner
            .borrow()
            .read_meta(instance)
            .map(|meta| meta.status)
            .ok_or_else(|| EngineError::UnknownInstance(instance.to_string()))
    }

    /// All task states of an instance, keyed by path. Live instances
    /// resolve through the plan's interned uid table (point reads); the
    /// uid prefix scan survives only for instances not resident in
    /// memory (e.g. monitoring a crashed-but-unrecovered store).
    pub fn task_states(&self, instance: &str) -> BTreeMap<String, CbState> {
        let coordinator = self.inner.borrow();
        if let Some(rt) = coordinator.instances.get(instance) {
            return (0..rt.plan.tasks.len() as TaskId)
                .filter_map(|id| {
                    let cb = coordinator.read_cb_id(&rt.keys, id)?;
                    Some((cb.path.clone(), cb.state))
                })
                .collect();
        }
        let prefix = format!("inst/{instance}/cb/");
        coordinator
            .mgr
            .uids_with_prefix(&prefix)
            .into_iter()
            .filter_map(|uid| {
                let cb: TaskCb = coordinator.mgr.read_committed(&uid).ok().flatten()?;
                Some((cb.path.clone(), cb.state))
            })
            .collect()
    }

    /// A published output fact (monitoring; e.g. root marks).
    pub fn output_fact(
        &self,
        instance: &str,
        path: &str,
        output: &str,
    ) -> Option<BTreeMap<String, ObjectVal>> {
        let coordinator = self.inner.borrow();
        let rt = coordinator.instances.get(instance)?;
        let task = rt.plan.task_by_path(path)?;
        let key = rt.keys.out_key(&rt.plan, task, output)?;
        facts::read_fact_map(
            &coordinator.mgr,
            &rt.plan,
            key,
            coordinator.config.whole_record_facts,
        )
        .ok()
        .flatten()
    }

    /// Names of instances known to the coordinator.
    pub fn instance_names(&self) -> Vec<String> {
        self.inner.borrow().instances.keys().cloned().collect()
    }

    // -----------------------------------------------------------------
    // Evaluation: the event-driven commit pipeline.
    // -----------------------------------------------------------------

    /// The instance's plan and interned key table.
    fn instance_ctx(&self, instance: &str) -> Option<(Rc<Plan>, Rc<InstanceKeys>)> {
        let coordinator = self.inner.borrow();
        let rt = coordinator.instances.get(instance)?;
        Some((rt.plan.clone(), rt.keys.clone()))
    }

    /// Full re-evaluation: seeds every task and drains. Survives for
    /// instance start, crash recovery and reconfiguration re-entry —
    /// the commit paths use [`CoordHandle::evaluate_from`].
    pub fn evaluate(&self, world: &mut World, instance: &str) {
        let Some((plan, keys)) = self.instance_ctx(instance) else {
            return;
        };
        let mut worklist = Worklist::new();
        worklist.seed_all(&plan);
        self.drain(world, instance, &plan, &keys, worklist);
    }

    /// Event-driven re-evaluation: seeds only the consumers of the
    /// tasks whose facts just committed (reverse dependency +
    /// notification edges) and drains. With
    /// [`EngineConfig::full_rescan`] set, falls back to the full-scan
    /// oracle — the equivalence tests assert both produce identical
    /// dispatch traces.
    pub fn evaluate_from(&self, world: &mut World, instance: &str, changed: &[TaskId]) {
        let Some((plan, keys)) = self.instance_ctx(instance) else {
            return;
        };
        let mut worklist = Worklist::new();
        if self.inner.borrow().config.full_rescan {
            worklist.seed_all(&plan);
        } else {
            for &task in changed {
                worklist.seed_commit(&plan, task);
            }
        }
        self.drain(world, instance, &plan, &keys, worklist);
    }

    /// Pops the worklist to quiescence: all startability re-checks
    /// first (highest declared priority, ties by ascending id —
    /// declaration order), then scope outputs
    /// deepest-first. Each progress step commits one atomic action and
    /// seeds the consumers of whatever it published.
    fn drain(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Rc<Plan>,
        keys: &Rc<InstanceKeys>,
        worklist: Worklist,
    ) {
        // Under batching, the whole drain commits as one WAL group:
        // every action the cascade below commits buffers into a single
        // frame flushed at the outermost `end_group` (nested drains —
        // e.g. a fail_task inside a scope cascade — fold into the
        // enclosing group via the depth counter). The unbatched arm
        // takes today's one-frame-per-commit path untouched.
        let group = {
            let mut coordinator = self.inner.borrow_mut();
            let group = coordinator.config.commit_batch.enabled();
            if group {
                coordinator.mgr.begin_group();
            }
            group
        };
        self.drain_inner(world, instance, plan, keys, worklist);
        if group {
            let mut coordinator = self.inner.borrow_mut();
            // Flush failures surface on the next commit's storage ops;
            // the drain itself has no error channel.
            let _ = coordinator.mgr.end_group();
        }
        let _ = self.inner.borrow_mut().maybe_checkpoint();
    }

    fn drain_inner(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Rc<Plan>,
        keys: &Rc<InstanceKeys>,
        mut worklist: Worklist,
    ) {
        let mut steps: u64 = 0;
        loop {
            let Some(meta) = self.inner.borrow().read_meta(instance) else {
                return;
            };
            if meta.status.is_terminal() {
                return;
            }
            if let Some(task) = worklist.pop_start() {
                steps += 1;
                self.inner.borrow().metrics.evaluations.inc();
                self.try_start(world, instance, plan, keys, task, &mut worklist);
                continue;
            }
            if let Some(scope) = worklist.pop_output(plan) {
                steps += 1;
                self.inner.borrow().metrics.evaluations.inc();
                self.check_scope_outputs(world, instance, plan, keys, scope, &mut worklist);
                continue;
            }
            break;
        }
        {
            let coordinator = self.inner.borrow();
            if coordinator.config.observe.metrics() {
                coordinator.metrics.commit_drain_len.record(steps);
            }
        }
        #[cfg(debug_assertions)]
        self.assert_quiescent(instance, plan, keys);
        self.stuck_check(world, instance);
    }

    /// Re-tests one task's input sets and starts it when satisfied
    /// (dispatch for leaves, activation + compound-boundary seeding for
    /// scopes).
    fn try_start(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        task_id: TaskId,
        worklist: &mut Worklist,
    ) {
        let task = plan.task(task_id);
        let Some(parent) = task.parent else {
            return; // the root never rebinds through the start agenda
        };
        let activation = {
            let coordinator = self.inner.borrow();
            let parent_cb = coordinator.read_cb_id(keys, parent);
            let cb = coordinator.read_cb_id(keys, task_id);
            match (parent_cb, cb) {
                (Some(parent_cb), Some(cb))
                    if matches!(parent_cb.state, CbState::Active { .. })
                        && cb.state == CbState::Waiting
                        && cb.incarnation == parent_cb.scope_inc =>
                {
                    let facts = StoreFacts::new(
                        &coordinator.mgr,
                        keys,
                        coordinator.config.whole_record_facts,
                    );
                    let satisfied = plan_eval::eval_task_inputs(plan, task_id, &facts);
                    match facts.take_fault() {
                        Some(fault) => Err(fault),
                        None => Ok(satisfied),
                    }
                }
                _ => Ok(None),
            }
        };
        let activation = match activation {
            Err(fault) => {
                // A corrupt fact record must not read as "fact absent"
                // and silently mis-evaluate readiness.
                self.fail_instance_storage(world, instance, &fault);
                return;
            }
            Ok(activation) => activation,
        };
        if let Some((set, bound)) = activation {
            if self.activate_task(world, instance, plan, keys, task_id, set, bound) {
                // The binding itself is a committed fact: consumers of
                // this task's input sets re-check, and a fresh compound
                // enables its constituents (the compound boundary).
                worklist.seed_commit(plan, task_id);
                if task.is_scope {
                    worklist.seed_children(plan, task_id);
                }
            }
        }
    }

    /// Fails an instance on a storage/decode fault: the fact store can
    /// no longer answer readiness soundly, so instead of silently
    /// treating the fact as absent the drain parks the instance with
    /// the diagnosable reason (a reconfiguration or administrative
    /// repair can revive it).
    fn fail_instance_storage(&self, world: &World, instance: &str, fault: &str) {
        let mut coordinator = self.inner.borrow_mut();
        let Some(mut meta) = coordinator.read_meta(instance) else {
            return;
        };
        if meta.status.is_terminal() {
            return;
        }
        let reason = format!("fact storage fault: {fault}");
        meta.status = InstanceStatus::Stuck {
            reason: reason.clone(),
        };
        let action = coordinator.mgr.begin();
        let ok = coordinator
            .mgr
            .write(&action, &meta_uid(instance), &meta)
            .is_ok();
        if ok {
            if coordinator.commit(action).is_ok() {
                // A stuck instance stops counting against the
                // admission cap (a revival re-counts it).
                coordinator.live_instances = coordinator.live_instances.saturating_sub(1);
                coordinator.record_event(
                    world.now().as_nanos(),
                    instance,
                    None,
                    0,
                    ObsEventKind::Stuck { reason },
                );
            }
        } else {
            coordinator.mgr.abort(action);
        }
    }

    /// Binds a satisfied input set and starts the task (dispatch for
    /// leaves, activation for compounds). Returns whether progress was
    /// made. The binding arrives slot-aligned from the evaluator, so
    /// the per-object fact write needs no name-keyed map — only a leaf
    /// dispatch materializes one (the executor wire format).
    #[allow(clippy::too_many_arguments)]
    fn activate_task(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        task_id: TaskId,
        set_id: flowscript_plan::StrId,
        bound: Vec<(flowscript_plan::StrId, ObjectVal)>,
    ) -> bool {
        let task = plan.task(task_id);
        let path = plan.str(task.path);
        let set = plan.str(set_id);
        let Some(in_key) = keys.in_key(plan, task_id, set) else {
            return false;
        };
        let Some(slots) = plan.sets[task.sets.as_range()]
            .iter()
            .find(|s| s.name == set_id)
            .map(|s| s.slots)
        else {
            return false;
        };
        {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb_id(keys, task_id) else {
                return false;
            };
            let next = if task.is_scope {
                CbState::Active {
                    set: set.to_string(),
                }
            } else {
                CbState::Executing {
                    set: set.to_string(),
                }
            };
            cb.transition(next);
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            let write = coordinator
                .mgr
                .write(&action, keys.cb(task_id), &cb)
                .and_then(|_| {
                    facts::write_fact_bound(
                        &mut coordinator.mgr,
                        &action,
                        plan,
                        in_key,
                        slots,
                        &bound,
                        whole,
                    )
                });
            if write.is_err() {
                coordinator.mgr.abort(action);
                return false;
            }
            if coordinator.commit(action).is_err() {
                return false;
            }
        }
        if !task.is_scope {
            let stamped = facts::bound_map(plan, &bound);
            self.dispatch(world, instance, path, 0, stamped, BTreeMap::new());
        }
        true
    }

    /// Re-tests one Active scope's output mappings: at most one
    /// progress step (a mark, a repeat, or a terminal outcome), then
    /// the scope re-queues itself if more may fire — starts seeded by
    /// the step run first, preserving the fixpoint precedence.
    fn check_scope_outputs(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        scope_id: TaskId,
        worklist: &mut Worklist,
    ) {
        let Some(scope_cb) = self.inner.borrow().read_cb_id(keys, scope_id) else {
            return;
        };
        if !matches!(scope_cb.state, CbState::Active { .. }) {
            return;
        }
        // Marks first (non-terminal), then the first satisfied terminal
        // output (or repeat) — both in declaration order.
        let satisfied = {
            let coordinator = self.inner.borrow();
            let facts = StoreFacts::new(
                &coordinator.mgr,
                keys,
                coordinator.config.whole_record_facts,
            );
            let satisfied = plan_eval::eval_scope_outputs(plan, scope_id, &facts);
            match facts.take_fault() {
                Some(fault) => Err(fault),
                None => Ok(satisfied),
            }
        };
        let satisfied = match satisfied {
            Err(fault) => {
                self.fail_instance_storage(world, instance, &fault);
                return;
            }
            Ok(satisfied) => satisfied,
        };
        for (out_idx, mapped) in &satisfied {
            let output = &plan.outputs[*out_idx];
            if output.kind == OutputKind::Mark
                && !scope_cb.mark_emitted(plan.str(output.name))
                && self
                    .emit_scope_mark(
                        world.now().as_nanos(),
                        instance,
                        plan,
                        keys,
                        scope_id,
                        *out_idx,
                        mapped,
                    )
                    .is_ok()
            {
                worklist.seed_commit(plan, scope_id);
                worklist.push_task(plan, scope_id); // more outputs may fire
                return;
            }
        }
        for (out_idx, mapped) in satisfied {
            match plan.outputs[out_idx].kind {
                OutputKind::Mark => {}
                OutputKind::RepeatOutcome => {
                    self.repeat_scope(
                        world, instance, plan, keys, scope_id, out_idx, mapped, worklist,
                    );
                    return;
                }
                kind @ (OutputKind::Outcome | OutputKind::AbortOutcome) => {
                    self.terminate_scope(
                        world, instance, plan, keys, scope_id, out_idx, kind, mapped,
                    );
                    worklist.seed_commit(plan, scope_id);
                    return;
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Dispatch and executor replies.
    // -----------------------------------------------------------------

    /// Sends a `StartTask` to an executor and arms the watchdog. The
    /// executor is chosen by the load-aware scheduler: `location` pins
    /// are hard constraints (an unsatisfiable pin fails the task with
    /// the diagnosable reason), a retry avoids the node the previous
    /// attempt failed on whenever an alternative is eligible, and the
    /// remainder goes least-loaded.
    fn dispatch(
        &self,
        world: &mut World,
        instance: &str,
        path: &str,
        attempt: u32,
        inputs: BTreeMap<String, ObjectVal>,
        repeat_objects: BTreeMap<String, ObjectVal>,
    ) {
        // Fenced = zombie: nothing dispatches off claimed storage.
        if self.inner.borrow_mut().mgr.probe_fence().is_some() {
            return;
        }
        enum Prepared {
            Send {
                node: NodeId,
                executor: NodeId,
                bytes: Vec<u8>,
                timeout: SimDuration,
                incarnation: u32,
            },
            /// The task cannot run anywhere (unsatisfiable location).
            Unplaceable(String),
        }
        // Gather everything under one borrow, then interact with the
        // world outside it.
        let now_ns = world.now().as_nanos();
        let prepared = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(rt) = coordinator.instances.get(instance) else {
                return;
            };
            let plan = rt.plan.clone();
            let keys = rt.keys.clone();
            let (task_id, cb) = match plan.task_by_path(path) {
                Some(task_id) => match coordinator.read_cb_id(&keys, task_id) {
                    Some(cb) => (task_id, cb),
                    None => {
                        // Only a mid-flight reconfiguration can drop the
                        // control block of a scheduled dispatch.
                        coordinator.metrics.dropped_dispatches.inc();
                        debug_assert!(
                            coordinator.metrics.reconfigs.get() > 0,
                            "dispatch dropped `{path}` of `{instance}`: control block \
                             missing without any reconfiguration"
                        );
                        return;
                    }
                },
                None => {
                    coordinator.metrics.dropped_dispatches.inc();
                    debug_assert!(
                        coordinator.metrics.reconfigs.get() > 0,
                        "dispatch dropped `{path}` of `{instance}`: task missing from \
                         the plan without any reconfiguration"
                    );
                    return;
                }
            };
            let task = plan.task(task_id);
            let CbState::Executing { set } = cb.state.clone() else {
                return; // stale (cancelled/terminated meanwhile): not a drop
            };
            // Run-time binding: per-instance rebinding overrides the
            // script's name. A leaf with no implementation clause has
            // no code to ship — shipping an empty name would bounce off
            // every executor as an unbound implementation and burn the
            // retry budget on an error no retry can fix.
            let script_code = match plan.code(task) {
                Some(code) if !code.is_empty() => code.to_string(),
                _ => {
                    drop(coordinator);
                    self.fail_task(
                        world,
                        instance,
                        path,
                        &format!("missing implementation code for `{path}`"),
                    );
                    return;
                }
            };
            let rt = coordinator.instances.get(instance).expect("checked above");
            let code = rt
                .bindings
                .get(&script_code)
                .cloned()
                .unwrap_or(script_code);
            let implementation = plan.implementation_map(task);
            let hints = ImplHints::from_map(&implementation);
            // Capacity gate: when every eligible executor is at its
            // declared capacity, park instead of piling on. The path
            // stays in `in_flight` (it IS outstanding work — stuck
            // detection and crash recovery must see it) and the
            // committed `Executing` control block makes the park
            // crash-safe: recovery re-dispatches, and re-parks if the
            // fleet is still full. `retry_from` is left in place for
            // the eventual real dispatch.
            if coordinator.sched.all_saturated(&hints) {
                let seq = coordinator.park_seq;
                coordinator.park_seq += 1;
                coordinator.record_event(
                    now_ns,
                    instance,
                    Some(path),
                    attempt,
                    ObsEventKind::Parked {
                        queue_depth: coordinator.parked.len() as u64 + 1,
                    },
                );
                coordinator.parked.insert(
                    (std::cmp::Reverse(hints.priority), seq),
                    ParkedDispatch {
                        instance: instance.to_string(),
                        path: path.to_string(),
                        attempt,
                        inputs,
                        repeat_objects,
                        hints,
                        parked_ns: now_ns,
                    },
                );
                if coordinator.config.observe.metrics() {
                    coordinator
                        .metrics
                        .ready_queue_depth
                        .set(coordinator.parked.len() as i64);
                }
                if let Some(rt) = coordinator.instances.get_mut(instance) {
                    rt.in_flight.insert(path.to_string());
                }
                return;
            }
            // A failed attempt recorded the node it died on; consume it
            // so the retry relocates whenever an alternative exists
            // (service relocation, §3).
            let avoid = coordinator
                .instances
                .get_mut(instance)
                .and_then(|rt| rt.retry_from.remove(path));
            match coordinator.sched.pick(path, attempt, &hints, avoid) {
                Err(err) => Prepared::Unplaceable(err.to_string()),
                Ok(placement) => {
                    if placement.no_alternative {
                        coordinator.metrics.no_alternative_retries.inc();
                    }
                    if coordinator.config.observe.metrics() {
                        coordinator.metrics.sched_pick_load.record(placement.load);
                    }
                    // Watchdog: base timeout extended by the declared
                    // duration — or, with cost feedback on, by the
                    // observed estimate when that is *longer* (a lying
                    // short hint must not time out healthy work) —
                    // capped by the declared deadline.
                    let timeout = if coordinator.config.cost_feedback {
                        coordinator.costs.watchdog_timeout(
                            &code,
                            &hints,
                            coordinator.config.dispatch_timeout,
                        )
                    } else {
                        hints.watchdog_timeout(coordinator.config.dispatch_timeout)
                    };
                    let msg = EngineMsg::Start(StartTask {
                        instance: instance.to_string(),
                        path: path.to_string(),
                        incarnation: cb.incarnation,
                        attempt,
                        code: code.clone(),
                        implementation,
                        set,
                        inputs,
                        repeat_objects,
                        epoch: coordinator.shard.epoch(),
                    });
                    coordinator.metrics.dispatches.inc();
                    coordinator.record_event(
                        now_ns,
                        instance,
                        Some(path),
                        attempt,
                        ObsEventKind::Dispatch {
                            executor: placement.node.index() as u32,
                        },
                    );
                    if coordinator.config.record_dispatches {
                        coordinator.dispatch_log.push(DispatchRecord {
                            instance: instance.to_string(),
                            path: path.to_string(),
                            attempt,
                            executor: placement.node,
                        });
                    }
                    // Count the load now — at the observed estimate
                    // when the cost model has one, else the declared
                    // remaining-work cost — releasing any stale entry a
                    // defensive re-dispatch might have left behind.
                    let cost = if coordinator.config.cost_feedback {
                        coordinator.costs.load_cost(&code, &hints)
                    } else {
                        hints.load_cost()
                    };
                    let _ = coordinator.release_dispatch(instance, path, 0);
                    coordinator.sched.note_dispatch(placement.node, cost);
                    if let Some(rt) = coordinator.instances.get_mut(instance) {
                        rt.dispatched_to.insert(
                            task_id,
                            DispatchedTask {
                                node: placement.node,
                                cost,
                                sent_ns: now_ns,
                                code,
                            },
                        );
                    }
                    Prepared::Send {
                        node: coordinator.node,
                        executor: placement.node,
                        bytes: flowscript_codec::to_bytes(&msg),
                        timeout,
                        incarnation: cb.incarnation,
                    }
                }
            }
        };
        match prepared {
            Prepared::Unplaceable(reason) => {
                // No amount of retrying places an unsatisfiable pin:
                // fail the task immediately with the diagnosable reason.
                self.fail_task(world, instance, path, &reason);
            }
            Prepared::Send {
                node,
                executor,
                bytes,
                timeout,
                incarnation,
            } => {
                let handle = self.clone();
                let instance_owned = instance.to_string();
                let path_owned = path.to_string();
                let watchdog = world.schedule_node_after(node, timeout, move |world| {
                    handle.on_watchdog(world, &instance_owned, &path_owned, incarnation, attempt);
                });
                let stale = {
                    let mut coordinator = self.inner.borrow_mut();
                    coordinator.instances.get_mut(instance).and_then(|rt| {
                        rt.in_flight.insert(path.to_string());
                        rt.watchdogs.insert(path.to_string(), watchdog)
                    })
                };
                if let Some(stale) = stale {
                    world.cancel(stale);
                }
                world.send(node, executor, bytes);
            }
        }
    }

    fn on_task_done(&self, world: &mut World, msg: TaskDone) {
        let Some((plan, keys)) = self.instance_ctx(&msg.instance) else {
            return;
        };
        let Some(task_id) = plan.task_by_path(&msg.path) else {
            return;
        };
        let current = self.inner.borrow().read_cb_id(&keys, task_id);
        let Some(cb) = current else {
            return;
        };
        let CbState::Executing { .. } = cb.state else {
            return; // stale (cancelled/terminated meanwhile)
        };
        if cb.incarnation != msg.incarnation || cb.attempt != msg.attempt {
            return; // stale attempt or previous scope incarnation
        }
        let released = self.clear_watch(world, &msg.instance, &msg.path);

        match msg.result.clone() {
            TaskResult::ExecError { reason } => {
                // Remember the node the attempt died on so the retry
                // relocates whenever an alternative is eligible.
                if let Some(node) = released {
                    let mut coordinator = self.inner.borrow_mut();
                    if let Some(rt) = coordinator.instances.get_mut(&msg.instance) {
                        rt.retry_from.insert(msg.path.clone(), node);
                    }
                }
                self.retry_or_fail(world, &msg.instance, &msg.path, &reason);
            }
            TaskResult::Output {
                name,
                objects,
                redo_after,
            } => {
                let class = plan.class_of(plan.task(task_id));
                let kind = plan.class_output(class, &name).map(|o| o.kind);
                let Some(kind) = kind else {
                    self.fail_task(
                        world,
                        &msg.instance,
                        &msg.path,
                        &format!("implementation produced undeclared output `{name}`"),
                    );
                    return;
                };
                match kind {
                    OutputKind::Mark => {
                        self.fail_task(
                            world,
                            &msg.instance,
                            &msg.path,
                            &format!("mark `{name}` cannot be a completion"),
                        );
                    }
                    OutputKind::Outcome | OutputKind::AbortOutcome => {
                        let Some(out_key) = keys.out_key(&plan, task_id, &name) else {
                            return;
                        };
                        let stamped: BTreeMap<String, ObjectVal> = objects
                            .into_iter()
                            .map(|(k, v)| (k, v.produced_by(msg.path.clone())))
                            .collect();
                        let committed = {
                            let mut coordinator = self.inner.borrow_mut();
                            let mut cb = cb.clone();
                            cb.transition(if kind == OutputKind::Outcome {
                                CbState::Done {
                                    outcome: name.clone(),
                                }
                            } else {
                                CbState::Aborted {
                                    outcome: name.clone(),
                                }
                            });
                            let whole = coordinator.config.whole_record_facts;
                            let action = coordinator.mgr.begin();
                            let write = coordinator
                                .mgr
                                .write(&action, keys.cb(task_id), &cb)
                                .and_then(|_| {
                                    facts::write_fact_map(
                                        &mut coordinator.mgr,
                                        &action,
                                        &plan,
                                        out_key,
                                        &stamped,
                                        whole,
                                    )
                                });
                            match write {
                                Ok(()) => coordinator.commit(action).is_ok(),
                                Err(_) => {
                                    coordinator.mgr.abort(action);
                                    false
                                }
                            }
                        };
                        if committed {
                            {
                                let mut coordinator = self.inner.borrow_mut();
                                coordinator.note_terminals(&msg.instance, 1);
                                let what = if kind == OutputKind::Outcome {
                                    format!("done `{name}`")
                                } else {
                                    format!("aborted `{name}`")
                                };
                                coordinator.record_event(
                                    world.now().as_nanos(),
                                    &msg.instance,
                                    Some(&msg.path),
                                    msg.attempt,
                                    coordinator.commit_event(what),
                                );
                            }
                            self.evaluate_from(world, &msg.instance, &[task_id]);
                        }
                    }
                    OutputKind::RepeatOutcome => {
                        self.leaf_repeat(world, &msg, task_id, &name, redo_after);
                    }
                }
            }
        }
    }

    /// A leaf took a repeat outcome: publish the (private) repeat fact and
    /// re-execute after the requested delay (Fig. 3's `Repeat1`).
    fn leaf_repeat(
        &self,
        world: &mut World,
        msg: &TaskDone,
        task_id: TaskId,
        name: &str,
        redo_after: SimDuration,
    ) {
        let Some((plan, keys)) = self.instance_ctx(&msg.instance) else {
            return;
        };
        let TaskResult::Output { objects, .. } = &msg.result else {
            return;
        };
        let Some(out_key) = keys.out_key(&plan, task_id, name) else {
            return;
        };
        let over_limit = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb_id(&keys, task_id) else {
                return;
            };
            cb.repeats += 1;
            let over = cb.repeats > coordinator.config.max_repeats;
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            if over {
                cb.transition(CbState::Failed {
                    reason: format!("repeat limit exceeded via `{name}`"),
                });
            } else {
                cb.attempt += 1;
            }
            let write = coordinator
                .mgr
                .write(&action, keys.cb(task_id), &cb)
                .and_then(|_| {
                    facts::write_fact_map(
                        &mut coordinator.mgr,
                        &action,
                        &plan,
                        out_key,
                        objects,
                        whole,
                    )
                });
            if write.is_ok() {
                // Counters move only on commit success: an aborted
                // action must not register as a repeat.
                if coordinator.commit(action).is_ok() {
                    coordinator.metrics.repeats.inc();
                    coordinator.record_event(
                        world.now().as_nanos(),
                        &msg.instance,
                        Some(&msg.path),
                        msg.attempt,
                        coordinator.commit_event(format!("repeat `{name}`")),
                    );
                    if over {
                        coordinator.note_terminals(&msg.instance, 1);
                    }
                }
            } else {
                coordinator.mgr.abort(action);
            }
            over
        };
        if over_limit {
            self.remove_in_flight(&msg.instance, &msg.path);
            self.evaluate_from(world, &msg.instance, &[task_id]);
            return;
        }
        // Re-dispatch with the repeat objects after the requested delay.
        let inputs = {
            let coordinator = self.inner.borrow();
            let Some(cb) = coordinator.read_cb_id(&keys, task_id) else {
                return;
            };
            let CbState::Executing { set } = &cb.state else {
                return;
            };
            keys.in_key(&plan, task_id, set)
                .and_then(|key| {
                    facts::read_fact_map(
                        &coordinator.mgr,
                        &plan,
                        key,
                        coordinator.config.whole_record_facts,
                    )
                    .ok()
                    .flatten()
                })
                .unwrap_or_default()
        };
        {
            let mut coordinator = self.inner.borrow_mut();
            if let Some(rt) = coordinator.instances.get_mut(&msg.instance) {
                rt.in_flight.insert(msg.path.clone());
            }
        }
        let handle = self.clone();
        let node = self.inner.borrow().node;
        let instance = msg.instance.clone();
        let path = msg.path.clone();
        let attempt = msg.attempt + 1;
        let repeat_objects = objects.clone();
        world.schedule_node_after(node, redo_after, move |world| {
            handle.dispatch(world, &instance, &path, attempt, inputs, repeat_objects);
        });
        // The repeat fact is committed now — consumers drawing on it
        // (e.g. `AnyOf` alternatives) re-check immediately.
        self.evaluate_from(world, &msg.instance, &[task_id]);
    }

    fn on_mark(&self, world: &mut World, msg: MarkMsg) {
        let Some((plan, keys)) = self.instance_ctx(&msg.instance) else {
            return;
        };
        let Some(task_id) = plan.task_by_path(&msg.path) else {
            return;
        };
        let committed = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb_id(&keys, task_id) else {
                return;
            };
            if !matches!(cb.state, CbState::Executing { .. })
                || cb.incarnation != msg.incarnation
                || cb.attempt != msg.attempt
                || cb.mark_emitted(&msg.mark)
            {
                return;
            }
            // The mark must be declared by the class.
            let class = plan.class_of(plan.task(task_id));
            let declared = plan
                .class_output(class, &msg.mark)
                .is_some_and(|output| output.kind == OutputKind::Mark);
            if !declared {
                return;
            }
            let Some(out_key) = keys.out_key(&plan, task_id, &msg.mark) else {
                return;
            };
            cb.marks_emitted.push(msg.mark.clone());
            let stamped: BTreeMap<String, ObjectVal> = msg
                .objects
                .clone()
                .into_iter()
                .map(|(k, v)| (k, v.produced_by(msg.path.clone())))
                .collect();
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            let write = coordinator
                .mgr
                .write(&action, keys.cb(task_id), &cb)
                .and_then(|_| {
                    facts::write_fact_map(
                        &mut coordinator.mgr,
                        &action,
                        &plan,
                        out_key,
                        &stamped,
                        whole,
                    )
                });
            match write {
                // The mark counts only once its action commits.
                Ok(()) => {
                    let ok = coordinator.commit(action).is_ok();
                    if ok {
                        coordinator.metrics.marks.inc();
                        coordinator.record_event(
                            world.now().as_nanos(),
                            &msg.instance,
                            Some(&msg.path),
                            msg.attempt,
                            coordinator.commit_event(format!("mark `{}`", msg.mark)),
                        );
                    }
                    ok
                }
                Err(_) => {
                    coordinator.mgr.abort(action);
                    false
                }
            }
        };
        if committed {
            self.evaluate_from(world, &msg.instance, &[task_id]);
        }
    }

    fn on_watchdog(
        &self,
        world: &mut World,
        instance: &str,
        path: &str,
        incarnation: u32,
        attempt: u32,
    ) {
        // Fenced = zombie: no retry may be driven off claimed storage.
        if self.inner.borrow_mut().mgr.probe_fence().is_some() {
            return;
        }
        // The completion may already be sitting in the batch window:
        // its transition just hasn't committed yet, and the watchdog
        // must not turn a report-in-flight into a spurious retry.
        {
            let coordinator = self.inner.borrow();
            let buffered = coordinator.pending.iter().any(|event| match event {
                PendingEvent::Done(msg) => {
                    msg.instance == instance
                        && msg.path == path
                        && msg.incarnation == incarnation
                        && msg.attempt == attempt
                }
                PendingEvent::Mark(_) => false,
            });
            if buffered {
                return;
            }
        }
        let Some(cb) = self.inner.borrow().read_cb(instance, path) else {
            return;
        };
        if !matches!(cb.state, CbState::Executing { .. })
            || cb.incarnation != incarnation
            || cb.attempt != attempt
        {
            return;
        }
        // The executor is presumed lost: stop counting the dispatch
        // against it and remember the node so the retry relocates.
        {
            let mut coordinator = self.inner.borrow_mut();
            if let Some(node) = coordinator.release_dispatch(instance, path, 0) {
                if let Some(rt) = coordinator.instances.get_mut(instance) {
                    rt.retry_from.insert(path.to_string(), node);
                }
            }
        }
        self.retry_or_fail(world, instance, path, "dispatch timed out");
        // The timed-out dispatch released its executor load (and a
        // failed task may have terminated its instance): revisit the
        // ready and admission queues.
        self.pump(world);
    }

    /// Bounded automatic retry of a system-level failure.
    fn retry_or_fail(&self, world: &mut World, instance: &str, path: &str, reason: &str) {
        let decision = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb(instance, path) else {
                return;
            };
            if cb.attempt < coordinator.config.max_retries {
                cb.attempt += 1;
                let backoff = coordinator
                    .config
                    .retry_backoff
                    .saturating_mul(1 << (cb.attempt.min(16) - 1));
                let action = coordinator.mgr.begin();
                let ok = coordinator
                    .mgr
                    .write(&action, &cb_uid(instance, path), &cb)
                    .is_ok()
                    && coordinator.commit(action).is_ok();
                if ok {
                    // The retry counts only once its bumped attempt
                    // committed.
                    coordinator.metrics.retries.inc();
                    coordinator.record_event(
                        world.now().as_nanos(),
                        instance,
                        Some(path),
                        cb.attempt,
                        ObsEventKind::Retry {
                            reason: reason.to_string(),
                        },
                    );
                    Some((cb.attempt, backoff))
                } else {
                    None
                }
            } else {
                None
            }
        };
        match decision {
            Some((attempt, backoff)) => {
                {
                    let mut coordinator = self.inner.borrow_mut();
                    if let Some(rt) = coordinator.instances.get_mut(instance) {
                        rt.in_flight.insert(path.to_string());
                    }
                }
                let handle = self.clone();
                let node = self.inner.borrow().node;
                let instance_owned = instance.to_string();
                let path_owned = path.to_string();
                world.schedule_node_after(node, backoff, move |world| {
                    handle.redispatch(world, &instance_owned, &path_owned, attempt);
                });
            }
            None => {
                self.fail_task(world, instance, path, reason);
            }
        }
    }

    /// Re-dispatches from persisted facts (also the recovery path).
    fn redispatch(&self, world: &mut World, instance: &str, path: &str, attempt: u32) {
        let gathered = {
            let coordinator = self.inner.borrow();
            let Some(rt) = coordinator.instances.get(instance) else {
                return;
            };
            let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
            let Some(task_id) = plan.task_by_path(path) else {
                return;
            };
            let Some(cb) = coordinator.read_cb_id(&keys, task_id) else {
                return;
            };
            let CbState::Executing { set } = &cb.state else {
                return;
            };
            if cb.attempt != attempt {
                return;
            }
            let whole = coordinator.config.whole_record_facts;
            let inputs = keys
                .in_key(&plan, task_id, set)
                .and_then(|key| {
                    facts::read_fact_map(&coordinator.mgr, &plan, key, whole)
                        .ok()
                        .flatten()
                })
                .unwrap_or_default();
            // Repeat objects (if the task had repeated) are re-readable
            // from its repeat-outcome facts.
            let mut repeat_objects = BTreeMap::new();
            let class = plan.class_of(plan.task(task_id));
            for (ordinal, output) in plan.class_outputs[class.outputs.as_range()]
                .iter()
                .enumerate()
            {
                if output.kind == OutputKind::RepeatOutcome {
                    let key =
                        flowscript_tx::FactKey::output(keys.instance_id, task_id, ordinal as u32);
                    if let Ok(Some(objects)) =
                        facts::read_fact_map(&coordinator.mgr, &plan, key, whole)
                    {
                        repeat_objects.extend(objects);
                    }
                }
            }
            Some((inputs, repeat_objects))
        };
        if let Some((inputs, repeat_objects)) = gathered {
            self.dispatch(world, instance, path, attempt, inputs, repeat_objects);
        }
    }

    /// Marks a task permanently failed (retries exhausted).
    fn fail_task(&self, world: &mut World, instance: &str, path: &str, reason: &str) {
        {
            let mut coordinator = self.inner.borrow_mut();
            // End any outstanding load accounting for the path.
            let _ = coordinator.release_dispatch(instance, path, 0);
            if let Some(rt) = coordinator.instances.get_mut(instance) {
                rt.retry_from.remove(path);
            }
            let Some(mut cb) = coordinator.read_cb(instance, path) else {
                return;
            };
            if cb.state.is_terminal() {
                return;
            }
            cb.transition(CbState::Failed {
                reason: reason.to_string(),
            });
            let action = coordinator.mgr.begin();
            let ok = coordinator
                .mgr
                .write(&action, &cb_uid(instance, path), &cb)
                .is_ok();
            if ok {
                // The failure counts only once its transition committed.
                if coordinator.commit(action).is_ok() {
                    coordinator.metrics.failures.inc();
                    coordinator.record_event(
                        world.now().as_nanos(),
                        instance,
                        Some(path),
                        cb.attempt,
                        coordinator.commit_event(format!("failed: {reason}")),
                    );
                    coordinator.note_terminals(instance, 1);
                }
            } else {
                coordinator.mgr.abort(action);
            }
        }
        self.remove_in_flight(instance, path);
        // A failure publishes no facts: nothing new can become
        // satisfied, but the instance may now be stuck (the drain's
        // debug oracle re-verifies quiescence).
        self.evaluate_from(world, instance, &[]);
    }

    /// Disarms a dispatch's watchdog and releases its load accounting;
    /// returns the executor the dispatch ran on, if one was counted.
    fn clear_watch(&self, world: &mut World, instance: &str, path: &str) -> Option<NodeId> {
        let (watchdog, released) = {
            let mut coordinator = self.inner.borrow_mut();
            let watchdog = coordinator
                .instances
                .get_mut(instance)
                .and_then(|rt| rt.watchdogs.remove(path));
            let released = coordinator.release_dispatch(instance, path, world.now().as_nanos());
            (watchdog, released)
        };
        if let Some(id) = watchdog {
            world.cancel(id);
        }
        self.remove_in_flight(instance, path);
        released
    }

    fn remove_in_flight(&self, instance: &str, path: &str) {
        let mut coordinator = self.inner.borrow_mut();
        if let Some(rt) = coordinator.instances.get_mut(instance) {
            rt.in_flight.remove(path);
        }
    }

    // -----------------------------------------------------------------
    // Compound scope termination / repeat.
    // -----------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn emit_scope_mark(
        &self,
        now_ns: u64,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        scope_id: TaskId,
        out_idx: usize,
        mapped: &[(flowscript_plan::StrId, ObjectVal)],
    ) -> Result<(), EngineError> {
        let output = &plan.outputs[out_idx];
        let mark = plan.str(output.name);
        let scope_path = plan.str(plan.task(scope_id).path);
        let out_key = keys
            .out_key(plan, scope_id, mark)
            .ok_or_else(|| EngineError::UnknownTask(scope_path.to_string()))?;
        let mut coordinator = self.inner.borrow_mut();
        let Some(mut cb) = coordinator.read_cb_id(keys, scope_id) else {
            return Err(EngineError::UnknownTask(scope_path.to_string()));
        };
        cb.marks_emitted.push(mark.to_string());
        let whole = coordinator.config.whole_record_facts;
        let action = coordinator.mgr.begin();
        coordinator.mgr.write(&action, keys.cb(scope_id), &cb)?;
        facts::write_fact_bound(
            &mut coordinator.mgr,
            &action,
            plan,
            out_key,
            output.slots,
            mapped,
            whole,
        )?;
        coordinator.commit(action)?;
        // Count the mark only now that it committed.
        coordinator.metrics.marks.inc();
        coordinator.record_event(
            now_ns,
            instance,
            Some(scope_path),
            cb.attempt,
            coordinator.commit_event(format!("mark `{mark}`")),
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn terminate_scope(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        scope_id: TaskId,
        out_idx: usize,
        kind: OutputKind,
        mapped: Vec<(flowscript_plan::StrId, ObjectVal)>,
    ) {
        let output = &plan.outputs[out_idx];
        let outcome_name = plan.str(output.name);
        let scope_path = plan.str(plan.task(scope_id).path);
        let is_root = !scope_path.contains('/');
        let Some(out_key) = keys.out_key(plan, scope_id, outcome_name) else {
            return;
        };
        {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb_id(keys, scope_id) else {
                return;
            };
            cb.transition(if kind == OutputKind::Outcome {
                CbState::Done {
                    outcome: outcome_name.to_string(),
                }
            } else {
                CbState::Aborted {
                    outcome: outcome_name.to_string(),
                }
            });
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            let mut ok = coordinator
                .mgr
                .write(&action, keys.cb(scope_id), &cb)
                .is_ok()
                && facts::write_fact_bound(
                    &mut coordinator.mgr,
                    &action,
                    plan,
                    out_key,
                    output.slots,
                    &mapped,
                    whole,
                )
                .is_ok();
            // Cancel every non-terminal descendant (one flat subtree
            // scan — DFS pre-order keeps descendants contiguous).
            let mut terminal_delta = 1; // the scope itself
            if ok {
                match cancel_descendants(&mut coordinator.mgr, &action, keys, plan, scope_id) {
                    Ok(cancelled) => terminal_delta += cancelled,
                    Err(_) => ok = false,
                }
            }
            if ok && is_root {
                if let Some(mut meta) = coordinator.read_meta(instance) {
                    meta.status = InstanceStatus::Completed(Outcome {
                        name: outcome_name.to_string(),
                        kind,
                        objects: facts::bound_map(plan, &mapped),
                    });
                    ok = coordinator
                        .mgr
                        .write(&action, &meta_uid(instance), &meta)
                        .is_ok();
                }
            }
            if ok {
                if coordinator.commit(action).is_ok() {
                    coordinator.note_terminals(instance, terminal_delta);
                    if is_root {
                        // The instance just completed: its admission
                        // slot frees for a queued start.
                        coordinator.live_instances = coordinator.live_instances.saturating_sub(1);
                    }
                    let verb = if kind == OutputKind::Outcome {
                        "done"
                    } else {
                        "aborted"
                    };
                    let event = if is_root {
                        ObsEventKind::Terminal {
                            outcome: format!("{verb} `{outcome_name}`"),
                        }
                    } else {
                        coordinator.commit_event(format!("{verb} `{outcome_name}`"))
                    };
                    coordinator.record_event(
                        world.now().as_nanos(),
                        instance,
                        Some(scope_path),
                        0,
                        event,
                    );
                }
            } else {
                coordinator.mgr.abort(action);
            }
        }
        // Drop volatile tracking for the whole subtree.
        let watchdogs = self.inner.borrow_mut().sweep_subtree(instance, scope_path);
        for (_, id) in watchdogs {
            world.cancel(id);
        }
    }

    /// Scope-level repeat (Fig. 8): publish the repeat fact, reset the
    /// subtree and let the compound rebind its inputs.
    #[allow(clippy::too_many_arguments)]
    fn repeat_scope(
        &self,
        world: &mut World,
        instance: &str,
        plan: &Plan,
        keys: &InstanceKeys,
        scope_id: TaskId,
        out_idx: usize,
        mapped: Vec<(flowscript_plan::StrId, ObjectVal)>,
        worklist: &mut Worklist,
    ) {
        let output = &plan.outputs[out_idx];
        let outcome_name = plan.str(output.name);
        let scope_path = plan.str(plan.task(scope_id).path);
        let is_root = !scope_path.contains('/');
        let Some(out_key) = keys.out_key(plan, scope_id, outcome_name) else {
            return;
        };
        let over_limit = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut cb) = coordinator.read_cb_id(keys, scope_id) else {
                return;
            };
            cb.repeats += 1;
            if cb.repeats > coordinator.config.max_repeats {
                cb.transition(CbState::Failed {
                    reason: format!("compound repeat limit exceeded via `{outcome_name}`"),
                });
                let action = coordinator.mgr.begin();
                let ok = coordinator
                    .mgr
                    .write(&action, keys.cb(scope_id), &cb)
                    .is_ok();
                if ok {
                    // The repeat counts only on commit success.
                    if coordinator.commit(action).is_ok() {
                        coordinator.metrics.repeats.inc();
                        coordinator.record_event(
                            world.now().as_nanos(),
                            instance,
                            Some(scope_path),
                            cb.attempt,
                            coordinator.commit_event(format!("repeat `{outcome_name}`")),
                        );
                        coordinator.note_terminals(instance, 1);
                    }
                } else {
                    coordinator.mgr.abort(action);
                }
                true
            } else {
                // Reset: bump this scope's incarnation, clear own input
                // facts and all descendant state, publish the repeat fact.
                cb.scope_inc += 1;
                let new_inc = cb.scope_inc;
                let meta = coordinator.read_meta(instance);
                let whole = coordinator.config.whole_record_facts;
                let action = coordinator.mgr.begin();
                let mut ok = facts::write_fact_bound(
                    &mut coordinator.mgr,
                    &action,
                    plan,
                    out_key,
                    output.slots,
                    &mapped,
                    whole,
                )
                .is_ok();
                // The compound goes back to Waiting to rebind (the root,
                // which has no bindings, reactivates with its original
                // inputs).
                if is_root {
                    if let Some(meta) = &meta {
                        cb.state = CbState::Active {
                            set: meta.set.clone(),
                        };
                        if let Some(in_key) = keys.in_key(plan, scope_id, &meta.set) {
                            ok = ok
                                && facts::write_fact_map(
                                    &mut coordinator.mgr,
                                    &action,
                                    plan,
                                    in_key,
                                    &meta.inputs,
                                    whole,
                                )
                                .is_ok();
                        } else {
                            ok = false;
                        }
                    }
                } else {
                    cb.state = CbState::Waiting;
                    // Clear own input-binding facts so the new incarnation
                    // rebinds afresh — one range scan over the dense keys.
                    let (lo, hi) = keys.input_fact_range(scope_id);
                    for fact in coordinator.mgr.fact_keys_in_range(lo, hi) {
                        ok = ok
                            && coordinator
                                .mgr
                                .delete_key(&action, &StoreKey::Fact(fact))
                                .is_ok();
                    }
                }
                ok = ok
                    && coordinator
                        .mgr
                        .write(&action, keys.cb(scope_id), &cb)
                        .is_ok();
                if ok {
                    // All descendant facts die with the incarnation: the
                    // whole DFS-contiguous subtree is one key range.
                    if let Some((lo, hi)) = keys.subtree_fact_range(plan, scope_id) {
                        for fact in coordinator.mgr.fact_keys_in_range(lo, hi) {
                            ok = ok
                                && coordinator
                                    .mgr
                                    .delete_key(&action, &StoreKey::Fact(fact))
                                    .is_ok();
                        }
                    }
                }
                let mut revived = 0;
                if ok {
                    match reset_descendants(
                        &mut coordinator.mgr,
                        &action,
                        keys,
                        plan,
                        scope_id,
                        new_inc,
                    ) {
                        Ok(n) => revived = n,
                        Err(_) => ok = false,
                    }
                }
                if ok {
                    if coordinator.commit(action).is_ok() {
                        coordinator.metrics.repeats.inc();
                        coordinator.record_event(
                            world.now().as_nanos(),
                            instance,
                            Some(scope_path),
                            cb.attempt,
                            coordinator.commit_event(format!("repeat `{outcome_name}`")),
                        );
                        coordinator.note_revived(instance, revived);
                    }
                } else {
                    coordinator.mgr.abort(action);
                }
                false
            }
        };
        // Cancel volatile subtree tracking either way.
        let watchdogs = self.inner.borrow_mut().sweep_subtree(instance, scope_path);
        for (_, id) in watchdogs {
            world.cancel(id);
        }
        // Seed the re-entry: the repeat fact is a fresh commit; a reset
        // non-root compound rebinds through the start agenda; a reset
        // root reactivates directly, enabling its constituents.
        worklist.seed_commit(plan, scope_id);
        if over_limit {
            return;
        }
        if is_root {
            worklist.seed_children(plan, scope_id);
        } else {
            worklist.push_task(plan, scope_id);
        }
    }

    // -----------------------------------------------------------------
    // Quiescence / stuck detection.
    // -----------------------------------------------------------------

    /// The full-scan oracle (debug builds): after a worklist drain, no
    /// startable task and no satisfied unprocessed scope output may
    /// remain — if one does, the reverse-edge seeding missed it.
    #[cfg(debug_assertions)]
    fn assert_quiescent(&self, instance: &str, plan: &Plan, keys: &InstanceKeys) {
        let coordinator = self.inner.borrow();
        // The incremental non-terminal count must agree with a fresh
        // recount (this is the bookkeeping stuck detection trusts).
        if let Some(rt) = coordinator.instances.get(instance) {
            debug_assert_eq!(
                rt.nonterminal,
                count_nonterminal(&coordinator.mgr, plan, keys),
                "incremental non-terminal count of `{instance}` drifted"
            );
        }
        let facts = StoreFacts::new(
            &coordinator.mgr,
            keys,
            coordinator.config.whole_record_facts,
        );
        for id in 1..plan.tasks.len() as TaskId {
            let task = plan.task(id);
            let Some(parent) = task.parent else {
                continue;
            };
            let (Some(parent_cb), Some(cb)) = (
                coordinator.read_cb_id(keys, parent),
                coordinator.read_cb_id(keys, id),
            ) else {
                continue;
            };
            if matches!(parent_cb.state, CbState::Active { .. })
                && cb.state == CbState::Waiting
                && cb.incarnation == parent_cb.scope_inc
            {
                debug_assert!(
                    plan_eval::eval_task_inputs(plan, id, &facts).is_none(),
                    "worklist missed a startable task `{}` of instance `{instance}`",
                    plan.str(task.path)
                );
            }
        }
        for id in 0..plan.tasks.len() as TaskId {
            if !plan.task(id).is_scope {
                continue;
            }
            let Some(cb) = coordinator.read_cb_id(keys, id) else {
                continue;
            };
            if !matches!(cb.state, CbState::Active { .. }) {
                continue;
            }
            for (out_idx, _) in plan_eval::eval_scope_outputs(plan, id, &facts) {
                let output = &plan.outputs[out_idx];
                let name = plan.str(output.name);
                let missed = match output.kind {
                    OutputKind::Mark => !cb.mark_emitted(name),
                    _ => true,
                };
                debug_assert!(
                    !missed,
                    "worklist missed a satisfied output `{name}` of scope `{}` in `{instance}`",
                    plan.str(plan.task(id).path)
                );
            }
        }
    }

    /// Stuck detection. O(1) on every drain: a running instance with
    /// work in flight (or, in principle, no live control blocks) can
    /// never be stuck, and both tests read volatile counters the drain
    /// maintains incrementally — no control-block enumeration, no store
    /// scan. Only the one-time transition *to* Stuck reads control
    /// blocks (point reads through the interned uid table) to compose
    /// the diagnostic reason.
    fn stuck_check(&self, world: &mut World, instance: &str) {
        let mut coordinator = self.inner.borrow_mut();
        let Some(meta) = coordinator.read_meta(instance) else {
            return;
        };
        if meta.status.is_terminal() {
            return;
        }
        let Some(rt) = coordinator.instances.get(instance) else {
            return;
        };
        if !rt.in_flight.is_empty() {
            return;
        }
        let plan = rt.plan.clone();
        let keys = rt.keys.clone();
        let nonterminal = rt.nonterminal;
        // Quiescent but not terminated: stuck. Summarise why — one walk
        // over the plan's dense task ids (point reads; this runs once
        // per stuck instance, never on the commit path), using the
        // plan's satisfaction masks to say how close each waiting task
        // got.
        let mut failed = Vec::new();
        let mut waiting = Vec::new();
        for id in 0..plan.tasks.len() as TaskId {
            let Some(cb) = coordinator.read_cb_id(&keys, id) else {
                continue;
            };
            match &cb.state {
                CbState::Failed { reason } => {
                    failed.push(format!("{} ({reason})", cb.path));
                }
                CbState::Waiting => {
                    let facts = StoreFacts::new(
                        &coordinator.mgr,
                        &keys,
                        coordinator.config.whole_record_facts,
                    );
                    let task = plan.task(id);
                    let pending = plan.sets[task.sets.as_range()]
                        .iter()
                        .map(|set| {
                            let met = plan_eval::met_requirements(&plan, set, &facts);
                            format!("{} {met}/{}", plan.str(set.name), set.requirement_count())
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    if pending.is_empty() {
                        waiting.push(cb.path.clone());
                    } else {
                        waiting.push(format!("{} (deps met: {pending})", cb.path));
                    }
                }
                _ => {}
            }
        }
        let reason = format!(
            "no runnable task and the root cannot terminate ({nonterminal} of {} tasks \
             non-terminal); failed: [{}]; waiting: [{}]",
            plan.tasks.len(),
            failed.join(", "),
            waiting.join(", ")
        );
        let mut meta = meta;
        meta.status = InstanceStatus::Stuck {
            reason: reason.clone(),
        };
        let action = coordinator.mgr.begin();
        let ok = coordinator
            .mgr
            .write(&action, &meta_uid(instance), &meta)
            .is_ok();
        if ok {
            if coordinator.commit(action).is_ok() {
                // A stuck instance stops counting against the
                // admission cap (a revival re-counts it).
                coordinator.live_instances = coordinator.live_instances.saturating_sub(1);
                coordinator.record_event(
                    world.now().as_nanos(),
                    instance,
                    None,
                    0,
                    ObsEventKind::Stuck { reason },
                );
            }
        } else {
            coordinator.mgr.abort(action);
        }
    }

    // -----------------------------------------------------------------
    // Reconfiguration (paper §2/§3: transactional structure changes).
    // -----------------------------------------------------------------

    /// Applies a reconfiguration to a running instance atomically.
    ///
    /// The plan is re-lowered from the mutated schema, the instance's
    /// persisted facts are **remapped** onto the new plan's dense ids
    /// (task ids shift when tasks are added or removed; facts whose
    /// task or declaration vanished are deleted), and the interned key
    /// table is rebuilt — all in the same atomic action as the op
    /// itself.
    ///
    /// # Errors
    ///
    /// Validation failures leave the instance untouched.
    pub fn reconfigure(
        &self,
        world: &mut World,
        instance: &str,
        op: Reconfig,
    ) -> Result<(), EngineError> {
        // Reconfiguration rebuilds the plan and rebinding state from
        // committed truth: absorb the batch window first.
        self.flush_pending(world);
        {
            let mut coordinator = self.inner.borrow_mut();
            let Some(mut meta) = coordinator.read_meta(instance) else {
                return Err(EngineError::UnknownInstance(instance.to_string()));
            };
            // A reconfiguration can rescue a stuck instance (e.g. by adding
            // an alternative source), so revive it for re-evaluation.
            let revived = matches!(meta.status, InstanceStatus::Stuck { .. });
            if revived {
                meta.status = InstanceStatus::Running;
            }
            if !coordinator.instances.contains_key(instance) {
                return Err(EngineError::UnknownInstance(instance.to_string()));
            }
            // Materialize the schema on demand: an instance started
            // from a served plan never compiled one. Replay any
            // previously persisted reconfigurations so it is current.
            let current = match coordinator
                .instances
                .get(instance)
                .and_then(|rt| rt.schema.clone())
            {
                Some(schema) => schema,
                None => {
                    let mut schema = schema::compile_source(&meta.source, &meta.root)?;
                    for op_uid in coordinator
                        .mgr
                        .uids_with_prefix(&format!("inst/{instance}/reconfig/"))
                    {
                        if let Ok(Some(past)) = coordinator.mgr.read_committed::<Reconfig>(&op_uid)
                        {
                            let _ = reconfig::apply(&mut schema, &past);
                        }
                    }
                    Rc::new(schema)
                }
            };
            let mut schema = (*current).clone();
            let effects = reconfig::apply(&mut schema, &op)?;
            let (old_plan, old_keys) = {
                let rt = coordinator.instances.get(instance).expect("checked above");
                (rt.plan.clone(), rt.keys.clone())
            };
            // Compile-once per structural change: the mutated schema is
            // re-lowered and swapped in atomically with the fact remap.
            let new_plan = Plan::lower(&schema);
            let new_keys = InstanceKeys::build(&new_plan, instance, meta.instance_id);

            // Persist the op and its engine-side effects in one action.
            let action = coordinator.mgr.begin();
            let n = meta.reconfig_count;
            meta.reconfig_count += 1;
            meta.plan_fingerprint = new_plan.fingerprint;
            coordinator
                .mgr
                .write(&action, &reconfig_uid(instance, n), &op)?;
            coordinator.mgr.write(&action, &meta_uid(instance), &meta)?;
            if !coordinator.mgr.exists(&plan_uid(new_plan.fingerprint)) {
                coordinator
                    .mgr
                    .write(&action, &plan_uid(new_plan.fingerprint), &new_plan)?;
            }
            // Move every persisted fact onto the new plan's id space.
            let whole = coordinator.config.whole_record_facts;
            facts::remap_instance_facts(
                &mut coordinator.mgr,
                &action,
                &old_plan,
                &old_keys,
                &new_plan,
                meta.instance_id,
                whole,
            )?;
            for path in &effects.new_tasks {
                // New tasks join the current incarnation of their scope.
                let scope_path = path.rsplit_once('/').map(|(s, _)| s).unwrap_or("");
                let scope_inc = coordinator
                    .read_cb(instance, scope_path)
                    .map(|cb| cb.scope_inc)
                    .unwrap_or(0);
                let mut cb = TaskCb::new(path.clone());
                cb.incarnation = scope_inc;
                coordinator
                    .mgr
                    .write(&action, &cb_uid(instance, path), &cb)?;
            }
            for path in &effects.removed_tasks {
                coordinator.mgr.delete(&action, &cb_uid(instance, path))?;
            }
            if let Reconfig::Rebind { code, to } = &op {
                coordinator
                    .mgr
                    .write(&action, &bind_uid(instance, code), to)?;
            }
            coordinator.commit(action)?;
            if revived {
                // Back from Stuck: the instance counts against the
                // admission cap again.
                coordinator.live_instances += 1;
            }
            coordinator.metrics.reconfigs.inc();
            let rt = coordinator
                .instances
                .get_mut(instance)
                .expect("checked above");
            rt.plan = Rc::new(new_plan);
            rt.keys = Rc::new(new_keys);
            rt.schema = Some(Rc::new(schema));
            if let Reconfig::Rebind { code, to } = &op {
                rt.bindings.insert(code.clone(), to.clone());
            }
            // The plan (and possibly the task set) changed: recount the
            // non-terminal blocks instead of patching deltas.
            coordinator.recount_nonterminal(instance);
            // The old fingerprint may now be orphaned — reclaim it
            // right away rather than waiting for the next checkpoint
            // (an idle instance would strand it forever).
            coordinator.gc_plans()?;
        }
        // The plan changed under the instance: reconfiguration re-enters
        // through the full scan (new tasks and new edges have no commit
        // to seed from).
        self.evaluate(world, instance);
        self.pump(world);
        Ok(())
    }

    /// Administrative abort of a *waiting* task (Fig. 3 permits
    /// wait-state aborts for timer expiry or a user forcing an abort).
    /// The named outcome must be a declared abort outcome of the task's
    /// class; it is published like any other abort so dependents (e.g. a
    /// compound's cancellation notification) observe it.
    ///
    /// # Errors
    ///
    /// Unknown instance/task, a non-waiting task, or an outcome that is
    /// not a declared abort outcome.
    pub fn abort_waiting_task(
        &self,
        world: &mut World,
        instance: &str,
        path: &str,
        outcome: &str,
    ) -> Result<(), EngineError> {
        // The operator decision is against current state: absorb the
        // batch window first.
        self.flush_pending(world);
        let task_id = {
            let mut coordinator = self.inner.borrow_mut();
            let Some(rt) = coordinator.instances.get(instance) else {
                return Err(EngineError::UnknownInstance(instance.to_string()));
            };
            let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
            let Some(task_id) = plan.task_by_path(path) else {
                return Err(EngineError::UnknownTask(path.to_string()));
            };
            let class = plan.class_of(plan.task(task_id));
            let declared_abort = plan
                .class_output(class, outcome)
                .is_some_and(|o| o.kind == OutputKind::AbortOutcome);
            if !declared_abort {
                return Err(EngineError::ReconfigRejected(format!(
                    "`{outcome}` is not an abort outcome of `{}`",
                    plan.str(class.name)
                )));
            }
            let out_key = keys
                .out_key(&plan, task_id, outcome)
                .ok_or_else(|| EngineError::UnknownTask(path.to_string()))?;
            let Some(mut cb) = coordinator.read_cb_id(&keys, task_id) else {
                return Err(EngineError::UnknownTask(path.to_string()));
            };
            if cb.state != CbState::Waiting {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{path}` is not waiting (state {:?})",
                    cb.state
                )));
            }
            cb.transition(CbState::Aborted {
                outcome: outcome.to_string(),
            });
            let whole = coordinator.config.whole_record_facts;
            let action = coordinator.mgr.begin();
            coordinator.mgr.write(&action, keys.cb(task_id), &cb)?;
            facts::write_fact_map(
                &mut coordinator.mgr,
                &action,
                &plan,
                out_key,
                &BTreeMap::new(),
                whole,
            )?;
            coordinator.commit(action)?;
            coordinator.note_terminals(instance, 1);
            task_id
        };
        self.evaluate_from(world, instance, &[task_id]);
        self.pump(world);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Recovery.
    // -----------------------------------------------------------------

    /// Rebuilds all state from the write-ahead log after a restart and
    /// resumes every running instance (re-dispatching in-flight tasks).
    ///
    /// The compiled plan is read back from its persisted, fingerprinted
    /// blob (written at instance start and on every reconfiguration),
    /// so recovery skips the whole front end; recompiling from source —
    /// replaying persisted reconfigurations — survives only as the
    /// fallback for a missing or corrupt blob.
    pub fn recover(&self, world: &mut World) {
        let recovered = {
            let mut coordinator = self.inner.borrow_mut();
            let (node, storage) = (coordinator.node, coordinator.storage.clone());
            // Reopen the store against the same registry: metric
            // history (like the flight recorder's) spans the crash.
            let mgr = match TxManager::open_with_metrics(
                node.index() as u32,
                storage,
                &coordinator.registry,
                coordinator.config.observe,
            ) {
                Ok(mgr) => mgr,
                Err(_) => return,
            };
            coordinator.mgr = mgr;
            coordinator.instances.clear();
            if coordinator.mgr.fenced().is_some() {
                // Another shard claimed this storage while the node was
                // down (crash-driven adoption): every instance now
                // lives — and runs — on the claimant's side. A zombie
                // must not reload, re-dispatch, or relay anything; it
                // wakes empty and every durable act it attempts fails
                // on the fence.
                coordinator.pending.clear();
                coordinator.window_armed = false;
                coordinator.current_batch = None;
                coordinator.sched.reset_loads();
                coordinator.parked.clear();
                coordinator.admission_queue.clear();
                coordinator.starting = 0;
                coordinator.live_instances = 0;
                coordinator.moved.clear();
                return;
            }
            // The batch window died with the process: unflushed reports
            // are lost as a unit (executors re-report via watchdog
            // retries), and the reopened manager starts outside any
            // group.
            coordinator.pending.clear();
            coordinator.window_armed = false;
            coordinator.current_batch = None;
            // The in-flight view died with the process; re-dispatches
            // below rebuild it.
            coordinator.sched.reset_loads();
            // So did the ready and admission queues: parked dispatches
            // re-park (if still saturated) when their committed
            // `Executing` blocks re-dispatch below, and queued starts
            // are the client's to retry — their reply tokens died with
            // the process. Live occupancy is recounted from the metas.
            coordinator.parked.clear();
            coordinator.park_seq = 0;
            coordinator.admission_queue.clear();
            coordinator.starting = 0;
            coordinator.live_instances = 0;
            coordinator.arrival_gap_ns = u64::MAX;
            coordinator.last_report_ns = 0;

            // Hand-off repair, before instances load. A crash can
            // strand a move at any point:
            //  * a replayed *committed* decision whose keyspace purge
            //    did not land means the destination owns the instance
            //    — purge now, and re-announce the verdict below;
            //  * an intent with no decision is presumed aborted:
            //    append the durable abort and notify the destination
            //    so it releases its staged locks.
            let ends: Vec<(TxId, String, u32, bool)> =
                coordinator.mgr.replayed_handoff_ends().to_vec();
            for (_, instance, dest, committed) in &ends {
                if !*committed {
                    continue;
                }
                if coordinator.mgr.exists(&meta_uid(instance)) {
                    let _ = coordinator.purge_instance(instance);
                }
                // Rebuild the dual-delivery relay entry: executor
                // replies for the moved instance may still arrive here.
                coordinator
                    .moved
                    .insert(instance.clone(), NodeId::from_index(*dest as usize));
            }
            let aborted = coordinator.mgr.open_handoffs();
            for (tx, instance, dest) in &aborted {
                let _ = coordinator.mgr.handoff_end(*tx, instance, *dest, false);
            }
            let in_doubt = coordinator.mgr.in_doubt();
            let node = coordinator.node;

            // Enumerate instances by their meta objects.
            let metas: Vec<ObjectUid> = coordinator.mgr.uids_matching("inst/", "/meta");
            let mut names = Vec::new();
            for uid in metas {
                let Ok(Some(meta)) = coordinator.mgr.read_committed::<InstanceMeta>(&uid) else {
                    continue;
                };
                let name = uid
                    .as_str()
                    .trim_start_matches("inst/")
                    .trim_end_matches("/meta")
                    .to_string();
                // Fast path inside: decode the persisted plan
                // (validated like any other untrusted plan) and skip
                // the front end.
                let Some(rt) = coordinator.load_instance(&name, &meta) else {
                    continue;
                };
                coordinator.instances.insert(name.clone(), rt);
                coordinator.metrics.recovered_instances.inc();
                let epoch = coordinator.shard.epoch();
                coordinator.record_event(
                    world.now().as_nanos(),
                    &name,
                    None,
                    0,
                    ObsEventKind::Recovery { epoch },
                );
                if meta.status == InstanceStatus::Running {
                    coordinator.live_instances += 1;
                    names.push(name);
                }
            }
            (names, ends, aborted, in_doubt, node)
        };
        let (instances, ends, aborted, in_doubt, node) = recovered;

        // 2PC termination traffic. Every durable decision this restart
        // replayed (plus the presumed aborts just appended) is
        // re-announced — the destination may have crashed before
        // hearing it the first time; resolution is idempotent, so
        // duplicates are harmless. And every stage this node prepared
        // but never heard a decision for is chased with a query to its
        // coordinator.
        for (tx, _, dest, committed) in &ends {
            let verdict = EngineMsg::HandoffVerdict {
                tx_node: tx.node(),
                tx_seq: tx.seq(),
                committed: *committed,
            };
            world.send(
                node,
                NodeId::from_index(*dest as usize),
                flowscript_codec::to_bytes(&verdict),
            );
        }
        for (tx, _, dest) in &aborted {
            let verdict = EngineMsg::HandoffVerdict {
                tx_node: tx.node(),
                tx_seq: tx.seq(),
                committed: false,
            };
            world.send(
                node,
                NodeId::from_index(*dest as usize),
                flowscript_codec::to_bytes(&verdict),
            );
        }
        for (tx, coordinator_node) in &in_doubt {
            let query = EngineMsg::HandoffQuery {
                tx_node: tx.node(),
                tx_seq: tx.seq(),
            };
            world.send(
                node,
                NodeId::from_index(*coordinator_node as usize),
                flowscript_codec::to_bytes(&query),
            );
        }

        // Re-dispatch whatever was executing (at-least-once execution,
        // exactly-once outcome application via attempt matching).
        for instance in &instances {
            let executing: Vec<(String, u32)> = {
                let coordinator = self.inner.borrow();
                let Some(rt) = coordinator.instances.get(instance) else {
                    continue;
                };
                let (plan, keys) = (rt.plan.clone(), rt.keys.clone());
                (0..plan.tasks.len() as TaskId)
                    .filter_map(|id| {
                        let cb = coordinator.read_cb_id(&keys, id)?;
                        matches!(cb.state, CbState::Executing { .. })
                            .then(|| (cb.path.clone(), cb.attempt))
                    })
                    .collect()
            };
            for (path, attempt) in executing {
                // Bump the attempt so a late pre-crash reply is ignored.
                let bumped = {
                    let mut coordinator = self.inner.borrow_mut();
                    let Some(mut cb) = coordinator.read_cb(instance, &path) else {
                        continue;
                    };
                    cb.attempt = attempt + 1;
                    let new_attempt = cb.attempt;
                    let action = coordinator.mgr.begin();
                    let ok = coordinator
                        .mgr
                        .write(&action, &cb_uid(instance, &path), &cb)
                        .is_ok();
                    if ok {
                        let _ = coordinator.commit(action);
                        Some(new_attempt)
                    } else {
                        coordinator.mgr.abort(action);
                        None
                    }
                };
                if let Some(new_attempt) = bumped {
                    self.redispatch(world, instance, &path, new_attempt);
                }
            }
            self.evaluate(world, instance);
        }
        // Re-dispatches above may have parked against a still-cold
        // scheduler view; give them one immediate placement pass.
        self.pump(world);
    }
}

/// Counts an instance's non-terminal control blocks in committed state
/// (point reads over the plan's dense ids — no store scan). Seeds and
/// cross-checks the incrementally maintained `InstanceRt::nonterminal`.
fn count_nonterminal(mgr: &TxManager<StableStore>, plan: &Plan, keys: &InstanceKeys) -> usize {
    (0..plan.tasks.len() as TaskId)
        .filter(|&id| {
            mgr.read_committed::<TaskCb>(keys.cb(id))
                .ok()
                .flatten()
                .is_some_and(|cb| !cb.state.is_terminal())
        })
        .count()
}

/// Cancels every non-terminal descendant of a scope: one linear scan of
/// the plan's contiguous subtree range, through the interned cb uids.
/// Returns how many blocks it cancelled.
fn cancel_descendants(
    mgr: &mut TxManager<StableStore>,
    action: &flowscript_tx::AtomicAction,
    keys: &InstanceKeys,
    plan: &Plan,
    scope_id: TaskId,
) -> Result<usize, EngineError> {
    let mut cancelled = 0;
    for task_id in plan.subtree(scope_id) {
        let uid = keys.cb(task_id);
        if let Some(mut cb) = mgr.read::<TaskCb>(action, uid)? {
            if !cb.state.is_terminal() {
                cb.transition(CbState::Cancelled);
                mgr.write(action, uid, &cb)?;
                cancelled += 1;
            }
        }
    }
    Ok(cancelled)
}

/// Resets a scope's subtree for a new incarnation, bumping each nested
/// compound's own scope incarnation so its children rebind
/// consistently. (The subtree's facts were already range-deleted by the
/// caller.) Returns how many previously *terminal* blocks the reset
/// revived to `Waiting`.
fn reset_descendants(
    mgr: &mut TxManager<StableStore>,
    action: &flowscript_tx::AtomicAction,
    keys: &InstanceKeys,
    plan: &Plan,
    scope_id: TaskId,
    incarnation: u32,
) -> Result<usize, EngineError> {
    let mut revived = 0;
    for &child in plan.children(scope_id) {
        let task = plan.task(child);
        let uid = keys.cb(child);
        let mut inner_inc = 0;
        if let Some(mut cb) = mgr.read::<TaskCb>(action, uid)? {
            if cb.state.is_terminal() {
                revived += 1;
            }
            cb.reset_for_incarnation(incarnation);
            if task.is_scope {
                // A nested compound's own scope advances too, so its
                // children rebind consistently.
                cb.scope_inc += 1;
                inner_inc = cb.scope_inc;
            }
            mgr.write(action, uid, &cb)?;
        }
        if task.is_scope {
            revived += reset_descendants(mgr, action, keys, plan, child, inner_inc)?;
        }
    }
    Ok(revived)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = EngineConfig::default();
        assert!(config.max_retries >= 1);
        assert!(config.max_repeats > 1);
        assert!(config.dispatch_timeout > config.retry_backoff);
        assert!(!config.full_rescan, "production default is event-driven");
    }

    #[test]
    fn status_codec_roundtrip() {
        let statuses = vec![
            InstanceStatus::Running,
            InstanceStatus::Completed(Outcome {
                name: "done".into(),
                kind: OutputKind::Outcome,
                objects: BTreeMap::from([("x".to_string(), ObjectVal::text("C", "v"))]),
            }),
            InstanceStatus::Stuck {
                reason: "nothing to run".into(),
            },
        ];
        for status in statuses {
            let bytes = flowscript_codec::to_bytes(&status);
            assert_eq!(
                flowscript_codec::from_bytes::<InstanceStatus>(&bytes).unwrap(),
                status
            );
            let _ = status.is_terminal();
        }
    }

    #[test]
    fn meta_codec_roundtrip() {
        let meta = InstanceMeta {
            script: "order".into(),
            source: "class C;".into(),
            root: "root".into(),
            set: "main".into(),
            inputs: BTreeMap::from([("seed".to_string(), ObjectVal::text("C", "s"))]),
            status: InstanceStatus::Running,
            reconfig_count: 2,
            instance_id: 7,
            version: Some(3),
            plan_fingerprint: 0xDEAD_BEEF,
        };
        let bytes = flowscript_codec::to_bytes(&meta);
        assert_eq!(
            flowscript_codec::from_bytes::<InstanceMeta>(&bytes).unwrap(),
            meta
        );
    }

    #[test]
    fn find_task_resolves_nested_paths() {
        let schema =
            schema::compile_source(flowscript_core::samples::BUSINESS_TRIP, "tripReservation")
                .unwrap();
        let (task, scope_path) = Coordinator::find_task(
            &schema,
            "tripReservation/businessReservation/checkFlightReservation/airlineQueryB",
        )
        .unwrap();
        assert_eq!(task.name, "airlineQueryB");
        assert_eq!(
            scope_path,
            "tripReservation/businessReservation/checkFlightReservation"
        );
        let (task, scope_path) =
            Coordinator::find_task(&schema, "tripReservation/printTickets").unwrap();
        assert_eq!(task.name, "printTickets");
        assert_eq!(scope_path, "tripReservation");
        assert!(Coordinator::find_task(&schema, "tripReservation/ghost").is_none());
        assert!(Coordinator::find_task(&schema, "wrong/printTickets").is_none());
    }
}
