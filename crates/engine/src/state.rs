//! Task control blocks and the Fig. 3 state machine.
//!
//! Every task instance (leaf or compound) has a persistent control block
//! ([`TaskCb`]) recording where it is in the paper's lifecycle:
//!
//! ```text
//!            bind inputs          outcome / abort
//!  Waiting ──────────────▶ Executing ─────────────▶ Done / Aborted
//!     │                     │     ▲
//!     │ scope cancelled     │mark │ repeat
//!     ▼                     ▼     │
//!  Cancelled            (marks)───┘        Failed (system gave up)
//! ```
//!
//! Compound tasks use `Active` in place of `Executing` (their "execution"
//! is their constituents'). Transitions are validated by
//! [`TaskCb::transition`]; illegal moves are programming errors and panic
//! in debug tests via the checked constructor.

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// Where a task instance is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbState {
    /// Awaiting input-set satisfaction (Fig. 3 "Wait").
    Waiting,
    /// A compound whose input set `set` is bound; constituents may run.
    Active {
        /// The bound input set.
        set: String,
    },
    /// A leaf dispatched to an executor with input set `set`.
    Executing {
        /// The bound input set.
        set: String,
    },
    /// Terminated in a non-abort outcome.
    Done {
        /// The outcome name.
        outcome: String,
    },
    /// Terminated in an abort outcome (no side effects, §4.2).
    Aborted {
        /// The abort outcome name.
        outcome: String,
    },
    /// The system exhausted its automatic retries (paper §3: "finite
    /// number of retries") without the task completing.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// The enclosing scope terminated before this task did.
    Cancelled,
}

impl CbState {
    /// Whether no further transitions are possible.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CbState::Done { .. }
                | CbState::Aborted { .. }
                | CbState::Failed { .. }
                | CbState::Cancelled
        )
    }

    /// Whether the task is running (leaf dispatched or compound active).
    pub fn is_running(&self) -> bool {
        matches!(self, CbState::Active { .. } | CbState::Executing { .. })
    }

    fn discriminant(&self) -> u8 {
        match self {
            CbState::Waiting => 0,
            CbState::Active { .. } => 1,
            CbState::Executing { .. } => 2,
            CbState::Done { .. } => 3,
            CbState::Aborted { .. } => 4,
            CbState::Failed { .. } => 5,
            CbState::Cancelled => 6,
        }
    }
}

impl Encode for CbState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.discriminant());
        match self {
            CbState::Waiting | CbState::Cancelled => {}
            CbState::Active { set } | CbState::Executing { set } => w.put_str(set),
            CbState::Done { outcome } | CbState::Aborted { outcome } => w.put_str(outcome),
            CbState::Failed { reason } => w.put_str(reason),
        }
    }
}

impl Decode for CbState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => CbState::Waiting,
            1 => CbState::Active {
                set: r.get_str()?.to_owned(),
            },
            2 => CbState::Executing {
                set: r.get_str()?.to_owned(),
            },
            3 => CbState::Done {
                outcome: r.get_str()?.to_owned(),
            },
            4 => CbState::Aborted {
                outcome: r.get_str()?.to_owned(),
            },
            5 => CbState::Failed {
                reason: r.get_str()?.to_owned(),
            },
            6 => CbState::Cancelled,
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "CbState",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// The persistent control block of one task instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCb {
    /// Slash-joined instance path (e.g. `order/dispatch`).
    pub path: String,
    /// Lifecycle state.
    pub state: CbState,
    /// Which incarnation of the *parent* scope this task belongs to
    /// (compared against the parent compound's [`TaskCb::scope_inc`];
    /// stale executor replies are discarded by it).
    pub incarnation: u32,
    /// For compound tasks: the current incarnation of *its own*
    /// constituents (bumped when this compound takes a repeat outcome).
    pub scope_inc: u32,
    /// Dispatch attempt within the current incarnation (bumped on retry).
    pub attempt: u32,
    /// Mark outputs already emitted (each mark fires at most once).
    pub marks_emitted: Vec<String>,
    /// Times this task produced a repeat outcome (bounded by policy).
    pub repeats: u32,
}

impl TaskCb {
    /// A fresh control block in `Waiting`.
    pub fn new(path: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            state: CbState::Waiting,
            incarnation: 0,
            scope_inc: 0,
            attempt: 0,
            marks_emitted: Vec::new(),
            repeats: 0,
        }
    }

    /// Whether the Fig. 3 state machine permits `from → to`.
    pub fn transition_allowed(from: &CbState, to: &CbState) -> bool {
        use CbState::*;
        match (from, to) {
            // Bind inputs.
            (Waiting, Executing { .. }) | (Waiting, Active { .. }) => true,
            // Termination from execution.
            (Executing { .. }, Done { .. })
            | (Executing { .. }, Aborted { .. })
            | (Executing { .. }, Failed { .. }) => true,
            (Active { .. }, Done { .. })
            | (Active { .. }, Aborted { .. })
            | (Active { .. }, Failed { .. }) => true,
            // Abort from wait (timer expiry / user abort, Fig. 3).
            (Waiting, Aborted { .. }) | (Waiting, Failed { .. }) => true,
            // Repeat: re-enter execution (same variant, new attempt).
            (Executing { .. }, Executing { .. }) => true,
            (Active { .. }, Active { .. }) => true,
            // Scope reset sends a compound's constituents back to Waiting.
            (Waiting, Waiting)
            | (Executing { .. }, Waiting)
            | (Active { .. }, Waiting)
            | (Done { .. }, Waiting)
            | (Aborted { .. }, Waiting)
            | (Failed { .. }, Waiting)
            | (Cancelled, Waiting) => true,
            // Cancellation of anything non-terminal.
            (from, Cancelled) => !from.is_terminal(),
            _ => false,
        }
    }

    /// Applies a transition.
    ///
    /// # Panics
    ///
    /// Panics if the transition is illegal — the coordinator's logic must
    /// never attempt one, so this is an internal invariant.
    pub fn transition(&mut self, to: CbState) {
        assert!(
            Self::transition_allowed(&self.state, &to),
            "illegal task transition for {}: {:?} -> {:?}",
            self.path,
            self.state,
            to
        );
        self.state = to;
    }

    /// Resets the block for a new scope incarnation (compound repeat).
    pub fn reset_for_incarnation(&mut self, incarnation: u32) {
        self.state = CbState::Waiting;
        self.incarnation = incarnation;
        self.attempt = 0;
        self.marks_emitted.clear();
    }

    /// Whether this mark was already emitted in this incarnation.
    pub fn mark_emitted(&self, mark: &str) -> bool {
        self.marks_emitted.iter().any(|m| m == mark)
    }
}

impl Encode for TaskCb {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.path);
        self.state.encode(w);
        w.put_u32(self.incarnation);
        w.put_u32(self.scope_inc);
        w.put_u32(self.attempt);
        self.marks_emitted.encode(w);
        w.put_u32(self.repeats);
    }
}

impl Decode for TaskCb {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TaskCb {
            path: r.get_str()?.to_owned(),
            state: CbState::decode(r)?,
            incarnation: r.get_u32()?,
            scope_inc: r.get_u32()?,
            attempt: r.get_u32()?,
            marks_emitted: Vec::decode(r)?,
            repeats: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_states() -> Vec<CbState> {
        vec![
            CbState::Waiting,
            CbState::Active { set: "main".into() },
            CbState::Executing { set: "main".into() },
            CbState::Done {
                outcome: "done".into(),
            },
            CbState::Aborted {
                outcome: "failed".into(),
            },
            CbState::Failed {
                reason: "retries exhausted".into(),
            },
            CbState::Cancelled,
        ]
    }

    #[test]
    fn terminal_classification() {
        assert!(!CbState::Waiting.is_terminal());
        assert!(!CbState::Executing { set: "m".into() }.is_terminal());
        assert!(CbState::Done {
            outcome: "d".into()
        }
        .is_terminal());
        assert!(CbState::Cancelled.is_terminal());
        assert!(CbState::Executing { set: "m".into() }.is_running());
        assert!(!CbState::Waiting.is_running());
    }

    #[test]
    fn fig3_legal_transitions() {
        use CbState::*;
        let exec = Executing { set: "main".into() };
        let done = Done {
            outcome: "ok".into(),
        };
        let aborted = Aborted {
            outcome: "failed".into(),
        };
        assert!(TaskCb::transition_allowed(&Waiting, &exec));
        assert!(TaskCb::transition_allowed(&exec, &done));
        assert!(TaskCb::transition_allowed(&exec, &aborted));
        // Abort from wait (timer / forced abort).
        assert!(TaskCb::transition_allowed(&Waiting, &aborted));
        // Repeat re-enters execution.
        assert!(TaskCb::transition_allowed(&exec, &exec));
    }

    #[test]
    fn fig3_illegal_transitions() {
        use CbState::*;
        let exec = Executing { set: "main".into() };
        let done = Done {
            outcome: "ok".into(),
        };
        // Terminated tasks cannot resume (except scope reset to Waiting).
        assert!(!TaskCb::transition_allowed(&done, &exec));
        assert!(!TaskCb::transition_allowed(&done, &done));
        assert!(!TaskCb::transition_allowed(&Cancelled, &exec));
        // Waiting cannot jump straight to Done.
        assert!(!TaskCb::transition_allowed(&Waiting, &done));
    }

    #[test]
    fn every_nonterminal_can_be_cancelled() {
        for state in all_states() {
            let allowed = TaskCb::transition_allowed(&state, &CbState::Cancelled);
            assert_eq!(allowed, !state.is_terminal(), "{state:?}");
        }
    }

    #[test]
    fn every_state_can_reset_to_waiting() {
        for state in all_states() {
            assert!(
                TaskCb::transition_allowed(&state, &CbState::Waiting),
                "{state:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "illegal task transition")]
    fn transition_panics_on_illegal_move() {
        let mut cb = TaskCb::new("x");
        cb.transition(CbState::Done {
            outcome: "nope".into(),
        });
    }

    #[test]
    fn reset_clears_marks_and_attempts() {
        let mut cb = TaskCb::new("a/b");
        cb.transition(CbState::Executing { set: "main".into() });
        cb.attempt = 3;
        cb.marks_emitted.push("toPay".into());
        cb.repeats = 1;
        cb.reset_for_incarnation(2);
        assert_eq!(cb.state, CbState::Waiting);
        assert_eq!(cb.incarnation, 2);
        assert_eq!(cb.attempt, 0);
        assert!(cb.marks_emitted.is_empty());
        assert_eq!(cb.repeats, 1, "repeat count survives reset (bounded loop)");
    }

    #[test]
    fn cb_codec_roundtrip_all_states() {
        for state in all_states() {
            let cb = TaskCb {
                path: "root/task".into(),
                state,
                incarnation: 2,
                scope_inc: 3,
                attempt: 5,
                marks_emitted: vec!["m1".into()],
                repeats: 7,
            };
            let bytes = flowscript_codec::to_bytes(&cb);
            assert_eq!(flowscript_codec::from_bytes::<TaskCb>(&bytes).unwrap(), cb);
        }
    }
}
