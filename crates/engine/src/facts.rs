//! Fact storage layout: per-object sub-keys over the transactional
//! store.
//!
//! A dependency fact (a bound input set or a published output) is a
//! small map of named objects. Storing it as one encoded record makes
//! every readiness probe — the engine's innermost loop — decode the
//! *whole* map to extract a single object. This module stores facts
//! **per object** instead:
//!
//! - sub-key `obj = 0` (the *presence record*) exists iff the fact
//!   fired; its payload holds only objects with no declared ordinal
//!   (normally none, so it encodes as an empty map),
//! - sub-key `obj = i + 1` holds the value of the declaration's `i`-th
//!   object alone.
//!
//! A probe through [`StoreFacts`] is then a single `BTreeMap` point
//! read of exactly the bytes it needs — zero record decode, zero
//! string allocation — while whole-fact consumers (recovery
//! re-dispatch, monitoring, reconfiguration remapping) reconstruct the
//! map with one contiguous range scan. Subtree cancel/reset ranges
//! widen transparently: object sub-keys sort inside their fact.
//!
//! The pre-split layout survives as the **whole-record baseline**
//! (`whole_record = true`, [`EngineConfig::whole_record_facts`]): one
//! record at `obj = 0`, decoded per probe. The equivalence proptest
//! drives both layouts through identical workloads and asserts
//! byte-identical per-instance outcomes and dispatch traces.
//!
//! [`EngineConfig::whole_record_facts`]: crate::coordinator::EngineConfig::whole_record_facts

use std::cell::RefCell;
use std::collections::BTreeMap;

use flowscript_plan::{eval as plan_eval, Plan, Probe, Range32, StrId};
use flowscript_tx::{
    AtomicAction, FactKey, FactKind, SharedStorage, Storage, StoreKey, TxError, TxManager,
};

use crate::keys::InstanceKeys;
use crate::value::ObjectVal;

/// The committed-state fact view the plan evaluator runs over: every
/// probe resolves through the instance's interned key table to dense
/// point reads.
///
/// Storage or decode faults do **not** read as "fact absent" (a corrupt
/// record must not silently mis-evaluate readiness): the first fault is
/// latched and surfaced to the caller via [`StoreFacts::take_fault`] —
/// the coordinator's drain checks it after every evaluation and fails
/// the instance diagnosably.
pub struct StoreFacts<'a, S: Storage = SharedStorage> {
    mgr: &'a TxManager<S>,
    keys: &'a InstanceKeys,
    whole_record: bool,
    fault: RefCell<Option<String>>,
}

impl<'a, S: Storage> StoreFacts<'a, S> {
    /// A fact view over `mgr` resolving probes through `keys`.
    pub fn new(mgr: &'a TxManager<S>, keys: &'a InstanceKeys, whole_record: bool) -> Self {
        Self {
            mgr,
            keys,
            whole_record,
            fault: RefCell::new(None),
        }
    }

    /// The first storage/decode fault any probe hit, if one did
    /// (clears the latch).
    pub fn take_fault(&self) -> Option<String> {
        self.fault.borrow_mut().take()
    }

    /// Unwraps a storage read, latching the first fault.
    fn checked<T>(&self, read: Result<Option<T>, TxError>) -> Option<T> {
        match read {
            Ok(value) => value,
            Err(err) => {
                let mut fault = self.fault.borrow_mut();
                if fault.is_none() {
                    *fault = Some(err.to_string());
                }
                None
            }
        }
    }
}

impl<S: Storage> plan_eval::PlanFacts for StoreFacts<'_, S> {
    type Value = ObjectVal;

    fn fact_object(&self, probe: Probe<'_>, object: &str) -> Option<ObjectVal> {
        let keys = self.keys.probe_keys(&probe)?;
        if self.whole_record {
            // Baseline layout: decode the whole record, extract one.
            let mut fact: BTreeMap<String, ObjectVal> =
                self.checked(self.mgr.read_committed_key(&StoreKey::Fact(keys.presence)))?;
            return fact.remove(object);
        }
        // Per-object layout: the probed object's bytes, nothing else.
        if let Some(data) = keys.data {
            if let Some(value) = self.checked(
                self.mgr
                    .read_committed_key::<ObjectVal>(&StoreKey::Fact(data)),
            ) {
                return Some(value);
            }
        }
        // The declared sub-key missed: the fact never fired, fired
        // without this object, or the object has no declared ordinal.
        // The presence record settles all three (its extras map is
        // normally empty — a two-byte decode, never a whole record).
        let mut extras: BTreeMap<String, ObjectVal> =
            self.checked(self.mgr.read_committed_key(&StoreKey::Fact(keys.presence)))?;
        extras.remove(object)
    }

    fn fact_fired(&self, probe: Probe<'_>) -> bool {
        self.keys
            .probe_keys(&probe)
            .is_some_and(|keys| self.mgr.exists_key(&StoreKey::Fact(keys.presence)))
    }
}

/// Interns a plan-eval binding list into an owned, name-keyed map (the
/// executor wire format and the whole-record baseline layout).
pub fn bound_map(plan: &Plan, bound: &[(StrId, ObjectVal)]) -> BTreeMap<String, ObjectVal> {
    bound
        .iter()
        .map(|(name, value)| (plan.str(*name).to_string(), value.clone()))
        .collect()
}

/// Writes one fact from a name-keyed object map (outputs and marks
/// arriving from the wire, reconstructed records during remapping).
///
/// Per-object layout: each declared object goes under its dense
/// sub-key (stale declared sub-keys from a previous publication are
/// cleared so rewrites never resurrect old objects), undeclared names
/// land in the presence record's extras map. Whole-record layout: the
/// map is encoded verbatim at `obj = 0`.
///
/// # Errors
///
/// Lock conflicts or storage failures.
pub fn write_fact_map<S: Storage>(
    mgr: &mut TxManager<S>,
    action: &AtomicAction,
    plan: &Plan,
    base: FactKey,
    objects: &BTreeMap<String, ObjectVal>,
    whole_record: bool,
) -> Result<(), TxError> {
    debug_assert_eq!(base.obj, 0, "facts are addressed by their presence key");
    if whole_record {
        return mgr.write_key(action, &StoreKey::Fact(base), objects);
    }
    let decl = plan
        .fact_decl_objects(base.task, base.kind == FactKind::Input, base.item)
        .unwrap_or(Range32::EMPTY);
    let decl_sigs = &plan.class_objects[decl.as_range()];
    for (ordinal, sig) in decl_sigs.iter().enumerate() {
        let sub = StoreKey::Fact(base.object(ordinal as u32));
        match objects.get(plan.str(sig.name)) {
            Some(value) => mgr.write_key(action, &sub, value)?,
            None => {
                if mgr.exists_key(&sub) {
                    mgr.delete_key(action, &sub)?;
                }
            }
        }
    }
    let extras: BTreeMap<&String, &ObjectVal> = objects
        .iter()
        .filter(|(name, _)| {
            decl_sigs
                .iter()
                .all(|sig| plan.str(sig.name) != name.as_str())
        })
        .collect();
    mgr.write_key(action, &StoreKey::Fact(base), &extras)
}

/// Writes one fact straight from the evaluator's slot-aligned binding
/// list — the commit hot path. Each bound object's sub-key ordinal was
/// interned at plan lowering ([`PlanSlot::obj_ordinal`]), so the
/// per-object layout touches no strings at all; only names with no
/// declared ordinal (rare) are materialized into the presence extras.
///
/// `slots` is the bound input set's (or output mapping's) slot range:
/// the evaluator produces exactly one bound value per slot, in slot
/// order.
///
/// # Errors
///
/// Lock conflicts or storage failures.
///
/// [`PlanSlot::obj_ordinal`]: flowscript_plan::PlanSlot::obj_ordinal
pub fn write_fact_bound<S: Storage>(
    mgr: &mut TxManager<S>,
    action: &AtomicAction,
    plan: &Plan,
    base: FactKey,
    slots: Range32,
    bound: &[(StrId, ObjectVal)],
    whole_record: bool,
) -> Result<(), TxError> {
    debug_assert_eq!(base.obj, 0, "facts are addressed by their presence key");
    debug_assert_eq!(
        bound.len(),
        slots.len(),
        "the evaluator binds one value per slot"
    );
    if whole_record {
        return mgr.write_key(action, &StoreKey::Fact(base), &bound_map(plan, bound));
    }
    let decl = plan
        .fact_decl_objects(base.task, base.kind == FactKind::Input, base.item)
        .unwrap_or(Range32::EMPTY);
    let mut covered = vec![false; decl.len()];
    let mut extras: BTreeMap<String, ObjectVal> = BTreeMap::new();
    for (i, (name, value)) in bound.iter().enumerate() {
        let ordinal = plan
            .slots
            .get(slots.start as usize + i)
            .and_then(|slot| slot.obj_ordinal);
        match ordinal {
            Some(ordinal) => {
                if let Some(flag) = covered.get_mut(ordinal as usize) {
                    *flag = true;
                }
                mgr.write_key(action, &StoreKey::Fact(base.object(ordinal)), value)?;
            }
            None => {
                extras.insert(plan.str(*name).to_string(), value.clone());
            }
        }
    }
    // Clear declared sub-keys this binding did not (re)produce, so a
    // rebinding never resurrects a stale object.
    for (ordinal, _) in covered.iter().enumerate().filter(|(_, covered)| !**covered) {
        let sub = StoreKey::Fact(base.object(ordinal as u32));
        if mgr.exists_key(&sub) {
            mgr.delete_key(action, &sub)?;
        }
    }
    mgr.write_key(action, &StoreKey::Fact(base), &extras)
}

/// Reads one fact back as a name-keyed map (whole-fact consumers:
/// recovery re-dispatch, monitoring, remapping). Per-object layout:
/// one contiguous range scan over the fact's sub-keys, naming each by
/// its declared ordinal; the presence record contributes the extras.
///
/// # Errors
///
/// Decode failures (corrupt storage).
pub fn read_fact_map<S: Storage>(
    mgr: &TxManager<S>,
    plan: &Plan,
    base: FactKey,
    whole_record: bool,
) -> Result<Option<BTreeMap<String, ObjectVal>>, TxError> {
    debug_assert_eq!(base.obj, 0, "facts are addressed by their presence key");
    if whole_record {
        return mgr.read_committed_key(&StoreKey::Fact(base));
    }
    let Some(mut map) =
        mgr.read_committed_key::<BTreeMap<String, ObjectVal>>(&StoreKey::Fact(base))?
    else {
        return Ok(None);
    };
    let decl = plan
        .fact_decl_objects(base.task, base.kind == FactKind::Input, base.item)
        .unwrap_or(Range32::EMPTY);
    for (key, bytes) in mgr.facts_in_range(base.object(0), base.fact_last()) {
        let ordinal = (key.obj - 1) as usize;
        let Some(sig) = plan.class_objects[decl.as_range()].get(ordinal) else {
            continue; // stale sub-key past the declaration: unreachable by probes
        };
        map.insert(
            plan.str(sig.name).to_string(),
            flowscript_codec::from_bytes(&bytes)?,
        );
    }
    Ok(Some(map))
}

/// Resolves one fact's identity (producer path, fact kind, set/output
/// name) under a replacement plan and re-keys its presence key. `None`
/// when the task or its declaration no longer exists.
fn remap_fact_base(
    old_plan: &Plan,
    new_plan: &Plan,
    base: FactKey,
    instance_id: u32,
) -> Option<FactKey> {
    let old_task = old_plan.tasks.get(base.task as usize)?;
    let path = old_plan.str(old_task.path);
    let old_class = old_plan.class_of(old_task);
    let new_task = new_plan.task_by_path(path)?;
    let new_class = new_plan.class_of(new_plan.task(new_task));
    match base.kind {
        FactKind::Input => {
            let sets = &old_plan.class_sets[old_class.sets.as_range()];
            let name = old_plan.str(sets.get(base.item as usize)?.name);
            let item = new_plan.class_set_ordinal(new_class, name)?;
            Some(FactKey::input(instance_id, new_task, item))
        }
        FactKind::Output => {
            let outputs = &old_plan.class_outputs[old_class.outputs.as_range()];
            let name = old_plan.str(outputs.get(base.item as usize)?.name);
            let item = new_plan.class_output_ordinal(new_class, name)?;
            Some(FactKey::output(instance_id, new_task, item))
        }
    }
}

/// Whether a fact's declared object names (and order) are identical
/// under both plans — when they are *and* the base key is unchanged,
/// every sub-key already has the right address.
fn decl_names_match(old_plan: &Plan, new_plan: &Plan, base: FactKey) -> bool {
    let is_input = base.kind == FactKind::Input;
    let old = old_plan.fact_decl_objects(base.task, is_input, base.item);
    let new = new_plan.fact_decl_objects(base.task, is_input, base.item);
    let (Some(old), Some(new)) = (old, new) else {
        return false;
    };
    old.len() == new.len()
        && old_plan.class_objects[old.as_range()]
            .iter()
            .zip(&new_plan.class_objects[new.as_range()])
            .all(|(a, b)| old_plan.str(a.name) == new_plan.str(b.name))
}

/// One staged fact move: the sub-keys to vacate, and (unless the fact
/// dies with its declaration) the new presence key with the
/// reconstructed record to rewrite under it.
type FactMove = (Vec<FactKey>, Option<(FactKey, BTreeMap<String, ObjectVal>)>);

/// Moves every persisted fact of an instance from the old plan's dense
/// id space onto the new plan's (reconfiguration shifts task ids,
/// set/output ordinals *and* object ordinals; facts whose task or
/// declaration vanished are deleted; objects whose declared slot
/// vanished demote to the presence extras). Deletes are staged before
/// writes so a key vacated by one move can be reoccupied by another
/// within the same action.
///
/// # Errors
///
/// Lock conflicts, storage failures, or corrupt records.
pub fn remap_instance_facts<S: Storage>(
    mgr: &mut TxManager<S>,
    action: &AtomicAction,
    old_plan: &Plan,
    old_keys: &InstanceKeys,
    new_plan: &Plan,
    instance_id: u32,
    whole_record: bool,
) -> Result<(), TxError> {
    let (lo, hi) = old_keys.instance_fact_range();
    // Group sub-keys per fact; key order keeps a fact's range adjacent.
    let mut groups: Vec<(FactKey, Vec<FactKey>)> = Vec::new();
    for key in mgr.fact_keys_in_range(lo, hi) {
        let base = key.with_obj(0);
        match groups.last_mut() {
            Some((current, members)) if *current == base => members.push(key),
            _ => groups.push((base, vec![key])),
        }
    }
    let mut moves: Vec<FactMove> = Vec::new();
    for (base, members) in groups {
        let target = remap_fact_base(old_plan, new_plan, base, instance_id);
        if target == Some(base) && decl_names_match(old_plan, new_plan, base) {
            continue; // identity: every sub-key already lives at its address
        }
        let record = read_fact_map(mgr, old_plan, base, whole_record)?;
        moves.push((members, target.zip(record)));
    }
    for (members, _) in &moves {
        for key in members {
            mgr.delete_key(action, &StoreKey::Fact(*key))?;
        }
    }
    for (_, target) in moves {
        if let Some((new_base, record)) = target {
            write_fact_map(mgr, action, new_plan, new_base, &record, whole_record)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::schema;
    use flowscript_plan::eval::PlanFacts;

    fn order_plan() -> Plan {
        let schema = schema::compile_source(
            flowscript_core::samples::ORDER_PROCESSING,
            "processOrderApplication",
        )
        .unwrap();
        Plan::lower(&schema)
    }

    fn obj(value: &str) -> ObjectVal {
        ObjectVal::text("StockInfo", value)
    }

    fn write_output(
        mgr: &mut TxManager<SharedStorage>,
        plan: &Plan,
        base: FactKey,
        objects: &BTreeMap<String, ObjectVal>,
        whole: bool,
    ) {
        let action = mgr.begin();
        write_fact_map(mgr, &action, plan, base, objects, whole).unwrap();
        mgr.commit(action).unwrap();
    }

    #[test]
    fn both_layouts_roundtrip_records() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i", 0);
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let base = keys.out_key(&plan, check, "stockAvailable").unwrap();
        let mut objects = BTreeMap::new();
        objects.insert("stockInfo".to_string(), obj("s"));
        objects.insert("extraneous".to_string(), obj("x")); // undeclared
        for whole in [false, true] {
            let mut mgr = TxManager::in_memory();
            write_output(&mut mgr, &plan, base, &objects, whole);
            let read = read_fact_map(&mgr, &plan, base, whole).unwrap().unwrap();
            assert_eq!(read, objects, "whole={whole}");
        }
    }

    #[test]
    fn per_object_layout_splits_and_clears_stale_sub_keys() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i", 0);
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let base = keys.out_key(&plan, check, "stockAvailable").unwrap();
        let mut mgr = TxManager::in_memory();
        let mut objects = BTreeMap::new();
        objects.insert("stockInfo".to_string(), obj("v1"));
        write_output(&mut mgr, &plan, base, &objects, false);
        // The declared object lives under its own sub-key…
        assert!(mgr.exists_key(&StoreKey::Fact(base.object(0))));
        // …and a rewrite without it clears the stale sub-key.
        write_output(&mut mgr, &plan, base, &BTreeMap::new(), false);
        assert!(!mgr.exists_key(&StoreKey::Fact(base.object(0))));
        assert!(mgr.exists_key(&StoreKey::Fact(base)), "fact still fired");
        assert_eq!(
            read_fact_map(&mgr, &plan, base, false).unwrap().unwrap(),
            BTreeMap::new()
        );
    }

    #[test]
    fn store_facts_probe_reads_one_object_without_scanning() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i", 0);
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let base = keys.out_key(&plan, check, "stockAvailable").unwrap();
        let mut mgr = TxManager::in_memory();
        let mut objects = BTreeMap::new();
        objects.insert("stockInfo".to_string(), obj("s"));
        write_output(&mut mgr, &plan, base, &objects, false);
        // Probe through the evaluator's view.
        let facts = StoreFacts::new(&mgr, &keys, false);
        let probe = plan
            .sources
            .iter()
            .enumerate()
            .find(|(_, s)| {
                s.producer == Some(check) && s.object.map(|o| plan.str(o)) == Some("stockInfo")
            })
            .map(|(idx, s)| Probe {
                source: idx as u32,
                candidate: None,
                producer: plan.str(s.producer_path),
                name: "stockAvailable",
                is_input: false,
            })
            .expect("stockInfo is probed");
        let scans = mgr.fact_range_scan_count();
        assert!(facts.fact_fired(probe));
        assert_eq!(facts.fact_object(probe, "stockInfo"), Some(obj("s")));
        assert_eq!(
            mgr.fact_range_scan_count(),
            scans,
            "probes must be point reads"
        );
        assert!(facts.take_fault().is_none());
    }

    #[test]
    fn corrupt_fact_surfaces_a_fault_instead_of_absence() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i", 0);
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let base = keys.out_key(&plan, check, "stockAvailable").unwrap();
        for whole in [false, true] {
            let mut mgr = TxManager::in_memory();
            let action = mgr.begin();
            // Garbage bytes at both the presence and data sub-keys.
            mgr.write_key_raw(&action, &StoreKey::Fact(base), vec![0xFF, 0xFF, 0xFF])
                .unwrap();
            mgr.write_key_raw(
                &action,
                &StoreKey::Fact(base.object(0)),
                vec![0xFF, 0xFF, 0xFF],
            )
            .unwrap();
            mgr.commit(action).unwrap();
            let facts = StoreFacts::new(&mgr, &keys, whole);
            let probe = plan
                .sources
                .iter()
                .enumerate()
                .find(|(_, s)| {
                    s.producer == Some(check) && s.object.map(|o| plan.str(o)) == Some("stockInfo")
                })
                .map(|(idx, s)| Probe {
                    source: idx as u32,
                    candidate: None,
                    producer: plan.str(s.producer_path),
                    name: "stockAvailable",
                    is_input: false,
                })
                .unwrap();
            assert_eq!(facts.fact_object(probe, "stockInfo"), None);
            let fault = facts.take_fault();
            assert!(fault.is_some(), "whole={whole}: fault must surface");
            assert!(facts.take_fault().is_none(), "fault latch clears");
        }
    }

    #[test]
    fn remap_is_identity_for_an_unchanged_plan() {
        let plan_a = order_plan();
        let plan_b = order_plan();
        let keys = InstanceKeys::build(&plan_a, "i", 5);
        let check = plan_a
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let base = keys.out_key(&plan_a, check, "stockAvailable").unwrap();
        let mut mgr = TxManager::in_memory();
        let mut objects = BTreeMap::new();
        objects.insert("stockInfo".to_string(), obj("s"));
        write_output(&mut mgr, &plan_a, base, &objects, false);
        let count = mgr.object_count();
        let action = mgr.begin();
        remap_instance_facts(&mut mgr, &action, &plan_a, &keys, &plan_b, 5, false).unwrap();
        mgr.commit(action).unwrap();
        assert_eq!(mgr.object_count(), count, "identity remap moves nothing");
        assert_eq!(
            read_fact_map(&mgr, &plan_b, base, false).unwrap().unwrap(),
            objects
        );
    }
}
