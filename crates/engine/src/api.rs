//! The high-level facade: a complete workflow system on simulated nodes.
//!
//! [`WorkflowSystem`] wires the Fig. 4 topology: a client node, the
//! repository service, `k` execution-coordinator nodes, and `n` executor
//! nodes, all over the simulated network. Scripts are registered via
//! repository RPC, instances started via coordinator RPC, and everything
//! runs under the deterministic event loop ([`WorkflowSystem::run`]).
//!
//! With [`SystemBuilder::coordinators`] the execution service scales
//! out: instance ownership is sharded across the coordinator nodes by
//! the rendezvous-hashed [`ShardMap`], each shard owning its instances'
//! facts, control blocks and write-ahead log on its **own** stable
//! storage, while the repository (and its plan cache) stays shared.
//! Client calls route through the same map, and a request landing on
//! the wrong shard is forwarded to the owner.
//!
//! Fault injection is first-class: crash/restart any node (a restarted
//! coordinator recovers *its shard* from its own write-ahead log while
//! the other shards keep committing), partition the network, or apply a
//! scripted [`FaultPlan`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use flowscript_obs::{ObsEvent, ObsEventKind, ObserveLevel, Registry, Snapshot};
use flowscript_sim::{net::LinkConfig, FaultPlan, NodeId, SimDuration, SimTime, World};
use flowscript_tx::{SharedFileStorage, StableStore, TxManager};

use crate::coordinator::{
    package_stored_instance, CommitBatch, CoordHandle, CoordStats, Coordinator, EngineConfig,
    InstanceStatus, Outcome,
};
use crate::error::EngineError;
use crate::executor;
use crate::impl_registry::{ImplRegistry, InvokeCtx, TaskBehavior, TaskImpl};
use crate::msg::EngineMsg;
use crate::reconfig::Reconfig;
use crate::repository::RepoHandle;
use crate::sched::ExecutorSpec;
use crate::shard::ShardMap;
use crate::state::CbState;
use crate::value::ObjectVal;

/// Builder for a [`WorkflowSystem`].
#[derive(Debug)]
pub struct SystemBuilder {
    executors: usize,
    /// Additional executors with an explicit node name and location
    /// label (the scheduler's placement constraint).
    placed_executors: Vec<(String, String)>,
    /// Capacity every executor gets unless
    /// [`SystemBuilder::executors_weighted`] says otherwise: `0` is the
    /// legacy unbounded node, `1` the serial model.
    default_capacity: u32,
    /// Per-executor capacities for the location-less pool (overrides
    /// `executors` when non-empty).
    weighted_executors: Vec<u32>,
    coordinators: usize,
    seed: u64,
    config: EngineConfig,
    link: LinkConfig,
    registry: Option<ImplRegistry>,
    storage: Option<StableStore>,
    shard_storages: Option<Vec<StableStore>>,
    wal_dir: Option<std::path::PathBuf>,
    trace_enabled: bool,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self {
            executors: 2,
            placed_executors: Vec::new(),
            default_capacity: 0,
            weighted_executors: Vec::new(),
            coordinators: 1,
            seed: 0,
            config: EngineConfig::default(),
            link: LinkConfig::default(),
            registry: None,
            storage: None,
            shard_storages: None,
            wal_dir: None,
            trace_enabled: true,
        }
    }
}

impl SystemBuilder {
    /// Number of location-less executor nodes. `executors(0)` is
    /// honored when [`SystemBuilder::executor_at`] adds placed ones
    /// (a placed-only fleet); with no placed executors either, build
    /// falls back to one location-less node — a system always has an
    /// executor.
    pub fn executors(mut self, n: usize) -> Self {
        self.executors = n;
        self
    }

    /// Adds one executor node named `node` registered at `location`.
    /// Tasks whose implementation clause pins that location dispatch
    /// only to matching executors; placed executors also serve
    /// unpinned tasks. Placed nodes come after the
    /// [`SystemBuilder::executors`] fleet in
    /// [`WorkflowSystem::executor_nodes`] order.
    pub fn executor_at(mut self, node: impl Into<String>, location: impl Into<String>) -> Self {
        self.placed_executors.push((node.into(), location.into()));
        self
    }

    /// Gives every executor **serial capacity**: one task at a time,
    /// later arrivals queueing in virtual time. Off by default (the
    /// legacy infinitely-parallel nodes); the `scheduled` bench runs
    /// with it on so executor load shows up as latency. Shorthand for a
    /// uniform [`SystemBuilder::executor_capacity`] of 1.
    pub fn serial_executors(mut self, serial: bool) -> Self {
        self.default_capacity = u32::from(serial);
        self
    }

    /// Capacity every executor gets (declared to the schedulers AND
    /// enforced by the node's virtual-time slot queue): `k` concurrent
    /// tasks, `0` for the legacy unbounded node. Coordinators park
    /// dispatches once every eligible executor is at its capacity.
    pub fn executor_capacity(mut self, capacity: u32) -> Self {
        self.default_capacity = capacity;
        self
    }

    /// A **weighted** location-less fleet: one executor per entry, with
    /// that entry's capacity (`0` = unbounded). Overrides
    /// [`SystemBuilder::executors`]; placed executors keep the default
    /// capacity.
    pub fn executors_weighted(mut self, capacities: Vec<u32>) -> Self {
        self.executors = capacities.len();
        self.weighted_executors = capacities;
        self
    }

    /// Number of coordinator nodes (≥ 1). Instances are sharded across
    /// them by consistent (rendezvous) hash of the instance name; every
    /// coordinator owns its shard's facts, WAL and worklists on its own
    /// stable storage.
    pub fn coordinators(mut self, n: usize) -> Self {
        self.coordinators = n.max(1);
        self
    }

    /// RNG seed (same seed ⇒ identical run).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Engine policy (retries, timeouts, repeat bounds, checkpoints).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Default network link characteristics.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Uses an existing implementation registry (shared with other
    /// systems, e.g. nested script execution).
    pub fn registry(mut self, registry: ImplRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Uses existing stable storage for shard 0 (to model restarting a
    /// single-coordinator system over a surviving disk). For sharded
    /// systems prefer [`SystemBuilder::shard_storages`].
    pub fn storage(mut self, storage: impl Into<StableStore>) -> Self {
        self.storage = Some(storage.into());
        self
    }

    /// Uses existing per-shard stable storages (to model restarting a
    /// whole sharded system over its surviving disks; see
    /// [`WorkflowSystem::shard_storages`]). Missing entries get fresh
    /// storage.
    pub fn shard_storages<S: Into<StableStore>>(mut self, storages: Vec<S>) -> Self {
        self.shard_storages = Some(storages.into_iter().map(Into::into).collect());
        self
    }

    /// Journals every shard to a real synced log file under `dir`
    /// (`shard0.wal`, `shard1.wal`, ...), created fresh — truncating
    /// leftovers from previous runs. Each WAL frame append becomes a
    /// `write` + `fdatasync`, so commits pay the durable-log cost that
    /// group commit amortizes; the in-memory default keeps simulated
    /// crash-survival without touching the disk. Explicit
    /// [`SystemBuilder::storage`]/[`SystemBuilder::shard_storages`]
    /// entries take precedence per shard (restart-over-surviving-disk
    /// scenarios pass reopened [`SharedFileStorage`] handles there).
    ///
    /// # Panics
    ///
    /// [`SystemBuilder::build`] panics if `dir` cannot be created or a
    /// log file cannot be opened.
    pub fn wal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Disables trace recording (benchmarks).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Observability level (shorthand for setting
    /// [`EngineConfig::observe`] on the current config).
    pub fn observe(mut self, level: ObserveLevel) -> Self {
        self.config.observe = level;
        self
    }

    /// Group-commit batching knobs (shorthand for setting
    /// [`EngineConfig::commit_batch`] on the current config). Pass
    /// [`CommitBatch::disabled`] for the one-commit-per-report
    /// baseline arm.
    pub fn commit_batch(mut self, batch: CommitBatch) -> Self {
        self.config.commit_batch = batch;
        self
    }

    /// Builds the system: creates nodes, installs services.
    pub fn build(self) -> WorkflowSystem {
        let mut world = World::new(self.seed);
        world.trace_mut().set_enabled(self.trace_enabled);
        world.net_mut().set_default_link(self.link);
        let client = world.add_node("client");
        let repo_node = world.add_node("repository");
        let coord_nodes: Vec<NodeId> = (0..self.coordinators)
            .map(|i| {
                world.add_node(if self.coordinators == 1 {
                    "coordinator".to_string()
                } else {
                    format!("coordinator{i}")
                })
            })
            .collect();
        // The executor fleet: the location-less pool first (weighted
        // capacities when declared), then every placed executor with
        // its label. An entirely empty fleet gets one default node — a
        // system always has an executor.
        let unlabeled = if self.executors == 0 && self.placed_executors.is_empty() {
            1
        } else {
            self.executors
        };
        let mut executor_specs: Vec<ExecutorSpec> = (0..unlabeled)
            .map(|i| ExecutorSpec {
                node: world.add_node(format!("executor{i}")),
                location: None,
                capacity: self
                    .weighted_executors
                    .get(i)
                    .copied()
                    .unwrap_or(self.default_capacity),
            })
            .collect();
        for (name, location) in &self.placed_executors {
            executor_specs.push(ExecutorSpec {
                node: world.add_node(name.clone()),
                location: Some(location.clone()),
                capacity: self.default_capacity,
            });
        }
        let executors: Vec<NodeId> = executor_specs.iter().map(|spec| spec.node).collect();

        let registry = self.registry.unwrap_or_default();
        let provided = self.shard_storages.unwrap_or_default();
        let storages: Vec<StableStore> = (0..self.coordinators)
            .map(|i| {
                if i < provided.len() {
                    provided[i].clone()
                } else if i == 0 && self.storage.is_some() {
                    self.storage.clone().expect("checked above")
                } else if let Some(dir) = &self.wal_dir {
                    std::fs::create_dir_all(dir).expect("wal dir creatable");
                    let path = dir.join(format!("shard{i}.wal"));
                    StableStore::File(
                        SharedFileStorage::create(&path).expect("wal file opens fresh"),
                    )
                } else {
                    StableStore::default()
                }
            })
            .collect();

        let repo = RepoHandle::new();
        repo.install(&mut world, repo_node);

        let shard = ShardMap::new(coord_nodes.clone());
        let coords: Vec<CoordHandle> = coord_nodes
            .iter()
            .zip(&storages)
            .map(|(&node, storage)| {
                let coordinator = Coordinator::open_sharded(
                    node,
                    repo_node,
                    executor_specs.clone(),
                    self.config.clone(),
                    storage.clone(),
                    shard.clone(),
                )
                .expect("fresh storage opens");
                let coord = CoordHandle::new(coordinator);
                coord.install(&mut world);
                // If the storage carried previous state (system
                // restart), recover this shard.
                coord.recover(&mut world);
                coord
            })
            .collect();

        for spec in &executor_specs {
            executor::install_with(
                &mut world,
                spec.node,
                registry.clone(),
                executor::ExecutorProfile {
                    location: spec.location.clone(),
                    capacity: spec.capacity,
                },
            );
        }

        WorkflowSystem {
            world,
            client,
            repo_node,
            coord_nodes,
            executors,
            executor_specs,
            registry,
            repo,
            coords,
            shard,
            storages,
            config: self.config,
            wal_dir: self.wal_dir,
            retired: Vec::new(),
            chaos: None,
        }
    }
}

/// How many instances one drain round moves under a single 2PC: the
/// batch is unavailable for the whole round, so the batch size bounds
/// the per-instance pause while still amortizing prepare/decision
/// traffic across many instances.
const DRAIN_BATCH: usize = 64;

/// Where an armed chaos kill ([`WorkflowSystem::arm_chaos_kill`]) fires
/// inside a planned drain or a crash-driven adoption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Before the round's `HandOffBegin` intents are logged: the round
    /// never started, nothing to repair.
    BeforeBegin,
    /// After the batch's intents are durable, before the destination
    /// prepares — recovery presumes the whole batch aborted.
    AfterBegin,
    /// After the destination's durable yes-vote, before the source's
    /// decision — the destination chases the in-doubt stage and learns
    /// "abort" from the restarted source.
    AfterPrepare,
    /// After the source's durable decision (instances purged), before
    /// the destination applies it — the restarted source re-announces
    /// the verdict and the destination adopts.
    AfterDecision,
    /// Mid-claim during crash-driven adoption: the driver dies after
    /// claiming some of the dead shard's instances. Re-running
    /// [`WorkflowSystem::adopt_dead_shard`] is idempotent.
    MidClaim,
}

/// An armed one-shot kill, consumed by the next drain or adoption.
#[derive(Debug, Clone, Copy)]
struct ChaosKill {
    point: KillPoint,
    /// For hand-off points: the 0-based batch round to strike in. For
    /// [`KillPoint::MidClaim`]: how many instances to claim before
    /// dying.
    round: usize,
}

/// What one planned drain ([`WorkflowSystem::remove_coordinator`]) did.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Instances moved off the departing shard.
    pub moved: usize,
    /// Batched 2PC rounds the drain took — many instances share one
    /// round, so `rounds` is far below `moved` for a loaded shard.
    pub rounds: usize,
    /// Wall-clock nanoseconds per round (the per-instance pause bound:
    /// a batch is unavailable for exactly its round). Also recorded in
    /// the departing shard's `coord.drain_pause_ns` histogram.
    pub pause_ns: Vec<u64>,
    /// The membership epoch after the final map flip.
    pub epoch: u64,
}

impl DrainReport {
    /// The longest single round — the worst per-instance pause, in
    /// nanoseconds.
    pub fn max_pause_ns(&self) -> u64 {
        self.pause_ns.iter().copied().max().unwrap_or(0)
    }
}

/// What one crash-driven failover ([`WorkflowSystem::adopt_dead_shard`])
/// did.
#[derive(Debug, Clone, Default)]
pub struct FailoverReport {
    /// Instances claimed from the dead shard's storage and adopted by
    /// survivors (instances already claimed by an earlier, interrupted
    /// attempt are re-swept but not re-counted).
    pub adopted: usize,
    /// The membership epoch stamped into the fence and the new map.
    pub epoch: u64,
    /// Node index of the surviving shard that wrote the fence.
    pub claimant: u32,
}

/// What one live rebalance ([`WorkflowSystem::rebalance`] /
/// [`WorkflowSystem::add_coordinator`]) did: how many instances moved,
/// how long each was unavailable, and the shard-map epoch the system
/// converged on.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Instances handed off (each one batched 2PC move).
    pub moved: usize,
    /// Wall-clock nanoseconds each moved instance was unavailable
    /// (collect → adopt), in move order. Also recorded in the source
    /// shard's `coord.handoff_pause_ns` histogram.
    pub pause_ns: Vec<u64>,
    /// The membership epoch after the final map flip.
    pub epoch: u64,
}

impl RebalanceReport {
    /// The longest single-instance pause, in nanoseconds.
    pub fn max_pause_ns(&self) -> u64 {
        self.pause_ns.iter().copied().max().unwrap_or(0)
    }

    /// Total wall-clock nanoseconds spent moving instances.
    pub fn total_pause_ns(&self) -> u64 {
        self.pause_ns.iter().sum()
    }
}

/// A complete simulated workflow management system (Fig. 4).
pub struct WorkflowSystem {
    world: World,
    client: NodeId,
    repo_node: NodeId,
    coord_nodes: Vec<NodeId>,
    executors: Vec<NodeId>,
    /// The executor fleet with location labels and capacities —
    /// retained so coordinators added later
    /// ([`WorkflowSystem::add_coordinator`]) schedule over the same
    /// fleet.
    executor_specs: Vec<ExecutorSpec>,
    registry: ImplRegistry,
    repo: RepoHandle,
    coords: Vec<CoordHandle>,
    shard: ShardMap,
    storages: Vec<StableStore>,
    /// Engine policy, retained for late-added coordinators.
    config: EngineConfig,
    /// WAL directory, retained so late-added shards journal alongside
    /// the original fleet (`shardN.wal`).
    wal_dir: Option<std::path::PathBuf>,
    /// Coordinators retired from the shard map by a planned drain or a
    /// crash-driven failover. They stay installed in the world as pure
    /// relays (late executor reports for their former instances route
    /// through them to the adopter), and their counters, traces and
    /// metrics keep aggregating.
    retired: Vec<(NodeId, CoordHandle)>,
    /// A one-shot chaos kill armed by [`WorkflowSystem::arm_chaos_kill`],
    /// consumed by the next drain or adoption.
    chaos: Option<ChaosKill>,
}

impl WorkflowSystem {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The coordinator handle owning `instance` per the shard map.
    fn coord_for(&self, instance: &str) -> &CoordHandle {
        &self.coords[self.shard.shard_of(instance)]
    }

    // -----------------------------------------------------------------
    // Scripts and implementations.
    // -----------------------------------------------------------------

    /// Registers (and validates) a script with the repository service.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidScript`] with rendered diagnostics.
    pub fn register_script(
        &mut self,
        name: &str,
        source: &str,
        root: &str,
    ) -> Result<u32, EngineError> {
        let msg = EngineMsg::RepoRegister {
            name: name.to_string(),
            source: source.to_string(),
            root: root.to_string(),
        };
        let result: Rc<RefCell<Option<Result<u32, String>>>> = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        self.world.rpc_call(
            self.client,
            self.repo_node,
            flowscript_codec::to_bytes(&msg),
            SimDuration::from_secs(10),
            move |_, reply| {
                let outcome = match reply {
                    Err(err) => Err(err.to_string()),
                    Ok(bytes) => match flowscript_codec::from_bytes::<EngineMsg>(&bytes) {
                        Ok(EngineMsg::RepoReply { result, .. }) => result,
                        _ => Err("malformed repository reply".to_string()),
                    },
                };
                *result2.borrow_mut() = Some(outcome);
            },
        );
        self.pump(|| result.borrow().is_some());
        let taken = result.borrow_mut().take();
        match taken {
            Some(Ok(version)) => Ok(version),
            Some(Err(err)) => Err(EngineError::InvalidScript(err)),
            None => Err(EngineError::Tx("repository call never completed".into())),
        }
    }

    /// Binds a closure implementation.
    pub fn bind_fn<F>(&self, name: &str, f: F)
    where
        F: Fn(&InvokeCtx) -> TaskBehavior + 'static,
    {
        self.registry.bind_fn(name, f);
    }

    /// Binds a [`TaskImpl`] implementation.
    pub fn bind(&self, name: &str, implementation: Rc<dyn TaskImpl>) {
        self.registry.bind(name, implementation);
    }

    /// Binds a nested workflow script as an implementation (§4.3).
    pub fn bind_script(&self, name: &str, source: &str, root: &str) {
        self.registry.bind_script(name, source, root);
    }

    /// The shared implementation registry.
    pub fn registry(&self) -> &ImplRegistry {
        &self.registry
    }

    /// Direct repository access (admin/monitoring).
    pub fn repository(&self) -> &RepoHandle {
        &self.repo
    }

    // -----------------------------------------------------------------
    // Instances.
    // -----------------------------------------------------------------

    /// The `StartInstance` wire message (one builder for every start
    /// entry point, so the shapes cannot drift apart). Client requests
    /// carry the shard-map epoch they routed under, so a coordinator
    /// whose map disagrees can tell a stale client from a stale peer.
    fn start_msg<I, K>(
        &self,
        instance: &str,
        script: &str,
        version: Option<u32>,
        set: &str,
        inputs: I,
    ) -> EngineMsg
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        EngineMsg::StartInstance {
            instance: instance.to_string(),
            script: script.to_string(),
            version,
            set: set.to_string(),
            inputs: inputs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            epoch: self.shard.epoch(),
        }
    }

    /// Sends a `StartInstance` RPC from the client to `target` and
    /// awaits the acknowledgement.
    fn rpc_start(&mut self, target: NodeId, msg: &EngineMsg) -> Result<(), EngineError> {
        let result: Rc<RefCell<Option<Result<(), EngineError>>>> = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        self.world.rpc_call(
            self.client,
            target,
            flowscript_codec::to_bytes(msg),
            SimDuration::from_secs(10),
            move |_, reply| {
                let outcome = match reply {
                    Err(err) => Err(EngineError::BadInputs(err.to_string())),
                    Ok(bytes) => match flowscript_codec::from_bytes::<EngineMsg>(&bytes) {
                        Ok(EngineMsg::Ack { result }) => result.map_err(EngineError::BadInputs),
                        // The owning shard is at admission capacity:
                        // typed, retryable rejection — not an input
                        // error.
                        Ok(EngineMsg::Busy { queue_depth }) => {
                            Err(EngineError::Busy { queue_depth })
                        }
                        _ => Err(EngineError::BadInputs(
                            "malformed coordinator reply".to_string(),
                        )),
                    },
                };
                *result2.borrow_mut() = Some(outcome);
            },
        );
        self.pump(|| result.borrow().is_some());
        let taken = result.borrow_mut().take();
        match taken {
            Some(outcome) => outcome,
            None => Err(EngineError::Tx("start call never completed".into())),
        }
    }

    /// Starts an instance of a registered script, binding the root's
    /// `set` input set with `inputs`. The request routes to the
    /// coordinator shard owning the instance name.
    ///
    /// # Errors
    ///
    /// Unknown script, duplicate instance, bad inputs, or unreachable
    /// services.
    pub fn start_with<I, K>(
        &mut self,
        instance: &str,
        script: &str,
        set: &str,
        inputs: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        let msg = self.start_msg(instance, script, None, set, inputs);
        let target = self.shard.node_of(instance);
        self.rpc_start(target, &msg)
    }

    /// [`WorkflowSystem::start_with`] for the common `main` input set.
    ///
    /// # Errors
    ///
    /// As for [`WorkflowSystem::start_with`].
    pub fn start<I, K>(
        &mut self,
        instance: &str,
        script: &str,
        set: &str,
        inputs: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        self.start_with(instance, script, set, inputs)
    }

    /// [`WorkflowSystem::start_with`], deliberately routed through the
    /// coordinator at shard index `via` — which may not be the owner.
    /// A misdirected request is forwarded to the owning shard
    /// (forwarding tests; real clients route via the shard map).
    ///
    /// # Errors
    ///
    /// As for [`WorkflowSystem::start_with`].
    pub fn start_via_shard<I, K>(
        &mut self,
        via: usize,
        instance: &str,
        script: &str,
        set: &str,
        inputs: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        let msg = self.start_msg(instance, script, None, set, inputs);
        let target = self.coord_nodes[via % self.coord_nodes.len()];
        self.rpc_start(target, &msg)
    }

    // -----------------------------------------------------------------
    // Driving the simulation.
    // -----------------------------------------------------------------

    /// Runs until the event queue drains (all instances settled).
    pub fn run(&mut self) {
        self.world.run();
    }

    /// Runs events up to the given virtual time.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }

    /// Runs events for the given additional virtual duration.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.world.now() + duration;
        self.world.run_until(deadline);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    fn pump(&mut self, done: impl Fn() -> bool) {
        while !done() {
            if !self.world.step() {
                return;
            }
        }
    }

    // -----------------------------------------------------------------
    // Monitoring (the paper's administrative applications).
    // -----------------------------------------------------------------

    /// Instance status (answered by the owning shard).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownInstance`].
    pub fn status(&self, instance: &str) -> Result<InstanceStatus, EngineError> {
        self.coord_for(instance).status(instance)
    }

    /// The final outcome, if the instance completed.
    pub fn outcome(&self, instance: &str) -> Option<Outcome> {
        match self.coord_for(instance).status(instance) {
            Ok(InstanceStatus::Completed(outcome)) => Some(outcome),
            _ => None,
        }
    }

    /// Every task's state, keyed by path.
    pub fn task_states(&self, instance: &str) -> BTreeMap<String, CbState> {
        self.coord_for(instance).task_states(instance)
    }

    /// A published output fact (e.g. a root-level mark like `toPay`).
    pub fn output_fact(
        &self,
        instance: &str,
        path: &str,
        output: &str,
    ) -> Option<BTreeMap<String, ObjectVal>> {
        self.coord_for(instance).output_fact(instance, path, output)
    }

    /// Every coordinator handle: the active shards plus retired ones
    /// (drained or failed-over nodes kept as relays). Aggregations walk
    /// all of them so a shard's history survives its retirement.
    fn all_coords(&self) -> impl Iterator<Item = &CoordHandle> {
        self.coords
            .iter()
            .chain(self.retired.iter().map(|(_, coord)| coord))
    }

    /// Engine counters, aggregated over every coordinator shard —
    /// including retired shards, whose counters record the work they
    /// did before draining out.
    pub fn stats(&self) -> CoordStats {
        let mut total = CoordStats::default();
        for coord in self.all_coords() {
            total += &coord.stats();
        }
        total
    }

    /// Engine counters of one coordinator shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_stats(&self, shard: usize) -> CoordStats {
        self.coords[shard].stats()
    }

    /// Ordered dispatch decisions, concatenated shard by shard (within
    /// one shard — and hence within one instance — records keep their
    /// order of occurrence; the equivalence tests compare per-instance
    /// subsequences across shard counts).
    pub fn dispatch_trace(&self) -> Vec<crate::coordinator::DispatchRecord> {
        self.all_coords()
            .flat_map(|coord| coord.dispatch_trace())
            .collect()
    }

    /// One instance's dispatch decisions, in order of occurrence.
    pub fn dispatch_trace_of(&self, instance: &str) -> Vec<crate::coordinator::DispatchRecord> {
        self.coord_for(instance)
            .dispatch_trace()
            .into_iter()
            .filter(|record| record.instance == instance)
            .collect()
    }

    /// Total coordinator log size in bytes (all shards).
    pub fn log_size(&self) -> u64 {
        self.coords.iter().map(CoordHandle::log_size).sum()
    }

    /// Uid prefix scans served by every shard's store (regression
    /// guard: normal runs perform none).
    pub fn store_prefix_scans(&self) -> u64 {
        self.coords
            .iter()
            .map(CoordHandle::store_prefix_scans)
            .sum()
    }

    /// Fact range scans served by every shard's store (regression
    /// guard: per-object readiness probes are point reads, so a clean
    /// run performs none — only repeats, cancellations, recovery and
    /// reconfiguration legitimately scan).
    pub fn store_fact_range_scans(&self) -> u64 {
        self.coords
            .iter()
            .map(CoordHandle::store_fact_range_scans)
            .sum()
    }

    /// Fingerprints of the compiled-plan blobs persisted on one shard
    /// (`sys/plan/…`) — observability for checkpoint-time plan GC.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn persisted_plans(&self, shard: usize) -> Vec<u64> {
        self.coords[shard].persisted_plan_fingerprints()
    }

    /// Corrupts one published output fact in place (fault injection for
    /// the corrupt-record tests).
    #[doc(hidden)]
    pub fn poison_fact(&self, instance: &str, path: &str, output: &str) -> bool {
        self.coord_for(instance).poison_fact(instance, path, output)
    }

    /// Sends a forged `Mark` message for `instance` *via* shard `via`
    /// (possibly not the owner) — test hook for the cross-shard
    /// forwarding path of one-way messages.
    ///
    /// # Panics
    ///
    /// Panics if `via` is out of range.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn send_mark_via_shard<I, K>(
        &mut self,
        via: usize,
        instance: &str,
        path: &str,
        incarnation: u32,
        attempt: u32,
        mark: &str,
        objects: I,
    ) where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        let msg = EngineMsg::Mark(crate::msg::MarkMsg {
            instance: instance.to_string(),
            path: path.to_string(),
            incarnation,
            attempt,
            mark: mark.to_string(),
            objects: objects.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            epoch: self.shard.epoch(),
        });
        let target = self.coord_nodes[via];
        self.world
            .send(self.client, target, flowscript_codec::to_bytes(&msg));
    }

    /// One shard's current view of the executor fleet: per-executor
    /// location label and in-flight dispatch count. Load views are per
    /// shard (each coordinator schedules over the shared fleet with
    /// its own counters).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn executor_loads(&self, shard: usize) -> Vec<crate::sched::ExecutorSlot> {
        self.coords[shard].executor_loads()
    }

    /// The simulation trace (network/scheduler events of the simulated
    /// world — for the engine-level lifecycle trace of one instance see
    /// [`WorkflowSystem::trace`]).
    pub fn sim_trace(&self) -> &flowscript_sim::Trace {
        self.world.trace()
    }

    /// One instance's full lifecycle from the flight recorders: every
    /// shard's events for `instance` (the owner's, plus any relay's
    /// `forward` events), merged in virtual-time order. Empty unless
    /// the system runs with [`ObserveLevel::Trace`].
    ///
    /// The recorders survive coordinator crash-recovery (they model an
    /// external telemetry sink), so the trace spans crashes: the
    /// pre-crash events stay, a `recovery` event marks the reload, and
    /// post-recovery re-dispatches follow.
    pub fn trace(&self, instance: &str) -> Vec<ObsEvent> {
        let mut events: Vec<ObsEvent> = self
            .all_coords()
            .flat_map(|coord| coord.recorder().events_for(instance))
            .collect();
        events.sort_by_key(|event| (event.at_ns, event.shard, event.seq));
        events
    }

    /// A point-in-time metrics snapshot, merged over every shard's
    /// registry: counters and gauges sum, histograms merge bucket-wise.
    /// Exportable as JSON ([`Snapshot::to_json`]) or CSV
    /// ([`Snapshot::to_csv`]).
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for coord in self.all_coords() {
            merged.merge(&coord.registry().snapshot());
        }
        merged
    }

    /// One shard's metric registry (single-shard introspection; for the
    /// aggregate view use [`WorkflowSystem::metrics_snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_registry(&self, shard: usize) -> Registry {
        self.coords[shard].registry()
    }

    /// Administrative fact repair on the owning shard: re-publishes
    /// `output` of `path` with `objects` (replacing corrupt bytes),
    /// force-completing the task if `output` is a terminal outcome it
    /// never reached, and revives the instance from
    /// `Stuck{fact storage fault}`. See [`CoordHandle::repair_fact`].
    ///
    /// # Errors
    ///
    /// Unknown instance/task, an undeclared output name, or a failed
    /// commit.
    pub fn repair_fact<I, K>(
        &mut self,
        instance: &str,
        path: &str,
        output: &str,
        objects: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        let objects: BTreeMap<String, ObjectVal> =
            objects.into_iter().map(|(k, v)| (k.into(), v)).collect();
        let coord = self.coord_for(instance).clone();
        coord.repair_fact(&mut self.world, instance, path, output, objects)
    }

    // -----------------------------------------------------------------
    // Dynamic reconfiguration.
    // -----------------------------------------------------------------

    /// Applies a reconfiguration to a running instance atomically (on
    /// the owning shard).
    ///
    /// # Errors
    ///
    /// Validation failures leave the instance untouched.
    pub fn reconfigure(&mut self, instance: &str, op: Reconfig) -> Result<(), EngineError> {
        let coord = self.coord_for(instance).clone();
        coord.reconfigure(&mut self.world, instance, op)
    }

    /// Aborts a *waiting* task with one of its declared abort outcomes
    /// (the paper's user-forced abort from the wait state, Fig. 3).
    ///
    /// # Errors
    ///
    /// Unknown instance/task, non-waiting task, or undeclared outcome.
    pub fn abort_waiting_task(
        &mut self,
        instance: &str,
        path: &str,
        outcome: &str,
    ) -> Result<(), EngineError> {
        let coord = self.coord_for(instance).clone();
        coord.abort_waiting_task(&mut self.world, instance, path, outcome)
    }

    /// Starts an instance of a *specific version* of a repository script.
    ///
    /// # Errors
    ///
    /// As for [`WorkflowSystem::start_with`], plus unknown versions.
    pub fn start_version<I, K>(
        &mut self,
        instance: &str,
        script: &str,
        version: u32,
        set: &str,
        inputs: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = (K, ObjectVal)>,
        K: Into<String>,
    {
        let msg = self.start_msg(instance, script, Some(version), set, inputs);
        let target = self.shard.node_of(instance);
        self.rpc_start(target, &msg)
    }

    // -----------------------------------------------------------------
    // Fault injection and sharding topology.
    // -----------------------------------------------------------------

    /// The first coordinator node's id (shard 0; the whole service for
    /// single-coordinator systems).
    pub fn coordinator_node(&self) -> NodeId {
        self.coord_nodes[0]
    }

    /// Every coordinator node, in shard order.
    pub fn coordinator_nodes(&self) -> &[NodeId] {
        &self.coord_nodes
    }

    /// The coordinator node owning `instance`.
    pub fn coordinator_node_for(&self, instance: &str) -> NodeId {
        self.shard.node_of(instance)
    }

    /// The shard index owning `instance`.
    pub fn shard_of(&self, instance: &str) -> usize {
        self.shard.shard_of(instance)
    }

    /// Number of coordinator shards.
    pub fn shard_count(&self) -> usize {
        self.coords.len()
    }

    /// The instance → coordinator assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard
    }

    /// Executor node ids.
    pub fn executor_nodes(&self) -> &[NodeId] {
        &self.executors
    }

    /// Adds a fresh coordinator node named `name` to the execution
    /// service **live**: the node is created with its own stable
    /// storage, installed with the epoch-bumped shard map, and every
    /// instance the new map assigns to it is moved in by
    /// [`WorkflowSystem::rebalance`] — running instances included.
    /// Returns the rebalance report (per-instance pause times).
    ///
    /// # Errors
    ///
    /// Storage failures opening the new shard or moving an instance.
    pub fn add_coordinator(&mut self, name: &str) -> Result<RebalanceReport, EngineError> {
        let node = self.world.add_node(name);
        let idx = self.coords.len();
        let storage = if let Some(dir) = &self.wal_dir {
            std::fs::create_dir_all(dir).map_err(|e| EngineError::Tx(format!("wal dir: {e}")))?;
            let path = dir.join(format!("shard{idx}.wal"));
            StableStore::File(
                SharedFileStorage::create(&path)
                    .map_err(|e| EngineError::Tx(format!("wal file: {e}")))?,
            )
        } else {
            StableStore::default()
        };
        let mut new_map = self.shard.clone();
        new_map.add_node(node);
        // The new shard starts life on the bumped epoch; the surviving
        // shards keep the old map until the moves commit (dual-delivery
        // window), then flip in `rebalance`.
        let coordinator = Coordinator::open_sharded(
            node,
            self.repo_node,
            self.executor_specs.clone(),
            self.config.clone(),
            storage.clone(),
            new_map.clone(),
        )?;
        let coord = CoordHandle::new(coordinator);
        coord.install(&mut self.world);
        self.coords.push(coord);
        self.coord_nodes.push(node);
        self.storages.push(storage);
        self.rebalance(new_map)
    }

    /// Moves the system to `new_map` live: every resident instance
    /// whose owner changes is handed off to its new shard as one
    /// batched 2PC (collect → prepare → commit → adopt), one instance
    /// at a time; only after every move commits does each coordinator
    /// (and the client router) flip to the new map. During the window,
    /// executor replies for moved instances keep landing on the old
    /// owner and are relayed — no report is lost or applied twice.
    ///
    /// Moves run sequentially by design: a destination's instance-id
    /// allocation reads committed state, so concurrent prepares into
    /// one shard would collide.
    ///
    /// # Errors
    ///
    /// A map naming a coordinator this system does not run, or a
    /// storage failure mid-move. A destination that fails to prepare
    /// aborts that move durably; the instance stays where it was.
    pub fn rebalance(&mut self, new_map: ShardMap) -> Result<RebalanceReport, EngineError> {
        // Work out every move up front, against residency (not the old
        // map): a crash-recovered shard may hold instances the old map
        // would misattribute.
        let mut moves: Vec<(usize, String, NodeId)> = Vec::new();
        for (idx, coord) in self.coords.iter().enumerate() {
            for instance in coord.instance_names() {
                let owner = new_map.node_of(&instance);
                if owner != self.coord_nodes[idx] {
                    moves.push((idx, instance, owner));
                }
            }
        }
        let mut pause_ns = Vec::with_capacity(moves.len());
        for (src_idx, instance, dest_node) in moves {
            let dest_idx = self
                .coord_nodes
                .iter()
                .position(|&n| n == dest_node)
                .ok_or_else(|| {
                    EngineError::Tx(format!(
                        "shard map assigns `{instance}` to {dest_node}, which runs no coordinator"
                    ))
                })?;
            let src = self.coords[src_idx].clone();
            let dest = self.coords[dest_idx].clone();
            let clock = std::time::Instant::now();
            let package = src.handoff_collect(&mut self.world, &instance, dest_node)?;
            let tx = package.tx;
            match dest.handoff_prepare(&package) {
                Ok(()) => {
                    src.handoff_commit(&mut self.world, &instance, tx, dest_node)?;
                    dest.handoff_apply(&mut self.world, tx, true)?;
                }
                Err(err) => {
                    src.handoff_abort(&instance, tx, dest_node)?;
                    return Err(err);
                }
            }
            let ns = clock.elapsed().as_nanos() as u64;
            src.note_handoff_pause(ns);
            pause_ns.push(ns);
        }
        // The flip: everyone adopts the new map at its bumped epoch.
        for coord in &self.coords {
            coord.set_shard_map(new_map.clone());
        }
        self.shard = new_map;
        Ok(RebalanceReport {
            moved: pause_ns.len(),
            pause_ns,
            epoch: self.shard.epoch(),
        })
    }

    /// Resolves a coordinator by node name to `(index, node)`.
    fn coord_by_name(&self, name: &str) -> Result<(usize, NodeId), EngineError> {
        self.coord_nodes
            .iter()
            .position(|&n| self.world.node_name(n) == name)
            .map(|idx| (idx, self.coord_nodes[idx]))
            .ok_or_else(|| EngineError::Tx(format!("no coordinator named `{name}`")))
    }

    /// Fires the armed chaos kill if `point` in round `round` is its
    /// strike point: crashes `victim` and surfaces the kill as an
    /// error so the driver stops exactly where a real crash would have
    /// stopped it.
    fn chaos_strike(
        &mut self,
        point: KillPoint,
        round: usize,
        victim: NodeId,
    ) -> Result<(), EngineError> {
        if let Some(kill) = self.chaos {
            if kill.point == point && kill.round == round {
                self.chaos = None;
                self.world.crash(victim);
                return Err(EngineError::Tx(format!(
                    "chaos: killed node at {point:?} (round {round})"
                )));
            }
        }
        Ok(())
    }

    /// Arms a one-shot kill inside the next drain or adoption: the
    /// victim node crashes at `point` in batch round `round` (for
    /// [`KillPoint::MidClaim`], after `round` instances were claimed)
    /// and the driving call returns an error mid-protocol — exactly
    /// the strand a real crash would leave. The chaos tests then
    /// restart/re-run and assert convergence with zero lost outcomes.
    #[doc(hidden)]
    pub fn arm_chaos_kill(&mut self, point: KillPoint, round: usize) {
        self.chaos = Some(ChaosKill { point, round });
    }

    /// Retires shard `idx` from the fleet: survivors (and the client
    /// router) flip to `new_map`, while the retired coordinator stays
    /// installed as a pure relay on the same map — its relay table
    /// re-pointed off departed nodes — so late executor reports for
    /// its former instances forward straight to the adopter.
    fn retire_coordinator(&mut self, idx: usize, new_map: &ShardMap) {
        let node = self.coord_nodes.remove(idx);
        let coord = self.coords.remove(idx);
        self.storages.remove(idx);
        coord.set_shard_map_relay(new_map.clone());
        for survivor in &self.coords {
            survivor.set_shard_map(new_map.clone());
        }
        self.shard = new_map.clone();
        self.retired.push((node, coord));
    }

    /// Drains and removes coordinator `name` from the execution
    /// service **live**: the departing shard's entire resident
    /// population moves to the surviving shards *before* the node
    /// leaves the map — [`WorkflowSystem::rebalance`] in reverse,
    /// upgraded to move up to [`DRAIN_BATCH`] instances per 2PC round
    /// (one intent batch, one prepared stage with a contiguous
    /// destination id range, one atomic decision frame). The drained
    /// node is then retired: it stays installed as a relay for late
    /// executor reports but owns nothing and serves nothing.
    ///
    /// # Errors
    ///
    /// Unknown name, draining the last shard, a storage failure
    /// mid-move (a destination that fails to prepare aborts its whole
    /// batch durably; the instances stay where they were), or an armed
    /// chaos kill striking mid-drain.
    pub fn remove_coordinator(&mut self, name: &str) -> Result<DrainReport, EngineError> {
        let (idx, node) = self.coord_by_name(name)?;
        if self.coords.len() == 1 {
            return Err(EngineError::Tx(
                "cannot drain the last coordinator".to_string(),
            ));
        }
        let mut new_map = self.shard.clone();
        new_map.remove_node(node);
        let src = self.coords[idx].clone();
        let names = src.instance_names();
        src.record_system_event(
            self.world.now().as_nanos(),
            name,
            ObsEventKind::DrainBegin {
                remaining: names.len() as u64,
            },
        );
        // Group the departing population by destination under the new
        // map, then move each group in bounded batches — one 2PC round
        // per batch.
        let mut by_dest: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for instance in names {
            let owner = new_map.node_of(&instance);
            let dest_idx = self
                .coord_nodes
                .iter()
                .position(|&n| n == owner)
                .ok_or_else(|| {
                    EngineError::Tx(format!(
                        "shard map assigns `{instance}` to {owner}, which runs no coordinator"
                    ))
                })?;
            by_dest.entry(dest_idx).or_default().push(instance);
        }
        let mut moved = 0usize;
        let mut rounds = 0usize;
        let mut pause_ns = Vec::new();
        for (dest_idx, instances) in by_dest {
            let dest = self.coords[dest_idx].clone();
            let dest_node = self.coord_nodes[dest_idx];
            for chunk in instances.chunks(DRAIN_BATCH) {
                self.chaos_strike(KillPoint::BeforeBegin, rounds, node)?;
                let clock = std::time::Instant::now();
                let packages = src.handoff_collect_batch(&mut self.world, chunk, dest_node)?;
                self.chaos_strike(KillPoint::AfterBegin, rounds, node)?;
                let tx = packages[0].tx;
                match dest.handoff_prepare_batch(&packages) {
                    Ok(()) => {
                        self.chaos_strike(KillPoint::AfterPrepare, rounds, node)?;
                        src.handoff_commit_batch(&mut self.world, chunk, tx, dest_node)?;
                        self.chaos_strike(KillPoint::AfterDecision, rounds, node)?;
                        dest.handoff_apply(&mut self.world, tx, true)?;
                    }
                    Err(err) => {
                        for instance in chunk {
                            src.handoff_abort(instance, tx, dest_node)?;
                        }
                        return Err(err);
                    }
                }
                let ns = clock.elapsed().as_nanos() as u64;
                src.note_drain_pause(ns);
                pause_ns.push(ns);
                moved += chunk.len();
                rounds += 1;
            }
        }
        src.record_system_event(
            self.world.now().as_nanos(),
            name,
            ObsEventKind::DrainEnd {
                moved: moved as u64,
                rounds: rounds as u64,
            },
        );
        self.retire_coordinator(idx, &new_map);
        Ok(DrainReport {
            moved,
            rounds,
            pause_ns,
            epoch: self.shard.epoch(),
        })
    }

    /// Adopts a dead shard's instances **without waiting for the node
    /// to come back**: the failover half of the elastic fleet. The
    /// first surviving shard durably fences the dead shard's log
    /// (epoch-stamped claim — a zombie waking mid-adoption fails its
    /// next append instead of double-driving instances), then every
    /// committed instance is read out of the surviving storage,
    /// re-keyed and committed on its new owner per the epoch-bumped
    /// map, and adopted through the same orphan-adoption path a
    /// committed hand-off lands on. Idempotent end to end: a driver
    /// that died mid-claim (see [`KillPoint::MidClaim`]) just runs it
    /// again — already-claimed instances are skipped.
    ///
    /// Deliberately does NOT require the node to be down: adopting a
    /// *live* shard is the false-positive failure-detection scenario,
    /// and the fence is what keeps it safe.
    ///
    /// # Errors
    ///
    /// Unknown name, adopting the last shard, a foreign fence (another
    /// claimant got there first), storage failures, or an armed chaos
    /// kill striking mid-claim.
    pub fn adopt_dead_shard(&mut self, name: &str) -> Result<FailoverReport, EngineError> {
        let (idx, node) = self.coord_by_name(name)?;
        if self.coords.len() == 1 {
            return Err(EngineError::Tx(
                "cannot fail over the last coordinator".to_string(),
            ));
        }
        let mut new_map = self.shard.clone();
        new_map.remove_node(node);
        let epoch = new_map.epoch();
        let claimant_idx = if idx == 0 { 1 } else { 0 };
        let claimant_node = self.coord_nodes[claimant_idx];
        // The fenced claim: reopen the dead shard's surviving storage
        // under the claimant's identity and stamp the fence. From this
        // append on, the dead shard's own manager can never commit
        // again — the claimed copies are the truth.
        let mut mgr = TxManager::open(claimant_node.index() as u32, self.storages[idx].clone())?;
        mgr.write_fence(epoch)?;
        let metas = mgr.uids_matching("inst/", "/meta");
        let mut adopted = 0usize;
        for uid in metas {
            let instance = uid
                .as_str()
                .trim_start_matches("inst/")
                .trim_end_matches("/meta")
                .to_string();
            let owner = new_map.node_of(&instance);
            let dest_idx = self
                .coord_nodes
                .iter()
                .position(|&n| n == owner)
                .ok_or_else(|| {
                    EngineError::Tx(format!(
                        "shard map assigns `{instance}` to {owner}, which runs no coordinator"
                    ))
                })?;
            let tx = mgr.mint_dist_tx();
            let Some(package) = package_stored_instance(&mgr, &instance, tx, node.index() as u32)
            else {
                continue;
            };
            self.chaos_strike(KillPoint::MidClaim, adopted, node)?;
            let dest = self.coords[dest_idx].clone();
            if dest.claim_adopt(&mut self.world, &package, epoch)? {
                adopted += 1;
            }
        }
        // Adoption sweep on every survivor — a no-op on shards with no
        // claims, and on a re-run it also catches instances a dying
        // earlier attempt claimed but never swept. The dead shard is
        // skipped: its storage is fenced now.
        for (coord_idx, coord) in self.coords.clone().into_iter().enumerate() {
            if coord_idx != idx {
                coord.adopt_claimed(&mut self.world, node.index() as u32, epoch);
            }
        }
        self.retire_coordinator(idx, &new_map);
        Ok(FailoverReport {
            adopted,
            epoch,
            claimant: claimant_node.index() as u32,
        })
    }

    /// Overrides one coordinator's shard map *without* moving anything —
    /// deliberately desynchronizing routing. Test hook for the
    /// forwarding loop guard; real rebalances flip maps only after the
    /// moves commit.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[doc(hidden)]
    pub fn skew_shard_map(&mut self, shard: usize, map: ShardMap) {
        self.coords[shard].set_shard_map(map);
    }

    /// Direct handle on one coordinator shard — test hook for driving
    /// the hand-off protocol step by step (crash-between-steps
    /// scenarios the synchronous [`WorkflowSystem::rebalance`] driver
    /// can never produce).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[doc(hidden)]
    pub fn coord_handle(&self, shard: usize) -> CoordHandle {
        self.coords[shard].clone()
    }

    /// Schedules a fault plan.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        plan.apply(&mut self.world);
    }

    /// Crashes a node immediately.
    pub fn crash_now(&mut self, node: NodeId) {
        self.world.crash(node);
    }

    /// Restarts a node immediately (a coordinator runs shard recovery).
    pub fn restart_now(&mut self, node: NodeId) {
        self.world.restart(node);
    }

    /// Direct world access for advanced scenarios.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Shard 0's stable storage (the whole system's for
    /// single-coordinator builds; survives restarts).
    pub fn storage(&self) -> StableStore {
        self.storages[0].clone()
    }

    /// Every shard's stable storage, in shard order (rebuild a sharded
    /// system over its surviving disks via
    /// [`SystemBuilder::shard_storages`]).
    pub fn shard_storages(&self) -> Vec<StableStore> {
        self.storages.clone()
    }
}

impl std::fmt::Debug for WorkflowSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowSystem")
            .field("now", &self.world.now())
            .field("coordinators", &self.coords.len())
            .field("executors", &self.executors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::samples;

    fn text(class: &str, value: &str) -> ObjectVal {
        ObjectVal::text(class, value)
    }

    #[test]
    fn quickstart_pipeline_completes() {
        let mut sys = WorkflowSystem::builder().executors(2).seed(1).build();
        sys.register_script("q", samples::QUICKSTART, "pipeline")
            .unwrap();
        sys.bind_fn("refProduce", |ctx| {
            TaskBehavior::outcome("produced").with_object(
                "message",
                ObjectVal::text("Message", format!("{}-made", ctx.input_text("seed"))),
            )
        });
        sys.bind_fn("refConsume", |ctx| {
            TaskBehavior::outcome("consumed").with_object(
                "result",
                ObjectVal::text("Message", ctx.input_text("message")),
            )
        });
        sys.start("i1", "q", "main", [("seed", text("Message", "s"))])
            .unwrap();
        sys.run();
        let outcome = sys.outcome("i1").expect("completed");
        assert_eq!(outcome.name, "done");
        assert_eq!(outcome.objects["result"].as_text(), "s-made");
        let states = sys.task_states("i1");
        assert!(matches!(states["pipeline/produce"], CbState::Done { .. }));
    }

    #[test]
    fn quickstart_completes_on_every_shard_count() {
        for coordinators in [1usize, 2, 4, 8] {
            let mut sys = WorkflowSystem::builder()
                .executors(2)
                .coordinators(coordinators)
                .seed(1)
                .build();
            assert_eq!(sys.shard_count(), coordinators);
            assert_eq!(sys.coordinator_nodes().len(), coordinators);
            sys.register_script("q", samples::QUICKSTART, "pipeline")
                .unwrap();
            sys.bind_fn("refProduce", |_| {
                TaskBehavior::outcome("produced")
                    .with_object("message", ObjectVal::text("Message", "m"))
            });
            sys.bind_fn("refConsume", |_| {
                TaskBehavior::outcome("consumed")
                    .with_object("result", ObjectVal::text("Message", "r"))
            });
            for i in 0..6 {
                let name = format!("i{i}");
                sys.start(&name, "q", "main", [("seed", text("Message", "s"))])
                    .unwrap();
                assert!(sys.shard_of(&name) < coordinators);
            }
            sys.run();
            for i in 0..6 {
                assert_eq!(
                    sys.outcome(&format!("i{i}")).expect("completed").name,
                    "done"
                );
            }
        }
    }

    #[test]
    fn unknown_script_rejected() {
        let mut sys = WorkflowSystem::builder().seed(2).build();
        let err = sys
            .start("i1", "ghost", "main", Vec::<(String, ObjectVal)>::new())
            .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut sys = WorkflowSystem::builder().seed(3).build();
        sys.register_script("q", samples::QUICKSTART, "pipeline")
            .unwrap();
        sys.bind_fn("refProduce", |_| TaskBehavior::outcome("produced"));
        sys.bind_fn("refConsume", |_| TaskBehavior::outcome("consumed"));
        sys.start("i1", "q", "main", [("seed", text("Message", "x"))])
            .unwrap();
        let err = sys
            .start("i1", "q", "main", [("seed", text("Message", "x"))])
            .unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }

    #[test]
    fn bad_inputs_rejected() {
        let mut sys = WorkflowSystem::builder().seed(4).build();
        sys.register_script("q", samples::QUICKSTART, "pipeline")
            .unwrap();
        // Missing object.
        let err = sys
            .start("i1", "q", "main", Vec::<(String, ObjectVal)>::new())
            .unwrap_err();
        assert!(err.to_string().contains("missing input object"), "{err}");
        // Wrong class.
        let err = sys
            .start("i2", "q", "main", [("seed", text("Wrong", "x"))])
            .unwrap_err();
        assert!(err.to_string().contains("expected `Message`"), "{err}");
        // Unknown set.
        let err = sys
            .start("i3", "q", "alt", [("seed", text("Message", "x"))])
            .unwrap_err();
        assert!(err.to_string().contains("no input set"), "{err}");
    }

    #[test]
    fn invalid_script_rejected_by_repository() {
        let mut sys = WorkflowSystem::builder().seed(5).build();
        let err = sys.register_script("bad", "task broken", "x").unwrap_err();
        assert!(matches!(err, EngineError::InvalidScript(_)));
    }

    #[test]
    fn unbound_implementation_leads_to_stuck() {
        let mut sys = WorkflowSystem::builder().seed(6).build();
        sys.register_script("q", samples::QUICKSTART, "pipeline")
            .unwrap();
        // Bind only the producer; the consumer has no implementation.
        sys.bind_fn("refProduce", |_| {
            TaskBehavior::outcome("produced")
                .with_object("message", ObjectVal::text("Message", "m"))
        });
        sys.start("i1", "q", "main", [("seed", text("Message", "x"))])
            .unwrap();
        sys.run();
        match sys.status("i1").unwrap() {
            InstanceStatus::Stuck { reason } => {
                assert!(reason.contains("consume"), "{reason}");
            }
            other => panic!("expected stuck, got {other:?}"),
        }
        assert!(sys.stats().failures >= 1);
        assert!(sys.stats().retries >= 1);
    }
}
