//! Run-time implementation binding.
//!
//! A script names its implementations abstractly (`"code" is
//! "refDispatch"`); the binding to executable behaviour happens at run
//! time through this registry — the paper's route to online upgrade
//! ("introducing online upgrade of an application without having to
//! change the corresponding workflow script"). Implementations are:
//!
//! - [`TaskImpl`] trait objects or plain closures ([`ImplRegistry::bind_fn`]),
//! - built-ins (`builtin:timer` reads `duration_ms` from the
//!   implementation clause — the paper's timer-input idiom),
//! - other *scripts*: §4.3 allows an implementation name to refer to a
//!   script; bind with [`ImplRegistry::bind_script`] and the executor
//!   runs a nested workflow synchronously in simulated time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use flowscript_sim::SimDuration;

use crate::value::ObjectVal;

/// Context handed to an implementation invocation.
#[derive(Debug)]
pub struct InvokeCtx {
    /// Task path within the instance.
    pub path: String,
    /// The enclosing scope's incarnation this execution belongs to
    /// (0 initially; a compound repeat resets its subtree into a new
    /// incarnation — pure-function implementations can key retry
    /// behaviour on it instead of hidden state).
    pub incarnation: u32,
    /// Dispatch attempt (0 for the first try; retries increment).
    pub attempt: u32,
    /// The bound input set's name.
    pub set: String,
    /// Bound input objects by slot name.
    pub inputs: BTreeMap<String, ObjectVal>,
    /// Objects from a previous repeat outcome of this task, if any.
    pub repeat_objects: BTreeMap<String, ObjectVal>,
    /// Implementation pairs from the script (deadline, priority, …).
    pub implementation: BTreeMap<String, String>,
}

impl InvokeCtx {
    /// The text payload of an input object (empty if missing).
    pub fn input_text(&self, name: &str) -> String {
        self.inputs
            .get(name)
            .map(ObjectVal::as_text)
            .unwrap_or_default()
    }

    /// An implementation pair's value.
    pub fn impl_value(&self, key: &str) -> Option<&str> {
        self.implementation.get(key).map(String::as_str)
    }

    /// The typed scheduling hints of the implementation clause
    /// (location, priority, duration, deadline) — one extraction
    /// instead of ad-hoc string parsing per consumer.
    pub fn hints(&self) -> crate::sched::ImplHints {
        crate::sched::ImplHints::from_map(&self.implementation)
    }
}

/// A mark emitted part-way through execution (early release, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct MarkEmission {
    /// Offset into the execution at which the mark appears.
    pub at: SimDuration,
    /// Mark output name.
    pub name: String,
    /// Objects released.
    pub objects: BTreeMap<String, ObjectVal>,
}

/// How an execution terminates.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The declared output name (outcome, abort outcome or repeat
    /// outcome of the task's class).
    pub outcome: String,
    /// Objects produced with it.
    pub objects: BTreeMap<String, ObjectVal>,
}

/// The full behaviour of one execution attempt: simulated work time,
/// marks along the way, and a terminal completion.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBehavior {
    /// Simulated execution time before the completion.
    pub work: SimDuration,
    /// Marks emitted during execution.
    pub marks: Vec<MarkEmission>,
    /// Terminal result.
    pub completion: Completion,
    /// Delay before re-execution when the completion is a repeat outcome.
    pub redo_after: SimDuration,
}

impl TaskBehavior {
    /// A behaviour terminating in `outcome` with no objects and default
    /// work time (1ms simulated).
    pub fn outcome(outcome: impl Into<String>) -> Self {
        Self {
            work: SimDuration::from_millis(1),
            marks: Vec::new(),
            completion: Completion {
                outcome: outcome.into(),
                objects: BTreeMap::new(),
            },
            redo_after: SimDuration::ZERO,
        }
    }

    /// Sets the delay before re-execution (repeat outcomes only).
    pub fn with_redo_after(mut self, delay: SimDuration) -> Self {
        self.redo_after = delay;
        self
    }

    /// Adds an output object to the completion.
    pub fn with_object(mut self, name: impl Into<String>, value: ObjectVal) -> Self {
        self.completion.objects.insert(name.into(), value);
        self
    }

    /// Sets the simulated work duration.
    pub fn with_work(mut self, work: SimDuration) -> Self {
        self.work = work;
        self
    }

    /// Adds a mark emitted at `at` into the execution.
    pub fn with_mark(
        mut self,
        at: SimDuration,
        name: impl Into<String>,
        objects: impl IntoIterator<Item = (&'static str, ObjectVal)>,
    ) -> Self {
        self.marks.push(MarkEmission {
            at,
            name: name.into(),
            objects: objects
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
        self
    }
}

/// A task implementation bound to a `code` name.
pub trait TaskImpl {
    /// Decides this attempt's behaviour. Called once per dispatch; the
    /// executor then plays the behaviour out in simulated time.
    fn invoke(&self, ctx: &InvokeCtx) -> TaskBehavior;
}

/// A bound implementation entry.
enum Binding {
    Program(Rc<dyn TaskImpl>),
    Script { source: String, root: String },
}

/// The registry mapping implementation names to behaviour.
///
/// Shared (via `Rc`) between the executor nodes — the paper's model of
/// identical service binaries deployed per node.
#[derive(Clone, Default)]
pub struct ImplRegistry {
    inner: Rc<RefCell<BTreeMap<String, Binding>>>,
}

impl ImplRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to a [`TaskImpl`].
    pub fn bind(&self, name: impl Into<String>, implementation: Rc<dyn TaskImpl>) {
        self.inner
            .borrow_mut()
            .insert(name.into(), Binding::Program(implementation));
    }

    /// Binds `name` to a closure.
    pub fn bind_fn<F>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(&InvokeCtx) -> TaskBehavior + 'static,
    {
        struct Closure<F>(F);
        impl<F: Fn(&InvokeCtx) -> TaskBehavior> TaskImpl for Closure<F> {
            fn invoke(&self, ctx: &InvokeCtx) -> TaskBehavior {
                (self.0)(ctx)
            }
        }
        self.bind(name, Rc::new(Closure(f)));
    }

    /// Binds `name` to a nested workflow script (§4.3: "the name of the
    /// implementation can refer to either the code itself (executable),
    /// or some script").
    pub fn bind_script(
        &self,
        name: impl Into<String>,
        source: impl Into<String>,
        root: impl Into<String>,
    ) {
        self.inner.borrow_mut().insert(
            name.into(),
            Binding::Script {
                source: source.into(),
                root: root.into(),
            },
        );
    }

    /// Removes a binding (service withdrawn), returning whether it
    /// existed.
    pub fn unbind(&self, name: &str) -> bool {
        self.inner.borrow_mut().remove(name).is_some()
    }

    /// Whether `name` is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.inner.borrow().contains_key(name) || name.starts_with("builtin:")
    }

    /// Resolves and invokes `name`, including built-ins.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the name is unbound or a built-in is
    /// misconfigured.
    pub fn invoke(&self, name: &str, ctx: &InvokeCtx) -> Result<Invocation, String> {
        if let Some(rest) = name.strip_prefix("builtin:") {
            return builtin(rest, ctx).map(Invocation::Behavior);
        }
        let inner = self.inner.borrow();
        match inner.get(name) {
            Some(Binding::Program(implementation)) => {
                Ok(Invocation::Behavior(implementation.invoke(ctx)))
            }
            Some(Binding::Script { source, root }) => Ok(Invocation::Script {
                source: source.clone(),
                root: root.clone(),
            }),
            None => Err(format!("no implementation bound for `{name}`")),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

impl std::fmt::Debug for ImplRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ImplRegistry({} bindings)", self.len())
    }
}

/// The result of resolving an implementation name.
#[derive(Debug)]
pub enum Invocation {
    /// Run this behaviour.
    Behavior(TaskBehavior),
    /// Run this script as a nested workflow.
    Script {
        /// Script source.
        source: String,
        /// Root compound name.
        root: String,
    },
}

/// Built-in implementations.
///
/// - `builtin:timer`: waits `duration_ms` (from the implementation
///   clause) and terminates in outcome `fired` — the paper's §4.2 idiom
///   of an exceptional input set with a timer.
/// - `builtin:emit:<outcome>`: terminates immediately in `<outcome>`,
///   echoing its inputs as outputs (handy glue in tests/benches).
fn builtin(name: &str, ctx: &InvokeCtx) -> Result<TaskBehavior, String> {
    if name == "timer" {
        if ctx.impl_value("duration_ms").is_none() {
            return Err("builtin:timer needs a duration_ms implementation pair".to_string());
        }
        let millis = ctx
            .hints()
            .duration_ms
            .ok_or_else(|| "builtin:timer duration_ms must be an integer".to_string())?;
        return Ok(TaskBehavior::outcome("fired").with_work(SimDuration::from_millis(millis)));
    }
    if let Some(outcome) = name.strip_prefix("emit:") {
        let mut behavior = TaskBehavior::outcome(outcome);
        for (slot, value) in &ctx.inputs {
            behavior = behavior.with_object(slot.clone(), value.clone());
        }
        return Ok(behavior);
    }
    Err(format!("unknown builtin `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> InvokeCtx {
        InvokeCtx {
            path: "root/t".into(),
            incarnation: 0,
            attempt: 0,
            set: "main".into(),
            inputs: BTreeMap::from([("x".to_string(), ObjectVal::text("C", "v"))]),
            repeat_objects: BTreeMap::new(),
            implementation: BTreeMap::from([("duration_ms".to_string(), "250".to_string())]),
        }
    }

    #[test]
    fn closure_binding_invokes() {
        let registry = ImplRegistry::new();
        registry.bind_fn("ref", |ctx: &InvokeCtx| {
            TaskBehavior::outcome("done")
                .with_object("y", ObjectVal::text("C", ctx.input_text("x")))
        });
        let Invocation::Behavior(behavior) = registry.invoke("ref", &ctx()).unwrap() else {
            panic!("expected behaviour");
        };
        assert_eq!(behavior.completion.outcome, "done");
        assert_eq!(behavior.completion.objects["y"].as_text(), "v");
    }

    #[test]
    fn unbound_name_is_error() {
        let registry = ImplRegistry::new();
        let err = registry.invoke("ghost", &ctx()).unwrap_err();
        assert!(err.contains("ghost"));
        assert!(!registry.is_bound("ghost"));
    }

    #[test]
    fn rebinding_replaces() {
        let registry = ImplRegistry::new();
        registry.bind_fn("ref", |_: &InvokeCtx| TaskBehavior::outcome("v1"));
        registry.bind_fn("ref", |_: &InvokeCtx| TaskBehavior::outcome("v2"));
        let Invocation::Behavior(behavior) = registry.invoke("ref", &ctx()).unwrap() else {
            panic!();
        };
        assert_eq!(behavior.completion.outcome, "v2");
        assert_eq!(registry.len(), 1);
        assert!(registry.unbind("ref"));
        assert!(registry.is_empty());
    }

    #[test]
    fn builtin_timer_reads_duration() {
        let registry = ImplRegistry::new();
        assert!(registry.is_bound("builtin:timer"));
        let Invocation::Behavior(behavior) = registry.invoke("builtin:timer", &ctx()).unwrap()
        else {
            panic!();
        };
        assert_eq!(behavior.work, SimDuration::from_millis(250));
        assert_eq!(behavior.completion.outcome, "fired");
    }

    #[test]
    fn builtin_timer_without_duration_errors() {
        let registry = ImplRegistry::new();
        let mut c = ctx();
        c.implementation.clear();
        assert!(registry.invoke("builtin:timer", &c).is_err());
    }

    #[test]
    fn builtin_emit_echoes_inputs() {
        let registry = ImplRegistry::new();
        let Invocation::Behavior(behavior) = registry.invoke("builtin:emit:ok", &ctx()).unwrap()
        else {
            panic!();
        };
        assert_eq!(behavior.completion.outcome, "ok");
        assert_eq!(behavior.completion.objects["x"].as_text(), "v");
    }

    #[test]
    fn unknown_builtin_is_error() {
        let registry = ImplRegistry::new();
        assert!(registry.invoke("builtin:frobnicate", &ctx()).is_err());
    }

    #[test]
    fn script_binding_resolves() {
        let registry = ImplRegistry::new();
        registry.bind_script("nested", "class C;", "root");
        match registry.invoke("nested", &ctx()).unwrap() {
            Invocation::Script { source, root } => {
                assert_eq!(source, "class C;");
                assert_eq!(root, "root");
            }
            other => panic!("expected script, got {other:?}"),
        }
    }

    #[test]
    fn behavior_builder_composes() {
        let behavior = TaskBehavior::outcome("done")
            .with_work(SimDuration::from_secs(1))
            .with_mark(
                SimDuration::from_millis(100),
                "progress",
                [("cost", ObjectVal::text("Cost", "12"))],
            )
            .with_object("out", ObjectVal::text("C", "x"));
        assert_eq!(behavior.marks.len(), 1);
        assert_eq!(behavior.marks[0].objects["cost"].as_text(), "12");
        assert_eq!(behavior.work, SimDuration::from_secs(1));
    }
}
