use std::fmt;

/// Errors surfaced by the workflow engine's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A script failed to parse/check/compile; the message carries the
    /// rendered diagnostics.
    InvalidScript(String),
    /// The named script (or version) is not in the repository.
    UnknownScript(String),
    /// The named instance does not exist.
    UnknownInstance(String),
    /// An instance with this name already exists.
    DuplicateInstance(String),
    /// The operation refers to a task path that does not exist.
    UnknownTask(String),
    /// A reconfiguration was rejected (validation failure).
    ReconfigRejected(String),
    /// The named input set does not exist on the root task class, or the
    /// supplied objects do not match it.
    BadInputs(String),
    /// The owning shard is at its admission cap and its admission
    /// queue is full; the start was not accepted and may be retried
    /// with backoff. Carries the queue depth at rejection time.
    Busy {
        /// Admission-queue depth when the start was turned away.
        queue_depth: u32,
    },
    /// The transactional substrate failed.
    Tx(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidScript(msg) => write!(f, "invalid script: {msg}"),
            EngineError::UnknownScript(name) => write!(f, "unknown script `{name}`"),
            EngineError::UnknownInstance(name) => write!(f, "unknown instance `{name}`"),
            EngineError::DuplicateInstance(name) => {
                write!(f, "instance `{name}` already exists")
            }
            EngineError::UnknownTask(path) => write!(f, "unknown task `{path}`"),
            EngineError::ReconfigRejected(msg) => write!(f, "reconfiguration rejected: {msg}"),
            EngineError::BadInputs(msg) => write!(f, "bad instance inputs: {msg}"),
            EngineError::Busy { queue_depth } => write!(
                f,
                "shard at admission capacity ({queue_depth} starts queued); retry with backoff"
            ),
            EngineError::Tx(msg) => write!(f, "transactional failure: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<flowscript_tx::TxError> for EngineError {
    fn from(err: flowscript_tx::TxError) -> Self {
        EngineError::Tx(err.to_string())
    }
}

impl From<flowscript_core::Diagnostics> for EngineError {
    fn from(diags: flowscript_core::Diagnostics) -> Self {
        EngineError::InvalidScript(diags.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(EngineError::UnknownScript("s".into())
            .to_string()
            .contains("`s`"));
        assert!(EngineError::ReconfigRejected("nope".into())
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn conversions_carry_messages() {
        let tx_err: EngineError = flowscript_tx::TxError::Storage("disk".into()).into();
        assert!(tx_err.to_string().contains("disk"));
    }
}
