//! Dynamic reconfiguration of running instances (paper §2/§3).
//!
//! The paper requires that "the structure of a running application
//! \[can be changed\] by adding/deleting tasks, notifications and
//! dependencies", carried out under atomic transactions. A [`Reconfig`]
//! value describes one such change; [`apply`] validates it against the
//! instance's schema and mutates the schema, reporting which control
//! blocks the engine must create or delete. The coordinator persists the
//! op (for recovery replay) and the control-block changes in a single
//! atomic action.

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use flowscript_core::schema::{
    compile_task_fragment, CompiledCond, CompiledNotification, CompiledScope, CompiledSource,
    Schema, TaskBody,
};
use flowscript_core::{ast::OutputKind, parse_task_decl};

use crate::error::EngineError;

/// One structural change to a running instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reconfig {
    /// Add a task (given as script text, `task t of taskclass T {…}`)
    /// to the scope at `scope_path`.
    AddTask {
        /// Path of the compound scope receiving the task.
        scope_path: String,
        /// The task declaration source.
        task_source: String,
    },
    /// Remove the task at `task_path`. Rejected if any sibling or output
    /// mapping would lose its *only* source.
    RemoveTask {
        /// Full path of the task to remove.
        task_path: String,
    },
    /// Append a notification dependency `producer if output outcome` to
    /// an input set of a task.
    AddNotification {
        /// Consumer task path.
        task_path: String,
        /// Input set name.
        set: String,
        /// Producing sibling task name.
        producer: String,
        /// Outcome to wait for.
        outcome: String,
    },
    /// Append an alternative source to an input object slot (redundant
    /// data sources — the paper's application-level fault tolerance).
    AddObjectSource {
        /// Consumer task path.
        task_path: String,
        /// Input set name.
        set: String,
        /// Input object slot.
        object: String,
        /// Producing sibling task name.
        producer: String,
        /// Object name at the producer.
        producer_object: String,
        /// Producer outcome carrying the object.
        outcome: String,
    },
    /// Remove every source drawing from `producer` in one object slot.
    RemoveObjectSource {
        /// Consumer task path.
        task_path: String,
        /// Input set name.
        set: String,
        /// Input object slot.
        object: String,
        /// Producer whose alternatives are removed.
        producer: String,
    },
    /// Rebind an implementation name for this instance (online upgrade).
    Rebind {
        /// The script's implementation name.
        code: String,
        /// The replacement implementation name.
        to: String,
    },
}

impl Encode for Reconfig {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Reconfig::AddTask {
                scope_path,
                task_source,
            } => {
                w.put_u8(0);
                w.put_str(scope_path);
                w.put_str(task_source);
            }
            Reconfig::RemoveTask { task_path } => {
                w.put_u8(1);
                w.put_str(task_path);
            }
            Reconfig::AddNotification {
                task_path,
                set,
                producer,
                outcome,
            } => {
                w.put_u8(2);
                w.put_str(task_path);
                w.put_str(set);
                w.put_str(producer);
                w.put_str(outcome);
            }
            Reconfig::AddObjectSource {
                task_path,
                set,
                object,
                producer,
                producer_object,
                outcome,
            } => {
                w.put_u8(3);
                w.put_str(task_path);
                w.put_str(set);
                w.put_str(object);
                w.put_str(producer);
                w.put_str(producer_object);
                w.put_str(outcome);
            }
            Reconfig::RemoveObjectSource {
                task_path,
                set,
                object,
                producer,
            } => {
                w.put_u8(4);
                w.put_str(task_path);
                w.put_str(set);
                w.put_str(object);
                w.put_str(producer);
            }
            Reconfig::Rebind { code, to } => {
                w.put_u8(5);
                w.put_str(code);
                w.put_str(to);
            }
        }
    }
}

impl Decode for Reconfig {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => Reconfig::AddTask {
                scope_path: r.get_str()?.to_owned(),
                task_source: r.get_str()?.to_owned(),
            },
            1 => Reconfig::RemoveTask {
                task_path: r.get_str()?.to_owned(),
            },
            2 => Reconfig::AddNotification {
                task_path: r.get_str()?.to_owned(),
                set: r.get_str()?.to_owned(),
                producer: r.get_str()?.to_owned(),
                outcome: r.get_str()?.to_owned(),
            },
            3 => Reconfig::AddObjectSource {
                task_path: r.get_str()?.to_owned(),
                set: r.get_str()?.to_owned(),
                object: r.get_str()?.to_owned(),
                producer: r.get_str()?.to_owned(),
                producer_object: r.get_str()?.to_owned(),
                outcome: r.get_str()?.to_owned(),
            },
            4 => Reconfig::RemoveObjectSource {
                task_path: r.get_str()?.to_owned(),
                set: r.get_str()?.to_owned(),
                object: r.get_str()?.to_owned(),
                producer: r.get_str()?.to_owned(),
            },
            5 => Reconfig::Rebind {
                code: r.get_str()?.to_owned(),
                to: r.get_str()?.to_owned(),
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "Reconfig",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// Control-block changes the engine must persist alongside the schema
/// mutation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReconfigEffects {
    /// Full paths of tasks added (need fresh control blocks).
    pub new_tasks: Vec<String>,
    /// Full paths of tasks removed (control blocks and facts deleted).
    pub removed_tasks: Vec<String>,
}

/// Validates and applies one reconfiguration to a schema.
///
/// # Errors
///
/// [`EngineError::ReconfigRejected`] (schema untouched on the validation
/// failures that can be pre-checked; the coordinator applies `apply` to a
/// *clone*, so any error leaves the live schema untouched).
pub fn apply(schema: &mut Schema, op: &Reconfig) -> Result<ReconfigEffects, EngineError> {
    let mut effects = ReconfigEffects::default();
    match op {
        Reconfig::AddTask {
            scope_path,
            task_source,
        } => {
            let decl = parse_task_decl(task_source)
                .map_err(|d| EngineError::ReconfigRejected(d.to_string()))?;
            let task_classes = schema.task_classes.clone();
            let scope_name = scope_path
                .rsplit('/')
                .next()
                .unwrap_or(scope_path)
                .to_string();
            let compiled = compile_task_fragment(&decl, &scope_name, &task_classes)
                .map_err(|d| EngineError::ReconfigRejected(d.to_string()))?;
            let scope = scope_mut(schema, scope_path)?;
            if scope.task(&compiled.name).is_some() {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{}` already exists in `{scope_path}`",
                    compiled.name
                )));
            }
            // Sources must reference the scope itself or existing
            // siblings.
            for set in &compiled.input_sets {
                for slot in &set.objects {
                    for source in &slot.sources {
                        validate_source(scope, &scope_name, source)?;
                    }
                }
                for notification in &set.notifications {
                    for source in &notification.sources {
                        validate_source(scope, &scope_name, source)?;
                    }
                }
            }
            effects
                .new_tasks
                .push(format!("{scope_path}/{}", compiled.name));
            scope.tasks.push(compiled);
        }
        Reconfig::RemoveTask { task_path } => {
            let (scope_path, task_name) = split_path(task_path)?;
            let scope = scope_mut(schema, &scope_path)?;
            let Some(index) = scope.tasks.iter().position(|t| t.name == task_name) else {
                return Err(EngineError::UnknownTask(task_path.clone()));
            };
            // No sibling slot or output mapping may lose its only source.
            let mut dependents = Vec::new();
            for sibling in &scope.tasks {
                if sibling.name == task_name {
                    continue;
                }
                for set in &sibling.input_sets {
                    for slot in &set.objects {
                        let all_from_target = !slot.sources.is_empty()
                            && slot
                                .sources
                                .iter()
                                .all(|s| !s.is_self && s.task == task_name);
                        if all_from_target {
                            dependents.push(format!("{}/{}", sibling.name, slot.name));
                        }
                    }
                    for notification in &set.notifications {
                        let all_from_target = !notification.sources.is_empty()
                            && notification
                                .sources
                                .iter()
                                .all(|s| !s.is_self && s.task == task_name);
                        if all_from_target {
                            dependents.push(format!("{} (notification)", sibling.name));
                        }
                    }
                }
            }
            for output in &scope.outputs {
                for slot in &output.objects {
                    let all_from_target = !slot.sources.is_empty()
                        && slot
                            .sources
                            .iter()
                            .all(|s| !s.is_self && s.task == task_name);
                    if all_from_target {
                        dependents.push(format!("output {}", output.name));
                    }
                }
            }
            if !dependents.is_empty() {
                return Err(EngineError::ReconfigRejected(format!(
                    "removing `{task_path}` would orphan: {}",
                    dependents.join(", ")
                )));
            }
            let removed = scope.tasks.remove(index);
            collect_paths(&removed, task_path, &mut effects.removed_tasks);
            // Drop any remaining references to the removed task from
            // sibling alternatives (they had others, by the check above).
            let scope = scope_mut(schema, &scope_path)?;
            for sibling in &mut scope.tasks {
                for set in &mut sibling.input_sets {
                    for slot in &mut set.objects {
                        slot.sources.retain(|s| s.is_self || s.task != task_name);
                    }
                    for notification in &mut set.notifications {
                        notification
                            .sources
                            .retain(|s| s.is_self || s.task != task_name);
                    }
                    set.notifications.retain(|n| !n.sources.is_empty());
                }
            }
            for output in &mut scope.outputs {
                for slot in &mut output.objects {
                    slot.sources.retain(|s| s.is_self || s.task != task_name);
                }
                for notification in &mut output.notifications {
                    notification
                        .sources
                        .retain(|s| s.is_self || s.task != task_name);
                }
                output.notifications.retain(|n| !n.sources.is_empty());
            }
        }
        Reconfig::AddNotification {
            task_path,
            set,
            producer,
            outcome,
        } => {
            let (scope_path, task_name) = split_path(task_path)?;
            let scope_name = scope_path
                .rsplit('/')
                .next()
                .unwrap_or(&scope_path)
                .to_string();
            let source = CompiledSource {
                task: producer.clone(),
                is_self: *producer == scope_name,
                object: None,
                cond: CompiledCond::Output(outcome.clone()),
            };
            {
                let scope = scope_mut(schema, &scope_path)?;
                validate_source(scope, &scope_name, &source)?;
                let task = task_mut(scope, &task_name, task_path)?;
                let Some(input_set) = task.input_sets.iter_mut().find(|s| s.name == *set) else {
                    return Err(EngineError::ReconfigRejected(format!(
                        "task `{task_path}` binds no input set `{set}`"
                    )));
                };
                input_set.notifications.push(CompiledNotification {
                    sources: vec![source],
                });
            }
        }
        Reconfig::AddObjectSource {
            task_path,
            set,
            object,
            producer,
            producer_object,
            outcome,
        } => {
            let (scope_path, task_name) = split_path(task_path)?;
            let scope_name = scope_path
                .rsplit('/')
                .next()
                .unwrap_or(&scope_path)
                .to_string();
            let source = CompiledSource {
                task: producer.clone(),
                is_self: *producer == scope_name,
                object: Some(producer_object.clone()),
                cond: CompiledCond::Output(outcome.clone()),
            };
            let scope = scope_mut(schema, &scope_path)?;
            validate_source(scope, &scope_name, &source)?;
            let task = task_mut(scope, &task_name, task_path)?;
            let Some(input_set) = task.input_sets.iter_mut().find(|s| s.name == *set) else {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{task_path}` binds no input set `{set}`"
                )));
            };
            let Some(slot) = input_set.objects.iter_mut().find(|o| o.name == *object) else {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{task_path}` has no input object `{object}` in set `{set}`"
                )));
            };
            slot.sources.push(source);
        }
        Reconfig::RemoveObjectSource {
            task_path,
            set,
            object,
            producer,
        } => {
            let (scope_path, task_name) = split_path(task_path)?;
            let scope = scope_mut(schema, &scope_path)?;
            let task = task_mut(scope, &task_name, task_path)?;
            let Some(input_set) = task.input_sets.iter_mut().find(|s| s.name == *set) else {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{task_path}` binds no input set `{set}`"
                )));
            };
            let Some(slot) = input_set.objects.iter_mut().find(|o| o.name == *object) else {
                return Err(EngineError::ReconfigRejected(format!(
                    "task `{task_path}` has no input object `{object}` in set `{set}`"
                )));
            };
            let before = slot.sources.len();
            let remaining: Vec<CompiledSource> = slot
                .sources
                .iter()
                .filter(|s| s.is_self || s.task != *producer)
                .cloned()
                .collect();
            if remaining.is_empty() {
                return Err(EngineError::ReconfigRejected(format!(
                    "removing sources from `{producer}` would leave `{object}` sourceless"
                )));
            }
            if remaining.len() == before {
                return Err(EngineError::ReconfigRejected(format!(
                    "no source from `{producer}` on `{task_path}`.{set}.{object}"
                )));
            }
            slot.sources = remaining;
        }
        Reconfig::Rebind { .. } => {
            // Schema untouched; the coordinator records the binding.
        }
    }
    Ok(effects)
}

fn split_path(task_path: &str) -> Result<(String, String), EngineError> {
    task_path
        .rsplit_once('/')
        .map(|(scope, name)| (scope.to_string(), name.to_string()))
        .ok_or_else(|| EngineError::UnknownTask(task_path.to_string()))
}

/// Finds the mutable scope with the given path.
fn scope_mut<'a>(
    schema: &'a mut Schema,
    scope_path: &str,
) -> Result<&'a mut CompiledScope, EngineError> {
    let mut segments = scope_path.split('/');
    let root = segments
        .next()
        .ok_or_else(|| EngineError::UnknownTask(scope_path.to_string()))?;
    if root != schema.root.name {
        return Err(EngineError::UnknownTask(scope_path.to_string()));
    }
    let mut scope = &mut schema.root;
    for segment in segments {
        let task = scope
            .tasks
            .iter_mut()
            .find(|t| t.name == segment)
            .ok_or_else(|| EngineError::UnknownTask(scope_path.to_string()))?;
        match &mut task.body {
            TaskBody::Scope(inner) => scope = inner,
            TaskBody::Leaf => {
                return Err(EngineError::ReconfigRejected(format!(
                    "`{segment}` in `{scope_path}` is not a compound task"
                )))
            }
        }
    }
    Ok(scope)
}

fn task_mut<'a>(
    scope: &'a mut CompiledScope,
    name: &str,
    full_path: &str,
) -> Result<&'a mut flowscript_core::schema::CompiledTask, EngineError> {
    scope
        .tasks
        .iter_mut()
        .find(|t| t.name == name)
        .ok_or_else(|| EngineError::UnknownTask(full_path.to_string()))
}

/// Checks a source refers to the scope itself or an existing sibling, and
/// that the producer actually declares the referenced output/object.
fn validate_source(
    scope: &CompiledScope,
    scope_name: &str,
    source: &CompiledSource,
) -> Result<(), EngineError> {
    if source.is_self || source.task == scope_name {
        return Ok(());
    }
    let Some(_producer) = scope.task(&source.task) else {
        return Err(EngineError::ReconfigRejected(format!(
            "source references unknown task `{}`",
            source.task
        )));
    };
    if let CompiledCond::Output(outcome) = &source.cond {
        if outcome == "retry" || outcome.is_empty() {
            // Repeat outcomes are private to their producer (§4.2); we
            // cannot check kinds without the class table here, so the
            // coordinator's schema-level validation is authoritative.
        }
    }
    Ok(())
}

fn collect_paths(task: &flowscript_core::schema::CompiledTask, path: &str, out: &mut Vec<String>) {
    out.push(path.to_string());
    if let TaskBody::Scope(inner) = &task.body {
        for child in &inner.tasks {
            collect_paths(child, &format!("{path}/{}", child.name), out);
        }
    }
}

/// Marker: which output kinds may source reconfigured dependencies.
#[allow(dead_code)]
fn sourceable(kind: OutputKind) -> bool {
    kind != OutputKind::RepeatOutcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::samples;
    use flowscript_core::schema::compile_source;

    fn diamond() -> Schema {
        compile_source(samples::FIG1_DIAMOND, "diamond").unwrap()
    }

    #[test]
    fn ops_roundtrip_codec() {
        let ops = vec![
            Reconfig::AddTask {
                scope_path: "diamond".into(),
                task_source: "task t5 of taskclass Stage { }".into(),
            },
            Reconfig::RemoveTask {
                task_path: "diamond/t2".into(),
            },
            Reconfig::AddNotification {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                producer: "t2".into(),
                outcome: "done".into(),
            },
            Reconfig::AddObjectSource {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                object: "left".into(),
                producer: "t3".into(),
                producer_object: "out".into(),
                outcome: "done".into(),
            },
            Reconfig::RemoveObjectSource {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                object: "left".into(),
                producer: "t2".into(),
            },
            Reconfig::Rebind {
                code: "refT1".into(),
                to: "refT1v2".into(),
            },
        ];
        for op in ops {
            let bytes = flowscript_codec::to_bytes(&op);
            assert_eq!(
                flowscript_codec::from_bytes::<Reconfig>(&bytes).unwrap(),
                op
            );
        }
    }

    #[test]
    fn add_task_t5_like_paper_section2() {
        // The paper's §2 scenario: add t5 depending on t2 and t4.
        let mut schema = diamond();
        let effects = apply(
            &mut schema,
            &Reconfig::AddTask {
                scope_path: "diamond".into(),
                task_source: r#"
                    task t5 of taskclass Join {
                        implementation { "code" is "refT5" };
                        inputs {
                            input main {
                                inputobject left from { out of task t2 if output done };
                                inputobject right from { out of task t4 if output done }
                            }
                        }
                    }
                "#
                .into(),
            },
        )
        .unwrap();
        assert_eq!(effects.new_tasks, vec!["diamond/t5".to_string()]);
        assert!(schema.root.task("t5").is_some());
    }

    #[test]
    fn add_task_duplicate_rejected() {
        let mut schema = diamond();
        let err = apply(
            &mut schema,
            &Reconfig::AddTask {
                scope_path: "diamond".into(),
                task_source: "task t2 of taskclass Stage { }".into(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn add_task_unknown_sibling_rejected() {
        let mut schema = diamond();
        let err = apply(
            &mut schema,
            &Reconfig::AddTask {
                scope_path: "diamond".into(),
                task_source: r#"
                    task t9 of taskclass Stage {
                        inputs { input main {
                            inputobject in from { out of task ghost if output done }
                        } }
                    }
                "#
                .into(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown task `ghost`"));
    }

    #[test]
    fn remove_sole_source_rejected() {
        let mut schema = diamond();
        // t3 is the only source of t4's `right` input.
        let err = apply(
            &mut schema,
            &Reconfig::RemoveTask {
                task_path: "diamond/t3".into(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("would orphan"));
    }

    #[test]
    fn remove_with_alternatives_allowed() {
        let mut schema = diamond();
        // First give t4.right an alternative from t2, then t3 is removable.
        apply(
            &mut schema,
            &Reconfig::AddObjectSource {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                object: "right".into(),
                producer: "t2".into(),
                producer_object: "out".into(),
                outcome: "done".into(),
            },
        )
        .unwrap();
        let effects = apply(
            &mut schema,
            &Reconfig::RemoveTask {
                task_path: "diamond/t3".into(),
            },
        )
        .unwrap();
        assert_eq!(effects.removed_tasks, vec!["diamond/t3".to_string()]);
        assert!(schema.root.task("t3").is_none());
        // t4.right kept only the t2 alternative.
        let t4 = schema.root.task("t4").unwrap();
        let right = t4.input_sets[0]
            .objects
            .iter()
            .find(|o| o.name == "right")
            .unwrap();
        assert_eq!(right.sources.len(), 1);
        assert_eq!(right.sources[0].task, "t2");
    }

    #[test]
    fn remove_last_source_of_slot_rejected() {
        let mut schema = diamond();
        let err = apply(
            &mut schema,
            &Reconfig::RemoveObjectSource {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                object: "right".into(),
                producer: "t3".into(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("sourceless"));
    }

    #[test]
    fn add_notification_appends() {
        let mut schema = diamond();
        apply(
            &mut schema,
            &Reconfig::AddNotification {
                task_path: "diamond/t4".into(),
                set: "main".into(),
                producer: "t2".into(),
                outcome: "done".into(),
            },
        )
        .unwrap();
        let t4 = schema.root.task("t4").unwrap();
        assert_eq!(t4.input_sets[0].notifications.len(), 1);
    }

    #[test]
    fn unknown_scope_rejected() {
        let mut schema = diamond();
        let err = apply(
            &mut schema,
            &Reconfig::AddTask {
                scope_path: "diamond/nonexistent".into(),
                task_source: "task x of taskclass Stage { }".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::UnknownTask(_)));
    }

    #[test]
    fn rebind_leaves_schema_untouched() {
        let mut schema = diamond();
        let before = schema.clone();
        let effects = apply(
            &mut schema,
            &Reconfig::Rebind {
                code: "refT1".into(),
                to: "refT1v2".into(),
            },
        )
        .unwrap();
        assert_eq!(schema, before);
        assert!(effects.new_tasks.is_empty());
    }
}
