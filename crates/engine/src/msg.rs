//! Wire messages between the engine's services (codec-framed over the
//! simulated network — the IIOP of our Fig. 4).

use std::collections::BTreeMap;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use flowscript_sim::SimDuration;

use crate::value::ObjectVal;

/// Coordinator → executor: run a task implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct StartTask {
    /// Instance name.
    pub instance: String,
    /// Task path within the instance.
    pub path: String,
    /// Scope incarnation (stale replies are discarded by this).
    pub incarnation: u32,
    /// Dispatch attempt number.
    pub attempt: u32,
    /// Implementation name to bind (from the script or a rebinding).
    pub code: String,
    /// Extra implementation pairs (deadline, priority, …).
    pub implementation: BTreeMap<String, String>,
    /// The bound input set's name.
    pub set: String,
    /// The bound input objects.
    pub inputs: BTreeMap<String, ObjectVal>,
    /// Objects carried over from a repeat outcome, if re-executing.
    pub repeat_objects: BTreeMap<String, ObjectVal>,
    /// Shard-map epoch the dispatching coordinator routed under; the
    /// executor echoes it back on its reports so post-rebalance replies
    /// are attributable to the map that placed them.
    pub epoch: u64,
}

impl StartTask {
    /// The typed scheduling hints carried in the implementation clause
    /// (the executor's location guard reads these instead of parsing
    /// strings itself).
    pub fn hints(&self) -> crate::sched::ImplHints {
        crate::sched::ImplHints::from_map(&self.implementation)
    }
}

/// Executor → coordinator: a task finished (outcome or abort), or could
/// not run at all.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDone {
    /// Instance name.
    pub instance: String,
    /// Task path.
    pub path: String,
    /// Scope incarnation the execution belonged to.
    pub incarnation: u32,
    /// Attempt that produced this result.
    pub attempt: u32,
    /// The result.
    pub result: TaskResult,
    /// Shard-map epoch echoed from the dispatching [`StartTask`].
    pub epoch: u64,
}

/// The terminal result of one task execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskResult {
    /// The implementation terminated in a declared output.
    Output {
        /// Output (outcome/abort/repeat) name.
        name: String,
        /// Objects produced with it.
        objects: BTreeMap<String, ObjectVal>,
        /// Requested re-execution delay for repeat outcomes.
        redo_after: SimDuration,
    },
    /// The executor could not run the task (unbound implementation,
    /// invariant violation). Treated as a system-level failure.
    ExecError {
        /// Why.
        reason: String,
    },
}

/// Executor → coordinator: an early-release mark produced mid-execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkMsg {
    /// Instance name.
    pub instance: String,
    /// Task path.
    pub path: String,
    /// Scope incarnation.
    pub incarnation: u32,
    /// Attempt that produced the mark.
    pub attempt: u32,
    /// Mark output name.
    pub mark: String,
    /// Objects released with it.
    pub objects: BTreeMap<String, ObjectVal>,
    /// Shard-map epoch echoed from the dispatching [`StartTask`].
    pub epoch: u64,
}

/// All engine messages, tagged for dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineMsg {
    /// Run a task.
    Start(StartTask),
    /// A task finished.
    Done(TaskDone),
    /// A mark was produced.
    Mark(MarkMsg),
    /// Client → repository: store a script (already validated client-side,
    /// revalidated server-side).
    RepoRegister {
        /// Script name.
        name: String,
        /// Canonical source text.
        source: String,
        /// Root compound task.
        root: String,
    },
    /// Repository reply to a register/get.
    RepoReply {
        /// Ok(version) or an error description.
        result: Result<u32, String>,
        /// Source text for get replies.
        source: String,
        /// Root compound for get replies.
        root: String,
        /// The version's compiled execution plan, codec-encoded (empty
        /// for register replies and errors). Serving the cached plan
        /// saves the coordinator a full front-end recompile per
        /// instance start.
        plan: Vec<u8>,
    },
    /// Coordinator → repository: fetch a script.
    RepoGet {
        /// Script name.
        name: String,
        /// Specific version, or latest when `None`.
        version: Option<u32>,
    },
    /// Client → coordinator: start an instance of a repository script.
    StartInstance {
        /// Unique instance name chosen by the client.
        instance: String,
        /// Repository script name.
        script: String,
        /// Script version (latest when `None`).
        version: Option<u32>,
        /// Root input set to bind.
        set: String,
        /// Root input objects.
        inputs: BTreeMap<String, ObjectVal>,
        /// Shard-map epoch the client routed under (0 = epoch-unaware
        /// client; the owner serves it either way and the stamp makes
        /// stale routing diagnosable in traces).
        epoch: u64,
    },
    /// Generic acknowledgement reply.
    Ack {
        /// Success or an error description.
        result: Result<(), String>,
    },
    /// A misdirected message relayed toward the owning shard. The
    /// wrapper counts hops so two coordinators with disagreeing maps
    /// (the mid-rebalance state) cannot ping-pong a report forever.
    Forwarded {
        /// Shard-map epoch of the most recent forwarder.
        epoch: u64,
        /// Relays so far (the first forward sends 1).
        hops: u32,
        /// The encoded original [`EngineMsg`].
        inner: Vec<u8>,
    },
    /// Coordinator → client: the shard is at its admission cap *and*
    /// its admission queue is full — the [`EngineMsg::StartInstance`]
    /// was not accepted and may be retried with backoff. Typed (rather
    /// than an `Ack` error string) so clients can distinguish
    /// transient overload from permanent rejection.
    Busy {
        /// Admission-queue depth at rejection time (a backoff hint).
        queue_depth: u32,
    },
    /// Restarted hand-off destination → source: what happened to this
    /// in-doubt move? (2PC termination protocol for hand-offs.)
    HandoffQuery {
        /// Moving transaction id, node part.
        tx_node: u32,
        /// Moving transaction id, sequence part.
        tx_seq: u64,
    },
    /// Hand-off source → destination: the durable decision for a move
    /// (pushed on source recovery, or answering a [`HandoffQuery`]).
    HandoffVerdict {
        /// Moving transaction id, node part.
        tx_node: u32,
        /// Moving transaction id, sequence part.
        tx_seq: u64,
        /// `true` = the destination owns the instance.
        committed: bool,
    },
}

impl Encode for StartTask {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.instance);
        w.put_str(&self.path);
        w.put_u32(self.incarnation);
        w.put_u32(self.attempt);
        w.put_str(&self.code);
        self.implementation.encode(w);
        w.put_str(&self.set);
        self.inputs.encode(w);
        self.repeat_objects.encode(w);
        w.put_u64(self.epoch);
    }
}

impl Decode for StartTask {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(StartTask {
            instance: r.get_str()?.to_owned(),
            path: r.get_str()?.to_owned(),
            incarnation: r.get_u32()?,
            attempt: r.get_u32()?,
            code: r.get_str()?.to_owned(),
            implementation: BTreeMap::decode(r)?,
            set: r.get_str()?.to_owned(),
            inputs: BTreeMap::decode(r)?,
            repeat_objects: BTreeMap::decode(r)?,
            epoch: r.get_u64()?,
        })
    }
}

impl Encode for TaskResult {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            TaskResult::Output {
                name,
                objects,
                redo_after,
            } => {
                w.put_u8(0);
                w.put_str(name);
                objects.encode(w);
                redo_after.encode(w);
            }
            TaskResult::ExecError { reason } => {
                w.put_u8(1);
                w.put_str(reason);
            }
        }
    }
}

impl Decode for TaskResult {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => TaskResult::Output {
                name: r.get_str()?.to_owned(),
                objects: BTreeMap::decode(r)?,
                redo_after: SimDuration::decode(r)?,
            },
            1 => TaskResult::ExecError {
                reason: r.get_str()?.to_owned(),
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "TaskResult",
                    value: u64::from(other),
                })
            }
        })
    }
}

impl Encode for TaskDone {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.instance);
        w.put_str(&self.path);
        w.put_u32(self.incarnation);
        w.put_u32(self.attempt);
        self.result.encode(w);
        w.put_u64(self.epoch);
    }
}

impl Decode for TaskDone {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TaskDone {
            instance: r.get_str()?.to_owned(),
            path: r.get_str()?.to_owned(),
            incarnation: r.get_u32()?,
            attempt: r.get_u32()?,
            result: TaskResult::decode(r)?,
            epoch: r.get_u64()?,
        })
    }
}

impl Encode for MarkMsg {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.instance);
        w.put_str(&self.path);
        w.put_u32(self.incarnation);
        w.put_u32(self.attempt);
        w.put_str(&self.mark);
        self.objects.encode(w);
        w.put_u64(self.epoch);
    }
}

impl Decode for MarkMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(MarkMsg {
            instance: r.get_str()?.to_owned(),
            path: r.get_str()?.to_owned(),
            incarnation: r.get_u32()?,
            attempt: r.get_u32()?,
            mark: r.get_str()?.to_owned(),
            objects: BTreeMap::decode(r)?,
            epoch: r.get_u64()?,
        })
    }
}

impl Encode for EngineMsg {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            EngineMsg::Start(msg) => {
                w.put_u8(0);
                msg.encode(w);
            }
            EngineMsg::Done(msg) => {
                w.put_u8(1);
                msg.encode(w);
            }
            EngineMsg::Mark(msg) => {
                w.put_u8(2);
                msg.encode(w);
            }
            EngineMsg::RepoRegister { name, source, root } => {
                w.put_u8(3);
                w.put_str(name);
                w.put_str(source);
                w.put_str(root);
            }
            EngineMsg::RepoReply {
                result,
                source,
                root,
                plan,
            } => {
                w.put_u8(4);
                result.encode(w);
                w.put_str(source);
                w.put_str(root);
                w.put_len_prefixed(plan);
            }
            EngineMsg::RepoGet { name, version } => {
                w.put_u8(5);
                w.put_str(name);
                version.encode(w);
            }
            EngineMsg::StartInstance {
                instance,
                script,
                version,
                set,
                inputs,
                epoch,
            } => {
                w.put_u8(6);
                w.put_str(instance);
                w.put_str(script);
                version.encode(w);
                w.put_str(set);
                inputs.encode(w);
                w.put_u64(*epoch);
            }
            EngineMsg::Ack { result } => {
                w.put_u8(7);
                result.encode(w);
            }
            EngineMsg::Forwarded { epoch, hops, inner } => {
                w.put_u8(8);
                w.put_u64(*epoch);
                w.put_u32(*hops);
                w.put_len_prefixed(inner);
            }
            EngineMsg::HandoffQuery { tx_node, tx_seq } => {
                w.put_u8(9);
                w.put_u32(*tx_node);
                w.put_u64(*tx_seq);
            }
            EngineMsg::HandoffVerdict {
                tx_node,
                tx_seq,
                committed,
            } => {
                w.put_u8(10);
                w.put_u32(*tx_node);
                w.put_u64(*tx_seq);
                w.put_bool(*committed);
            }
            EngineMsg::Busy { queue_depth } => {
                w.put_u8(11);
                w.put_u32(*queue_depth);
            }
        }
    }
}

impl Decode for EngineMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => EngineMsg::Start(StartTask::decode(r)?),
            1 => EngineMsg::Done(TaskDone::decode(r)?),
            2 => EngineMsg::Mark(MarkMsg::decode(r)?),
            3 => EngineMsg::RepoRegister {
                name: r.get_str()?.to_owned(),
                source: r.get_str()?.to_owned(),
                root: r.get_str()?.to_owned(),
            },
            4 => EngineMsg::RepoReply {
                result: Result::decode(r)?,
                source: r.get_str()?.to_owned(),
                root: r.get_str()?.to_owned(),
                plan: r.get_len_prefixed()?.to_vec(),
            },
            5 => EngineMsg::RepoGet {
                name: r.get_str()?.to_owned(),
                version: Option::decode(r)?,
            },
            6 => EngineMsg::StartInstance {
                instance: r.get_str()?.to_owned(),
                script: r.get_str()?.to_owned(),
                version: Option::decode(r)?,
                set: r.get_str()?.to_owned(),
                inputs: BTreeMap::decode(r)?,
                epoch: r.get_u64()?,
            },
            7 => EngineMsg::Ack {
                result: Result::decode(r)?,
            },
            8 => EngineMsg::Forwarded {
                epoch: r.get_u64()?,
                hops: r.get_u32()?,
                inner: r.get_len_prefixed()?.to_vec(),
            },
            9 => EngineMsg::HandoffQuery {
                tx_node: r.get_u32()?,
                tx_seq: r.get_u64()?,
            },
            10 => EngineMsg::HandoffVerdict {
                tx_node: r.get_u32()?,
                tx_seq: r.get_u64()?,
                committed: r.get_bool()?,
            },
            11 => EngineMsg::Busy {
                queue_depth: r.get_u32()?,
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "EngineMsg",
                    value: u64::from(other),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_roundtrip() {
        let mut inputs = BTreeMap::new();
        inputs.insert("order".to_string(), ObjectVal::text("Order", "o1"));
        let msgs = vec![
            EngineMsg::Start(StartTask {
                instance: "i1".into(),
                path: "root/t1".into(),
                incarnation: 1,
                attempt: 2,
                code: "refT1".into(),
                implementation: BTreeMap::from([("priority".to_string(), "3".to_string())]),
                set: "main".into(),
                inputs: inputs.clone(),
                repeat_objects: BTreeMap::new(),
                epoch: 1,
            }),
            EngineMsg::Done(TaskDone {
                instance: "i1".into(),
                path: "root/t1".into(),
                incarnation: 1,
                attempt: 2,
                result: TaskResult::Output {
                    name: "done".into(),
                    objects: inputs.clone(),
                    redo_after: SimDuration::from_millis(5),
                },
                epoch: 2,
            }),
            EngineMsg::Done(TaskDone {
                instance: "i1".into(),
                path: "root/t1".into(),
                incarnation: 0,
                attempt: 0,
                result: TaskResult::ExecError {
                    reason: "no binding".into(),
                },
                epoch: 1,
            }),
            EngineMsg::Mark(MarkMsg {
                instance: "i1".into(),
                path: "root/t1".into(),
                incarnation: 0,
                attempt: 1,
                mark: "toPay".into(),
                objects: inputs,
                epoch: 3,
            }),
            EngineMsg::RepoRegister {
                name: "s".into(),
                source: "class C;".into(),
                root: "r".into(),
            },
            EngineMsg::RepoReply {
                result: Ok(3),
                source: String::new(),
                root: String::new(),
                plan: vec![1, 2, 3],
            },
            EngineMsg::RepoGet {
                name: "s".into(),
                version: Some(2),
            },
            EngineMsg::StartInstance {
                instance: "i1".into(),
                script: "s".into(),
                version: None,
                set: "main".into(),
                inputs: BTreeMap::new(),
                epoch: 2,
            },
            EngineMsg::Ack {
                result: Err("boom".into()),
            },
            EngineMsg::Forwarded {
                epoch: 4,
                hops: 2,
                inner: vec![7, 0, 1],
            },
            EngineMsg::HandoffQuery {
                tx_node: 1,
                tx_seq: 42,
            },
            EngineMsg::HandoffVerdict {
                tx_node: 1,
                tx_seq: 42,
                committed: true,
            },
            EngineMsg::Busy { queue_depth: 17 },
        ];
        for msg in msgs {
            let bytes = flowscript_codec::to_bytes(&msg);
            assert_eq!(
                flowscript_codec::from_bytes::<EngineMsg>(&bytes).unwrap(),
                msg
            );
        }
    }
}
