//! Load-aware executor scheduling.
//!
//! The composition language lets every task declare an `implementation`
//! clause — `"location"`, `"priority"`, `"duration_ms"`, `"deadline_ms"`
//! pairs — precisely so the runtime can *place* (and, under failure,
//! *re-place*) the service that runs it (the paper's service-relocation
//! story, §3/§4). This module turns those hints from parsed-but-ignored
//! strings into scheduling decisions:
//!
//! - [`ImplHints`] is the typed view of the clause, extracted once per
//!   dispatch instead of ad-hoc string parsing at every consumer,
//! - [`Scheduler`] tracks per-executor in-flight load (incremented at
//!   dispatch, decremented when the task completes, fails or times
//!   out) and picks the target node: `location` is a **hard
//!   constraint** (only matching executors are eligible; a location no
//!   executor carries fails the task with a diagnosable error), retries
//!   avoid the node that just failed whenever any alternative is
//!   eligible, and the remainder is decided **least-loaded** (ties
//!   break by executor order, keeping runs deterministic),
//! - every executor declares a **capacity** ([`ExecutorSpec`]): the
//!   number of concurrent task slots it offers (`0` = unbounded, the
//!   legacy model; `1` = serial). The picker prefers unsaturated
//!   executors, and when *every* eligible executor is at capacity
//!   ([`Scheduler::all_saturated`]) the coordinator parks the dispatch
//!   in its ready queue instead of piling work onto a full node,
//! - a [`CostModel`] keeps a per-code EWMA of **observed** completion
//!   times, overriding absent-or-wrong declared `duration_ms` in load
//!   accounting and (bounded below by the declared floor) in watchdog
//!   deadline math — the hints are what the script *said*, the model is
//!   what the fleet *measured*.
//!
//! Each coordinator shard owns a scheduler over the *shared* executor
//! fleet: load views are per shard, so no cross-shard coordination sits
//! on the dispatch hot path. The legacy path-hash policy survives as
//! [`SchedPolicy::PathHash`] — the baseline the `plan_dispatch`
//! `scheduled` bench variant (and the regression tests) compare
//! against.

use std::collections::BTreeMap;

use flowscript_sim::{NodeId, SimDuration};

/// Typed view of a task's `implementation` clause. Unparsable values
/// degrade to `None`/default rather than failing dispatch — the clause
/// doubles as a free-form key/value store (`"code"` lives there too).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImplHints {
    /// Placement constraint: only executors registered at this
    /// location may run the task.
    pub location: Option<String>,
    /// Scheduling priority (higher runs first when ready tasks contend
    /// for busy executors; absent or unparsable means 0).
    pub priority: i64,
    /// Declared expected execution time, added to the watchdog base.
    pub duration_ms: Option<u64>,
    /// Declared deadline: a **cap** on the watchdog timeout, never a
    /// summand.
    pub deadline_ms: Option<u64>,
}

impl ImplHints {
    /// Extracts the typed hints from an implementation key/value map.
    /// An empty `location` value means *unpinned*, exactly like an
    /// absent one — the empty string is not a real label, and letting
    /// it through would pin the task to executors registered with an
    /// empty label.
    pub fn from_map(implementation: &BTreeMap<String, String>) -> Self {
        Self {
            location: implementation
                .get("location")
                .filter(|label| !label.is_empty())
                .cloned(),
            priority: implementation
                .get("priority")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            duration_ms: implementation
                .get("duration_ms")
                .and_then(|v| v.parse().ok()),
            deadline_ms: implementation
                .get("deadline_ms")
                .and_then(|v| v.parse().ok()),
        }
    }

    /// The watchdog timeout for one dispatch: the engine's base
    /// timeout, extended by the declared `duration_ms` (the task *said*
    /// it needs that long), the whole thing capped by `deadline_ms`
    /// when declared — a deadline bounds how long the task may take, it
    /// never extends the watchdog.
    pub fn watchdog_timeout(&self, base: SimDuration) -> SimDuration {
        let mut timeout = base;
        if let Some(extra) = self.duration_ms {
            timeout = timeout + SimDuration::from_millis(extra);
        }
        if let Some(cap) = self.deadline_ms {
            timeout = timeout.min(SimDuration::from_millis(cap));
        }
        timeout
    }

    /// The load the scheduler charges one dispatch of this task at: a
    /// remaining-time estimate of `1 + duration_ms`. The constant term
    /// makes undeclared tasks cost exactly one unit — a fleet with no
    /// duration hints degenerates to bare in-flight counting — while
    /// declared durations dominate whenever they exist, so one 400 ms
    /// task outweighs several 50 ms ones.
    pub fn load_cost(&self) -> u64 {
        self.duration_ms.unwrap_or(0).saturating_add(1)
    }
}

/// A per-shard moving estimate of real task durations, keyed by the
/// implementation code that ran.
///
/// The coordinator feeds it every genuine completion (the elapsed
/// virtual time from dispatch to the executor's report — queueing on a
/// saturated node is kept *out* of the sample by capacity parking, so
/// the estimate tracks service time, not congestion). The estimate is
/// an EWMA with a 1/4 gain: `new = (3·old + observed) / 4` — heavy
/// enough to converge within a few completions, smooth enough that one
/// outlier does not repoint the fleet.
///
/// Consumers go through [`CostModel::load_cost`] and
/// [`CostModel::watchdog_timeout`] instead of the raw
/// [`ImplHints`] accessors: once a code has been observed, the model
/// overrides the declared `duration_ms` (which may be absent, stale or
/// simply wrong) — except that the watchdog duration never drops below
/// the declared floor, and the declared `deadline_ms` cap always binds
/// last. [`ImplHints`] stays a pure parse product.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    observed_ns: BTreeMap<String, u64>,
}

impl CostModel {
    /// An empty model (every code falls back to its declared hints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed completion of `code` into its estimate.
    pub fn observe(&mut self, code: &str, elapsed_ns: u64) {
        match self.observed_ns.get_mut(code) {
            Some(old) => {
                *old = ((u128::from(*old) * 3 + u128::from(elapsed_ns)) / 4) as u64;
            }
            None => {
                self.observed_ns.insert(code.to_string(), elapsed_ns);
            }
        }
    }

    /// The smoothed estimate for `code` in milliseconds (rounded up so
    /// sub-millisecond work still registers as one unit), or `None`
    /// before the first completion.
    pub fn estimate_ms(&self, code: &str) -> Option<u64> {
        self.observed_ns.get(code).map(|ns| ns.div_ceil(1_000_000))
    }

    /// Number of codes with at least one observation.
    pub fn len(&self) -> usize {
        self.observed_ns.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.observed_ns.is_empty()
    }

    /// The load one dispatch of `code` is charged at: the observed
    /// estimate once one exists (overriding absent or lying declared
    /// durations), the declared [`ImplHints::load_cost`] before the
    /// first completion.
    pub fn load_cost(&self, code: &str, hints: &ImplHints) -> u64 {
        match self.estimate_ms(code) {
            Some(ms) => ms.saturating_add(1),
            None => hints.load_cost(),
        }
    }

    /// The watchdog timeout for one dispatch of `code`: like
    /// [`ImplHints::watchdog_timeout`], but the duration term is
    /// `max(declared duration_ms, 2 × observed estimate)` — an observed
    /// duration may *extend* the declared floor (a lying short hint
    /// must not time out healthy work; the 2× headroom absorbs normal
    /// variance), never shrink it, and the declared `deadline_ms` cap
    /// still binds last.
    pub fn watchdog_timeout(
        &self,
        code: &str,
        hints: &ImplHints,
        base: SimDuration,
    ) -> SimDuration {
        let declared = hints.duration_ms.unwrap_or(0);
        let duration = match self.estimate_ms(code) {
            Some(estimate) => declared.max(estimate.saturating_mul(2)),
            None => declared,
        };
        let mut timeout = base;
        if duration > 0 {
            timeout = timeout + SimDuration::from_millis(duration);
        }
        if let Some(cap) = hints.deadline_ms {
            timeout = timeout.min(SimDuration::from_millis(cap));
        }
        timeout
    }
}

/// How dispatch picks an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Load-aware: location hard constraint, avoid the failed node on
    /// retry, least **remaining work** among the eligible remainder —
    /// each in-flight dispatch weighs `1 + duration_ms`
    /// ([`ImplHints::load_cost`], overridden by the observed
    /// [`CostModel`] estimate once one exists), so durations shape
    /// placement and hintless fleets degenerate to in-flight counting.
    #[default]
    LeastLoaded,
    /// Count-based least-loaded: like [`SchedPolicy::LeastLoaded`] but
    /// every dispatch weighs one unit regardless of declared duration
    /// (the pre-remaining-work behaviour, kept as the comparison
    /// baseline for the skewed-duration tests).
    InFlightCount,
    /// The legacy baseline: stable hash of the task path plus the
    /// attempt, ignoring hints and load (kept for the `scheduled`
    /// bench comparison and as a regression oracle). Ignores declared
    /// capacities too — the baseline predates them.
    PathHash,
}

/// One executor as registered with the system: where it runs, its
/// optional location label, and how many concurrent tasks it declares
/// it can serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorSpec {
    /// The executor's node.
    pub node: NodeId,
    /// Its location label (`None` — or the empty string — means
    /// unpinned).
    pub location: Option<String>,
    /// Declared concurrent task slots: `0` = unbounded (the legacy
    /// model), `1` = serial, `k` = `k` tasks at a time.
    pub capacity: u32,
}

impl ExecutorSpec {
    /// An unbounded, label-free executor on `node` (the legacy shape).
    pub fn unbounded(node: NodeId) -> Self {
        ExecutorSpec {
            node,
            location: None,
            capacity: 0,
        }
    }
}

/// One executor as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorSlot {
    /// The executor's node.
    pub node: NodeId,
    /// Its registered location label, if any.
    pub location: Option<String>,
    /// Declared capacity (`0` = unbounded).
    pub capacity: u32,
    /// Dispatches currently in flight on it *from this coordinator*.
    pub in_flight: u32,
    /// Remaining-work estimate of those dispatches: the sum of their
    /// [`ImplHints::load_cost`] charges.
    pub remaining: u64,
}

impl ExecutorSlot {
    /// True when the slot is at its declared capacity (never true for
    /// unbounded executors).
    pub fn saturated(&self) -> bool {
        self.capacity != 0 && self.in_flight >= self.capacity
    }
}

/// Why the scheduler could not place a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The task pins a location no registered executor carries. The
    /// offending location is carried for the diagnostic.
    NoExecutorAt(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoExecutorAt(location) => {
                write!(f, "no executor registered at location `{location}`")
            }
        }
    }
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The chosen executor node.
    pub node: NodeId,
    /// True when the dispatch had to re-use the node it was asked to
    /// avoid (a retry with no eligible alternative — e.g. a single
    /// executor, or a location pin matching exactly the failed node).
    pub no_alternative: bool,
    /// The chosen executor's load (in the active policy's metric) at
    /// decision time, *before* this dispatch is charged — what the
    /// `sched.pick_load` histogram samples.
    pub load: u64,
}

/// Per-coordinator executor scheduler (see the module docs).
#[derive(Debug, Clone)]
pub struct Scheduler {
    slots: Vec<ExecutorSlot>,
    policy: SchedPolicy,
}

impl Scheduler {
    /// Builds a scheduler over the executor fleet. `specs` order is the
    /// deterministic tie-break order. An empty-string location label
    /// normalizes to `None`: such an executor is label-free, not
    /// registered at a location named `""`.
    pub fn new(specs: Vec<ExecutorSpec>, policy: SchedPolicy) -> Self {
        Self {
            slots: specs
                .into_iter()
                .map(|spec| ExecutorSlot {
                    node: spec.node,
                    location: spec.location.filter(|label| !label.is_empty()),
                    capacity: spec.capacity,
                    in_flight: 0,
                    remaining: 0,
                })
                .collect(),
            policy,
        }
    }

    /// The legacy stable path hash (FNV-free multiplicative hash kept
    /// byte-compatible with the pre-scheduler dispatch).
    fn path_hash(path: &str) -> u64 {
        let mut hash = 0u64;
        for byte in path.bytes() {
            hash = hash.wrapping_mul(31).wrapping_add(u64::from(byte));
        }
        hash
    }

    /// True when at least one executor is eligible for `hints` and
    /// **every** eligible one sits at its declared capacity — the
    /// caller should park the dispatch in its ready queue until a
    /// release frees a slot, instead of piling work onto a full node.
    /// An unsatisfiable pin returns `false`: that is a placement
    /// *error* ([`SchedError::NoExecutorAt`]), not congestion. The
    /// [`SchedPolicy::PathHash`] baseline predates capacities and
    /// never reports saturation.
    pub fn all_saturated(&self, hints: &ImplHints) -> bool {
        if self.policy == SchedPolicy::PathHash {
            return false;
        }
        let mut any_eligible = false;
        for slot in &self.slots {
            let eligible = match &hints.location {
                Some(location) => slot.location.as_deref() == Some(location.as_str()),
                None => true,
            };
            if eligible {
                any_eligible = true;
                if !slot.saturated() {
                    return false;
                }
            }
        }
        any_eligible
    }

    /// Picks the executor for one dispatch.
    ///
    /// `avoid` names the node the previous attempt died on (retries
    /// must relocate whenever an eligible alternative exists).
    /// Unsaturated executors are preferred over saturated ones, and
    /// relocation is preferred within each tier — but an unsaturated
    /// avoided node beats a saturated alternative: capacity is a
    /// declared bound, relocation only a preference.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoExecutorAt`] when the task's `location` pin
    /// matches no registered executor — the task cannot run anywhere,
    /// so the caller fails it with the diagnosable reason instead of
    /// burning retries.
    pub fn pick(
        &self,
        path: &str,
        attempt: u32,
        hints: &ImplHints,
        avoid: Option<NodeId>,
    ) -> Result<Placement, SchedError> {
        assert!(!self.slots.is_empty(), "a system always has an executor");
        if self.policy == SchedPolicy::PathHash {
            // Baseline: hash of the path plus the attempt over the
            // whole fleet, hints and load ignored.
            let index = (Self::path_hash(path).wrapping_add(u64::from(attempt))
                % self.slots.len() as u64) as usize;
            let node = self.slots[index].node;
            return Ok(Placement {
                node,
                no_alternative: avoid == Some(node) && self.slots.len() == 1,
                load: self.slots[index].remaining,
            });
        }
        let eligible = |slot: &&ExecutorSlot| match &hints.location {
            Some(location) => slot.location.as_deref() == Some(location.as_str()),
            None => true,
        };
        // Only a real pin can be unsatisfiable: unpinned tasks are
        // eligible everywhere and the fleet is non-empty.
        if let Some(location) = &hints.location {
            if !self.slots.iter().any(|slot| eligible(&slot)) {
                return Err(SchedError::NoExecutorAt(location.clone()));
            }
        }
        // Least-loaded among the eligible; ties break by slot order
        // (deterministic runs). The default metric is the
        // remaining-work estimate; the `InFlightCount` baseline weighs
        // every dispatch equally.
        let load = |slot: &ExecutorSlot| match self.policy {
            SchedPolicy::InFlightCount => u64::from(slot.in_flight),
            _ => slot.remaining,
        };
        let best = |skip_avoided: bool, skip_saturated: bool| {
            self.slots
                .iter()
                .filter(eligible)
                .filter(|slot| !skip_avoided || avoid != Some(slot.node))
                .filter(|slot| !skip_saturated || !slot.saturated())
                .min_by_key(|slot| load(slot))
        };
        // Tier order: unsaturated beats saturated, then relocation
        // beats landing back on the avoided node.
        for (skip_avoided, skip_saturated) in
            [(true, true), (false, true), (true, false), (false, false)]
        {
            if let Some(slot) = best(skip_avoided, skip_saturated) {
                return Ok(Placement {
                    node: slot.node,
                    // Only a retry can set `avoid`; landing back on it
                    // means no alternative was eligible in any better
                    // tier.
                    no_alternative: avoid == Some(slot.node),
                    load: load(slot),
                });
            }
        }
        unreachable!("eligibility checked above");
    }

    /// Records a dispatch landing on `node`, charged at `cost`
    /// remaining-work units ([`ImplHints::load_cost`]).
    pub fn note_dispatch(&mut self, node: NodeId, cost: u64) {
        if let Some(slot) = self.slots.iter_mut().find(|slot| slot.node == node) {
            slot.in_flight += 1;
            slot.remaining = slot.remaining.saturating_add(cost);
        }
    }

    /// Records the dispatch on `node` ending (completion, failure,
    /// watchdog, or subtree cancellation), releasing the `cost` it was
    /// charged at.
    pub fn note_release(&mut self, node: NodeId, cost: u64) {
        if let Some(slot) = self.slots.iter_mut().find(|slot| slot.node == node) {
            slot.in_flight = slot.in_flight.saturating_sub(1);
            slot.remaining = slot.remaining.saturating_sub(cost);
        }
    }

    /// Zeroes every load counter (coordinator recovery rebuilds its
    /// in-flight view from scratch).
    pub fn reset_loads(&mut self) {
        for slot in &mut self.slots {
            slot.in_flight = 0;
            slot.remaining = 0;
        }
    }

    /// The current per-executor view (monitoring / tests).
    pub fn snapshot(&self) -> Vec<ExecutorSlot> {
        self.slots.clone()
    }

    /// The in-flight count of `node` (0 for unknown nodes).
    pub fn load_of(&self, node: NodeId) -> u32 {
        self.slots
            .iter()
            .find(|slot| slot.node == node)
            .map_or(0, |slot| slot.in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        let mut world = flowscript_sim::World::new(0);
        (0..n).map(|i| world.add_node(format!("e{i}"))).collect()
    }

    fn unbounded(ids: &[NodeId]) -> Vec<ExecutorSpec> {
        ids.iter()
            .map(|&node| ExecutorSpec::unbounded(node))
            .collect()
    }

    fn spec(node: NodeId, location: Option<&str>, capacity: u32) -> ExecutorSpec {
        ExecutorSpec {
            node,
            location: location.map(str::to_string),
            capacity,
        }
    }

    fn hints(pairs: &[(&str, &str)]) -> ImplHints {
        ImplHints::from_map(
            &pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        )
    }

    #[test]
    fn hints_extract_typed_values() {
        let h = hints(&[
            ("location", "paris"),
            ("priority", "7"),
            ("duration_ms", "250"),
            ("deadline_ms", "900"),
            ("code", "refX"),
        ]);
        assert_eq!(h.location.as_deref(), Some("paris"));
        assert_eq!(h.priority, 7);
        assert_eq!(h.duration_ms, Some(250));
        assert_eq!(h.deadline_ms, Some(900));
        // Unparsable values degrade instead of failing dispatch.
        let h = hints(&[("priority", "high"), ("duration_ms", "soon")]);
        assert_eq!(h.priority, 0);
        assert_eq!(h.duration_ms, None);
    }

    #[test]
    fn deadline_caps_the_watchdog_instead_of_extending_it() {
        let base = SimDuration::from_millis(1000);
        // duration extends…
        assert_eq!(
            hints(&[("duration_ms", "500")]).watchdog_timeout(base),
            SimDuration::from_millis(1500)
        );
        // …deadline caps…
        assert_eq!(
            hints(&[("deadline_ms", "700")]).watchdog_timeout(base),
            SimDuration::from_millis(700)
        );
        // …and with both set the deadline bounds the extended timeout
        // (the old code summed all three: 1000 + 500 + 1200).
        assert_eq!(
            hints(&[("duration_ms", "500"), ("deadline_ms", "1200")]).watchdog_timeout(base),
            SimDuration::from_millis(1200)
        );
        // A generous deadline leaves the extension alone.
        assert_eq!(
            hints(&[("duration_ms", "500"), ("deadline_ms", "60000")]).watchdog_timeout(base),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn cost_model_overrides_lying_hints_once_observed() {
        let mut costs = CostModel::new();
        let lying = hints(&[("duration_ms", "1")]);
        // Before any observation the declared hint is all there is.
        assert_eq!(costs.load_cost("refX", &lying), 2);
        assert_eq!(costs.estimate_ms("refX"), None);
        // One observed 400ms completion repoints the estimate…
        costs.observe("refX", 400_000_000);
        assert_eq!(costs.estimate_ms("refX"), Some(400));
        assert_eq!(costs.load_cost("refX", &lying), 401);
        // …and the EWMA smooths further samples at a 1/4 gain.
        costs.observe("refX", 200_000_000);
        assert_eq!(costs.estimate_ms("refX"), Some(350));
        // Codes never observed still fall back to their own hints.
        assert_eq!(costs.load_cost("refY", &hints(&[])), 1);
    }

    #[test]
    fn observed_duration_extends_but_never_shrinks_the_watchdog() {
        let base = SimDuration::from_millis(200);
        let mut costs = CostModel::new();
        let lying = hints(&[("duration_ms", "1")]);
        // Unobserved: the declared extension alone.
        assert_eq!(
            costs.watchdog_timeout("refX", &lying, base),
            SimDuration::from_millis(201)
        );
        // A 300ms observation extends the deadline to 2× the estimate.
        costs.observe("refX", 300_000_000);
        assert_eq!(
            costs.watchdog_timeout("refX", &lying, base),
            SimDuration::from_millis(800)
        );
        // The declared floor holds when the observation is *shorter*
        // than the declaration — the model never shrinks a timeout.
        let generous = hints(&[("duration_ms", "5000")]);
        assert_eq!(
            costs.watchdog_timeout("refX", &generous, base),
            SimDuration::from_millis(5200)
        );
        // The declared deadline cap still binds last.
        let capped = hints(&[("duration_ms", "1"), ("deadline_ms", "500")]);
        assert_eq!(
            costs.watchdog_timeout("refX", &capped, base),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn least_loaded_spreads_and_ties_break_deterministically() {
        let ids = nodes(3);
        let mut sched = Scheduler::new(unbounded(&ids), SchedPolicy::LeastLoaded);
        // All empty: first slot wins the tie.
        let first = sched
            .pick("root/t", 0, &ImplHints::default(), None)
            .unwrap();
        assert_eq!(first.node, ids[0]);
        sched.note_dispatch(first.node, 1);
        // Next dispatch moves to the (now less loaded) second slot.
        let second = sched
            .pick("root/t", 0, &ImplHints::default(), None)
            .unwrap();
        assert_eq!(second.node, ids[1]);
        sched.note_dispatch(second.node, 1);
        let third = sched
            .pick("root/t", 0, &ImplHints::default(), None)
            .unwrap();
        assert_eq!(third.node, ids[2]);
        sched.note_dispatch(third.node, 1);
        // Releasing the middle one makes it least loaded again.
        sched.note_release(ids[1], 1);
        let again = sched
            .pick("root/t", 0, &ImplHints::default(), None)
            .unwrap();
        assert_eq!(again.node, ids[1]);
    }

    #[test]
    fn remaining_work_outweighs_bare_counts() {
        let ids = nodes(2);
        let long = hints(&[("duration_ms", "400")]);
        let short = hints(&[("duration_ms", "50")]);
        // Remaining-work: one 400ms task on node 0 outweighs two 50ms
        // tasks on node 1, so the next short task lands on node 1 even
        // though node 1 has more dispatches in flight.
        let mut sched = Scheduler::new(unbounded(&ids), SchedPolicy::LeastLoaded);
        sched.note_dispatch(ids[0], long.load_cost());
        sched.note_dispatch(ids[1], short.load_cost());
        sched.note_dispatch(ids[1], short.load_cost());
        assert_eq!(sched.pick("p", 0, &short, None).unwrap().node, ids[1]);
        // The count-based baseline picks the node with fewer dispatches
        // regardless of their declared durations.
        let mut count = Scheduler::new(unbounded(&ids), SchedPolicy::InFlightCount);
        count.note_dispatch(ids[0], long.load_cost());
        count.note_dispatch(ids[1], short.load_cost());
        count.note_dispatch(ids[1], short.load_cost());
        assert_eq!(count.pick("p", 0, &short, None).unwrap().node, ids[0]);
        // Releases restore the estimate exactly.
        sched.note_release(ids[0], long.load_cost());
        assert_eq!(sched.load_of(ids[0]), 0);
        assert_eq!(sched.pick("p", 0, &short, None).unwrap().node, ids[0]);
        // Hintless tasks cost one unit: remaining-work degenerates to
        // in-flight counting when nothing declares a duration.
        assert_eq!(ImplHints::default().load_cost(), 1);
    }

    #[test]
    fn capacity_prefers_unsaturated_and_reports_saturation() {
        let ids = nodes(2);
        let mut sched = Scheduler::new(
            vec![spec(ids[0], None, 1), spec(ids[1], None, 2)],
            SchedPolicy::LeastLoaded,
        );
        let h = ImplHints::default();
        assert!(!sched.all_saturated(&h));
        // Fill the serial executor: even though it is the least loaded
        // by remaining work, the picker must route around it.
        sched.note_dispatch(ids[0], 1);
        sched.note_dispatch(ids[1], 100);
        assert_eq!(sched.pick("p", 0, &h, None).unwrap().node, ids[1]);
        assert!(!sched.all_saturated(&h));
        // Fill the weighted executor too: everything is saturated.
        sched.note_dispatch(ids[1], 100);
        assert!(sched.all_saturated(&h));
        // A release frees a slot again.
        sched.note_release(ids[0], 1);
        assert!(!sched.all_saturated(&h));
        assert_eq!(sched.pick("p", 0, &h, None).unwrap().node, ids[0]);
    }

    #[test]
    fn saturation_is_per_eligible_set_and_ignores_unbounded() {
        let ids = nodes(3);
        let mut sched = Scheduler::new(
            vec![
                spec(ids[0], Some("paris"), 1),
                spec(ids[1], None, 1),
                spec(ids[2], None, 0),
            ],
            SchedPolicy::LeastLoaded,
        );
        let paris = hints(&[("location", "paris")]);
        sched.note_dispatch(ids[0], 1);
        // The pinned set is saturated even though the fleet is not…
        assert!(sched.all_saturated(&paris));
        assert!(!sched.all_saturated(&ImplHints::default()));
        // …an unbounded executor never saturates…
        sched.note_dispatch(ids[1], 1);
        for _ in 0..64 {
            sched.note_dispatch(ids[2], 1);
        }
        assert!(!sched.all_saturated(&ImplHints::default()));
        // …and an unsatisfiable pin is an error, not congestion.
        assert!(!sched.all_saturated(&hints(&[("location", "mars")])));
    }

    #[test]
    fn unsaturated_avoided_node_beats_saturated_alternative() {
        let ids = nodes(2);
        let mut sched = Scheduler::new(
            vec![spec(ids[0], None, 1), spec(ids[1], None, 1)],
            SchedPolicy::LeastLoaded,
        );
        // Node 1 is full; a retry avoiding node 0 must still land on
        // node 0 (capacity is a bound, relocation a preference) and be
        // flagged as having had no alternative.
        sched.note_dispatch(ids[1], 1);
        let placed = sched
            .pick("p", 1, &ImplHints::default(), Some(ids[0]))
            .unwrap();
        assert_eq!(placed.node, ids[0]);
        assert!(placed.no_alternative);
    }

    #[test]
    fn location_is_a_hard_constraint() {
        let ids = nodes(3);
        let sched = Scheduler::new(
            vec![
                spec(ids[0], None, 0),
                spec(ids[1], Some("paris"), 0),
                spec(ids[2], Some("tokyo"), 0),
            ],
            SchedPolicy::LeastLoaded,
        );
        let paris = hints(&[("location", "paris")]);
        assert_eq!(sched.pick("p", 0, &paris, None).unwrap().node, ids[1]);
        // Even when the pinned node is more loaded than the others.
        let mut sched = sched;
        for _ in 0..5 {
            sched.note_dispatch(ids[1], 1);
        }
        assert_eq!(sched.pick("p", 0, &paris, None).unwrap().node, ids[1]);
        // A location nobody carries is a diagnosable error.
        let mars = hints(&[("location", "mars")]);
        assert_eq!(
            sched.pick("p", 0, &mars, None),
            Err(SchedError::NoExecutorAt("mars".into()))
        );
    }

    #[test]
    fn empty_location_label_means_unpinned() {
        // An empty `location` value in the clause is no pin at all…
        let h = hints(&[("location", "")]);
        assert_eq!(h.location, None);
        // …and an executor registered with an empty label is
        // label-free, not installed at a location named `""` — the two
        // must not rendezvous as if "" were a real place.
        let ids = nodes(2);
        let mut sched = Scheduler::new(
            vec![spec(ids[0], Some(""), 0), spec(ids[1], None, 0)],
            SchedPolicy::LeastLoaded,
        );
        assert!(sched.snapshot().iter().all(|slot| slot.location.is_none()));
        // The empty-pinned task schedules like any unpinned task:
        // least-loaded over the whole fleet, no phantom constraint.
        sched.note_dispatch(ids[0], 1);
        assert_eq!(sched.pick("p", 0, &h, None).unwrap().node, ids[1]);
        // A real pin nobody carries still errors with its own name,
        // never the empty string.
        let mars = hints(&[("location", "mars")]);
        assert_eq!(
            sched.pick("p", 0, &mars, None),
            Err(SchedError::NoExecutorAt("mars".into()))
        );
    }

    #[test]
    fn retries_relocate_when_an_alternative_exists() {
        let ids = nodes(2);
        let sched = Scheduler::new(unbounded(&ids), SchedPolicy::LeastLoaded);
        let placed = sched
            .pick("root/t", 1, &ImplHints::default(), Some(ids[0]))
            .unwrap();
        assert_eq!(placed.node, ids[1]);
        assert!(!placed.no_alternative);
    }

    #[test]
    fn single_executor_retry_is_flagged_no_alternative() {
        let ids = nodes(1);
        let sched = Scheduler::new(unbounded(&ids), SchedPolicy::LeastLoaded);
        let placed = sched
            .pick("root/t", 1, &ImplHints::default(), Some(ids[0]))
            .unwrap();
        assert_eq!(placed.node, ids[0]);
        assert!(placed.no_alternative, "single executor cannot relocate");
        // A pinned retry whose location matches only the failed node is
        // flagged too.
        let ids = nodes(2);
        let sched = Scheduler::new(
            vec![spec(ids[0], Some("edge"), 0), spec(ids[1], None, 0)],
            SchedPolicy::LeastLoaded,
        );
        let placed = sched
            .pick("root/t", 2, &hints(&[("location", "edge")]), Some(ids[0]))
            .unwrap();
        assert_eq!(placed.node, ids[0]);
        assert!(placed.no_alternative);
    }

    #[test]
    fn path_hash_policy_reproduces_the_legacy_choice() {
        let ids = nodes(4);
        let sched = Scheduler::new(unbounded(&ids), SchedPolicy::PathHash);
        let path = "root/task";
        let mut hash = 0u64;
        for byte in path.bytes() {
            hash = hash.wrapping_mul(31).wrapping_add(u64::from(byte));
        }
        for attempt in 0..6 {
            let expected = ids[(hash.wrapping_add(u64::from(attempt)) % 4) as usize];
            assert_eq!(
                sched
                    .pick(path, attempt, &ImplHints::default(), None)
                    .unwrap()
                    .node,
                expected
            );
        }
    }

    #[test]
    fn release_never_underflows_and_reset_zeroes() {
        let ids = nodes(2);
        let mut sched = Scheduler::new(unbounded(&ids), SchedPolicy::LeastLoaded);
        sched.note_release(ids[0], 1);
        assert_eq!(sched.load_of(ids[0]), 0);
        sched.note_dispatch(ids[0], 1);
        sched.note_dispatch(ids[1], 1);
        sched.reset_loads();
        assert!(sched.snapshot().iter().all(|slot| slot.in_flight == 0));
    }
}
