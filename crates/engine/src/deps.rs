//! Dependency evaluation: input-set satisfaction and compound output
//! mapping, as pure functions over a view of published facts.
//!
//! Facts are the events the paper's execution service records in
//! persistent atomic objects:
//!
//! - an *output fact* `(task, output) → objects` exists once a task has
//!   produced that outcome/abort/repeat/mark,
//! - an *input fact* `(task, set) → objects` exists once a task has bound
//!   that input set (started executing with it).
//!
//! Evaluation semantics (paper §2/§4.3, plus DESIGN.md §5 decisions):
//!
//! - an input set is satisfied when every object slot has an available
//!   source and every notification has fired,
//! - alternatives are tried in declaration order; the first available
//!   wins,
//! - if several input sets are satisfied, the first-declared is chosen,
//! - compound outputs are evaluated in declaration order.

use std::collections::BTreeMap;

use flowscript_core::schema::{
    CompiledCond, CompiledInputSet, CompiledOutput, CompiledScope, CompiledSource, CompiledTask,
};

use crate::value::ObjectVal;

/// Read access to published facts.
pub trait FactView {
    /// Objects of an output fact, if produced.
    fn output_fact(&self, path: &str, output: &str) -> Option<BTreeMap<String, ObjectVal>>;
    /// Objects of an input-binding fact, if bound.
    fn input_fact(&self, path: &str, set: &str) -> Option<BTreeMap<String, ObjectVal>>;
}

/// An in-memory fact view for tests and for staged evaluation.
#[derive(Debug, Default, Clone)]
pub struct MemFacts {
    outputs: BTreeMap<(String, String), BTreeMap<String, ObjectVal>>,
    inputs: BTreeMap<(String, String), BTreeMap<String, ObjectVal>>,
}

impl MemFacts {
    /// An empty fact set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an output fact.
    pub fn add_output(
        &mut self,
        path: impl Into<String>,
        output: impl Into<String>,
        objects: BTreeMap<String, ObjectVal>,
    ) {
        self.outputs.insert((path.into(), output.into()), objects);
    }

    /// Records an input-binding fact.
    pub fn add_input(
        &mut self,
        path: impl Into<String>,
        set: impl Into<String>,
        objects: BTreeMap<String, ObjectVal>,
    ) {
        self.inputs.insert((path.into(), set.into()), objects);
    }
}

impl FactView for MemFacts {
    fn output_fact(&self, path: &str, output: &str) -> Option<BTreeMap<String, ObjectVal>> {
        self.outputs
            .get(&(path.to_string(), output.to_string()))
            .cloned()
    }

    fn input_fact(&self, path: &str, set: &str) -> Option<BTreeMap<String, ObjectVal>> {
        self.inputs
            .get(&(path.to_string(), set.to_string()))
            .cloned()
    }
}

/// The producing task's absolute path for a source evaluated within
/// `scope_path` (the path of the enclosing compound).
pub fn producer_path(scope_path: &str, source: &CompiledSource) -> String {
    if source.is_self {
        scope_path.to_string()
    } else {
        format!("{scope_path}/{}", source.task)
    }
}

/// Resolves one object source: `Some(value)` when available now.
pub fn resolve_object_source(
    scope_path: &str,
    source: &CompiledSource,
    facts: &dyn FactView,
) -> Option<ObjectVal> {
    let producer = producer_path(scope_path, source);
    let object = source.object.as_deref()?;
    let fact = match &source.cond {
        CompiledCond::Input(set) => facts.input_fact(&producer, set),
        CompiledCond::Output(output) => facts.output_fact(&producer, output),
        CompiledCond::AnyOf(outputs) => outputs
            .iter()
            .find_map(|output| facts.output_fact(&producer, output)),
    }?;
    fact.get(object).cloned()
}

/// Resolves one notification source: has it fired?
pub fn notification_fired(scope_path: &str, source: &CompiledSource, facts: &dyn FactView) -> bool {
    let producer = producer_path(scope_path, source);
    match &source.cond {
        CompiledCond::Input(set) => facts.input_fact(&producer, set).is_some(),
        CompiledCond::Output(output) => facts.output_fact(&producer, output).is_some(),
        CompiledCond::AnyOf(outputs) => outputs
            .iter()
            .any(|output| facts.output_fact(&producer, output).is_some()),
    }
}

/// Tries to satisfy one input set; `Some(bound objects)` on success.
pub fn eval_input_set(
    scope_path: &str,
    set: &CompiledInputSet,
    facts: &dyn FactView,
) -> Option<BTreeMap<String, ObjectVal>> {
    let mut bound = BTreeMap::new();
    for slot in &set.objects {
        let value = slot
            .sources
            .iter()
            .find_map(|source| resolve_object_source(scope_path, source, facts))?;
        bound.insert(slot.name.clone(), value);
    }
    for notification in &set.notifications {
        let fired = notification
            .sources
            .iter()
            .any(|source| notification_fired(scope_path, source, facts));
        if !fired {
            return None;
        }
    }
    Some(bound)
}

/// The first satisfied input set of a task, in declaration order
/// ("chosen deterministically", §2). Returns the set name and bound
/// objects.
pub fn eval_task_inputs(
    scope_path: &str,
    task: &CompiledTask,
    facts: &dyn FactView,
) -> Option<(String, BTreeMap<String, ObjectVal>)> {
    for set in &task.input_sets {
        if let Some(bound) = eval_input_set(scope_path, set, facts) {
            return Some((set.name.clone(), bound));
        }
    }
    None
}

/// Evaluates one compound output mapping. An output with no elements can
/// never be produced.
pub fn eval_output(
    scope_path: &str,
    output: &CompiledOutput,
    facts: &dyn FactView,
) -> Option<BTreeMap<String, ObjectVal>> {
    if output.objects.is_empty() && output.notifications.is_empty() {
        return None;
    }
    let mut mapped = BTreeMap::new();
    for slot in &output.objects {
        let value = slot
            .sources
            .iter()
            .find_map(|source| resolve_object_source(scope_path, source, facts))?;
        mapped.insert(slot.name.clone(), value);
    }
    for notification in &output.notifications {
        let fired = notification
            .sources
            .iter()
            .any(|source| notification_fired(scope_path, source, facts));
        if !fired {
            return None;
        }
    }
    Some(mapped)
}

/// All currently satisfied outputs of a scope, in declaration order.
pub fn eval_scope_outputs<'a>(
    scope_path: &str,
    scope: &'a CompiledScope,
    facts: &dyn FactView,
) -> Vec<(&'a CompiledOutput, BTreeMap<String, ObjectVal>)> {
    scope
        .outputs
        .iter()
        .filter_map(|output| {
            eval_output(scope_path, output, facts).map(|objects| (output, objects))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::samples;
    use flowscript_core::schema::{compile_source, Schema, TaskBody};

    fn order_schema() -> Schema {
        compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap()
    }

    fn objects(pairs: &[(&str, &str, &str)]) -> BTreeMap<String, ObjectVal> {
        pairs
            .iter()
            .map(|(name, class, text)| ((*name).to_string(), ObjectVal::text(*class, *text)))
            .collect()
    }

    #[test]
    fn order_pipeline_readiness_progression() {
        let schema = order_schema();
        let scope_path = "processOrderApplication";
        let mut facts = MemFacts::new();

        let auth = schema.root.task("paymentAuthorisation").unwrap();
        let dispatch = schema.root.task("dispatch").unwrap();
        let capture = schema.root.task("paymentCapture").unwrap();

        // Nothing ready before the root inputs are bound.
        assert!(eval_task_inputs(scope_path, auth, &facts).is_none());

        // Bind root inputs: auth and checkStock become ready.
        facts.add_input(scope_path, "main", objects(&[("order", "Order", "o-1")]));
        let (set, bound) = eval_task_inputs(scope_path, auth, &facts).unwrap();
        assert_eq!(set, "main");
        assert_eq!(bound["order"].as_text(), "o-1");

        // dispatch needs checkStock's output AND auth's notification.
        assert!(eval_task_inputs(scope_path, dispatch, &facts).is_none());
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockAvailable",
            objects(&[("stockInfo", "StockInfo", "s")]),
        );
        assert!(
            eval_task_inputs(scope_path, dispatch, &facts).is_none(),
            "notification from paymentAuthorisation still missing"
        );
        facts.add_output(
            "processOrderApplication/paymentAuthorisation",
            "authorised",
            objects(&[("paymentInfo", "PaymentInfo", "p")]),
        );
        let (_, bound) = eval_task_inputs(scope_path, dispatch, &facts).unwrap();
        assert_eq!(bound["stockInfo"].as_text(), "s");

        // paymentCapture waits on dispatch.
        assert!(eval_task_inputs(scope_path, capture, &facts).is_none());
        facts.add_output(
            "processOrderApplication/dispatch",
            "dispatchCompleted",
            objects(&[("dispatchNote", "DispatchNote", "n")]),
        );
        let (_, bound) = eval_task_inputs(scope_path, capture, &facts).unwrap();
        assert_eq!(bound["paymentInfo"].as_text(), "p");
    }

    #[test]
    fn compound_outcome_mapping_requires_all_elements() {
        let schema = order_schema();
        let scope_path = "processOrderApplication";
        let mut facts = MemFacts::new();

        // orderCompleted needs paymentCapture's notification AND the
        // dispatch note object.
        facts.add_output(
            "processOrderApplication/dispatch",
            "dispatchCompleted",
            objects(&[("dispatchNote", "DispatchNote", "n")]),
        );
        assert!(eval_scope_outputs(scope_path, &schema.root, &facts).is_empty());
        facts.add_output(
            "processOrderApplication/paymentCapture",
            "done",
            BTreeMap::new(),
        );
        let satisfied = eval_scope_outputs(scope_path, &schema.root, &facts);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].0.name, "orderCompleted");
        assert_eq!(satisfied[0].1["dispatchNote"].as_text(), "n");
    }

    #[test]
    fn cancelled_path_uses_alternative_notifications() {
        let schema = order_schema();
        let scope_path = "processOrderApplication";
        let mut facts = MemFacts::new();
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockNotAvailable",
            BTreeMap::new(),
        );
        let satisfied = eval_scope_outputs(scope_path, &schema.root, &facts);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].0.name, "orderCancelled");
    }

    #[test]
    fn alternative_sources_first_available_wins() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let br = schema.root.task("businessReservation").unwrap();
        let scope_path = "tripReservation";
        let mut facts = MemFacts::new();

        // Only the repeat fact available: second alternative used.
        facts.add_output(
            "tripReservation/businessReservation",
            "retry",
            objects(&[("user", "User", "retry-user")]),
        );
        let (_, bound) = eval_task_inputs(scope_path, br, &facts).unwrap();
        assert_eq!(bound["user"].as_text(), "retry-user");

        // Both available: first-declared (parent input) wins.
        facts.add_input(
            scope_path,
            "main",
            objects(&[("user", "User", "fresh-user")]),
        );
        let (_, bound) = eval_task_inputs(scope_path, br, &facts).unwrap();
        assert_eq!(bound["user"].as_text(), "fresh-user");
    }

    #[test]
    fn redundant_airline_queries_any_one_suffices() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let br = schema.root.task("businessReservation").unwrap();
        let flowscript_core::schema::TaskBody::Scope(br_scope) = &br.body else {
            panic!();
        };
        let scope_path = "tripReservation/businessReservation/checkFlightReservation";
        let cfr = br_scope.task("checkFlightReservation").unwrap();
        let flowscript_core::schema::TaskBody::Scope(cfr_scope) = &cfr.body else {
            panic!();
        };
        let mut facts = MemFacts::new();
        // Airline B answers first; flightFound fires on it alone.
        facts.add_output(
            format!("{scope_path}/airlineQueryB"),
            "found",
            objects(&[("flightList", "FlightList", "flights-B")]),
        );
        let satisfied = eval_scope_outputs(scope_path, cfr_scope, &facts);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].0.name, "flightFound");
        assert_eq!(satisfied[0].1["flightList"].as_text(), "flights-B");
    }

    #[test]
    fn input_set_declaration_order_is_preference_order() {
        // A two-set task: both satisfiable, first declared wins.
        let source = r#"
            class C;
            taskclass Two {
                inputs {
                    input primary { a of class C };
                    input fallback { b of class C }
                };
                outputs { outcome done { } }
            }
            taskclass P {
                inputs { input main { x of class C } };
                outputs { outcome ok { a of class C; b of class C } }
            }
            taskclass Root {
                inputs { input main { x of class C } };
                outputs { outcome done { } }
            }
            compoundtask root of taskclass Root {
                task p of taskclass P {
                    inputs { input main { inputobject x from { x of task root if input main } } }
                };
                task two of taskclass Two {
                    inputs {
                        input primary { inputobject a from { a of task p if output ok } };
                        input fallback { inputobject b from { b of task p if output ok } }
                    }
                };
                outputs { outcome done { notification from { task two if output done } } }
            }
        "#;
        let schema = compile_source(source, "root").unwrap();
        let two = schema.root.task("two").unwrap();
        let mut facts = MemFacts::new();
        facts.add_output("root/p", "ok", objects(&[("a", "C", "A"), ("b", "C", "B")]));
        let (set, bound) = eval_task_inputs("root", two, &facts).unwrap();
        assert_eq!(set, "primary");
        assert_eq!(bound["a"].as_text(), "A");
    }

    #[test]
    fn empty_output_mapping_never_fires() {
        let output = CompiledOutput {
            name: "never".into(),
            kind: flowscript_core::ast::OutputKind::Outcome,
            objects: vec![],
            notifications: vec![],
        };
        assert!(eval_output("x", &output, &MemFacts::new()).is_none());
    }

    #[test]
    fn nested_compound_constituents_draw_from_compound_input() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let br = schema.root.task("businessReservation").unwrap();
        let TaskBody::Scope(br_scope) = &br.body else {
            panic!();
        };
        let da = br_scope.task("dataAcquisition").unwrap();
        let scope_path = "tripReservation/businessReservation";
        let mut facts = MemFacts::new();
        assert!(eval_task_inputs(scope_path, da, &facts).is_none());
        facts.add_input(scope_path, "main", objects(&[("user", "User", "u")]));
        let (_, bound) = eval_task_inputs(scope_path, da, &facts).unwrap();
        assert_eq!(bound["user"].as_text(), "u");
    }
}
