//! Task executor nodes.
//!
//! An executor receives `StartTask` messages, binds the named
//! implementation through the shared [`ImplRegistry`], plays the resulting
//! [`crate::TaskBehavior`] out in simulated time (marks at their offsets,
//! completion after the work duration) and reports back with one-way
//! messages. Executors hold **no durable state**: a crash simply loses
//! in-flight work, which the coordinator's watchdogs turn into bounded
//! retries on another node.
//!
//! Per §4.3 an implementation name may refer to *a script*; such bindings
//! run a complete nested workflow (own simulated world, same registry)
//! and map its root outcome onto this task's completion.
//!
//! An executor registers a **location label** at install time
//! ([`ExecutorProfile::location`]): the coordinators' schedulers treat
//! a task's `location` hint as a hard placement constraint, and the
//! executor itself double-checks the pin on arrival (a mispinned task
//! is rejected as an execution error instead of silently running in
//! the wrong place). A profile can also declare a **capacity**: `k`
//! concurrent task slots, later arrivals queueing behind the earliest
//! free slot in virtual time (`k = 1` is the serial model the
//! `scheduled` bench variant runs on; `0` keeps the legacy
//! infinitely-parallel node). The same capacity is registered with
//! every coordinator's scheduler, which parks dispatches instead of
//! queueing them here once all eligible executors are saturated.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use flowscript_sim::{Envelope, NodeId, SimDuration, SimTime, World};

use crate::impl_registry::{ImplRegistry, Invocation, InvokeCtx, TaskBehavior};
use crate::msg::{EngineMsg, MarkMsg, StartTask, TaskDone, TaskResult};

thread_local! {
    /// Nested-script recursion guard (a script bound as its own
    /// implementation would otherwise recurse forever).
    static NESTING: Cell<u32> = const { Cell::new(0) };
}

/// Maximum depth of script-as-implementation nesting.
pub const MAX_SCRIPT_NESTING: u32 = 8;

/// How one executor node is deployed.
#[derive(Debug, Clone, Default)]
pub struct ExecutorProfile {
    /// The node's location label. Registered with every coordinator's
    /// scheduler and re-checked on arrival against the task's
    /// `location` hint.
    pub location: Option<String>,
    /// Concurrent task slots: `k` tasks run at a time, later arrivals
    /// queueing behind the earliest-free slot in virtual time (FIFO by
    /// arrival within a slot). `1` is the serial model; the default
    /// `0` keeps the legacy infinitely-parallel node, where load only
    /// shows in the coordinator's in-flight counters, never in virtual
    /// latency.
    ///
    /// Caveat: the queue reservation is made at arrival and there is
    /// no cancel protocol, so an attempt the coordinator abandons (a
    /// watchdog firing while the task is still queued) keeps its slot
    /// and the retry queues *behind* it. Bounded fleets should pair
    /// with watchdog timeouts generous relative to the expected queue
    /// depth (as the `scheduled` bench and tests do) — though with
    /// capacity-aware scheduling the coordinator parks excess
    /// dispatches instead of queueing them here, so in practice at
    /// most `capacity` tasks occupy the node at once.
    pub capacity: u32,
}

impl ExecutorProfile {
    /// A serial profile (`capacity = 1`) at an optional location — the
    /// shape the old `serial: bool` flag produced.
    pub fn serial(location: Option<String>) -> Self {
        ExecutorProfile {
            location,
            capacity: 1,
        }
    }
}

/// Installs the executor handler on `node` with the default profile
/// (no location label, parallel capacity). Results are reported to
/// whichever coordinator dispatched the task (executors are shared by
/// every shard of a multi-coordinator system).
pub fn install(world: &mut World, node: NodeId, registry: ImplRegistry) {
    install_with(world, node, registry, ExecutorProfile::default());
}

/// [`install`] with an explicit deployment profile (location label,
/// capacity model).
pub fn install_with(
    world: &mut World,
    node: NodeId,
    registry: ImplRegistry,
    profile: ExecutorProfile,
) {
    // One queue tail per declared slot: the next free moment of each.
    // Empty (capacity 0) means unbounded — no queueing at all.
    let tails = Rc::new(RefCell::new(vec![SimTime::ZERO; profile.capacity as usize]));
    world.set_handler(node, move |world, envelope| {
        handle(world, node, &registry, &profile, &tails, envelope);
    });
}

fn handle(
    world: &mut World,
    node: NodeId,
    registry: &ImplRegistry,
    profile: &ExecutorProfile,
    tails: &Rc<RefCell<Vec<SimTime>>>,
    envelope: &Envelope,
) {
    let Ok(EngineMsg::Start(start)) = flowscript_codec::from_bytes::<EngineMsg>(&envelope.payload)
    else {
        return;
    };
    // Reply to the shard that dispatched this task, not a fixed node.
    let coordinator = envelope.src;
    // Location guard: the scheduler should never mispin, but a task
    // arriving at the wrong place must fail loudly, not run quietly.
    if let Some(pinned) = start.hints().location {
        if profile.location.as_deref() != Some(pinned.as_str()) {
            let reason = format!(
                "task pinned to location `{pinned}` arrived at an executor registered {}",
                match &profile.location {
                    Some(label) => format!("at `{label}`"),
                    None => "without a location".to_string(),
                }
            );
            send_done(
                world,
                node,
                coordinator,
                &start,
                TaskResult::ExecError { reason },
            );
            return;
        }
    }
    let ctx = InvokeCtx {
        path: start.path.clone(),
        incarnation: start.incarnation,
        attempt: start.attempt,
        set: start.set.clone(),
        inputs: start.inputs.clone(),
        repeat_objects: start.repeat_objects.clone(),
        implementation: start.implementation.clone(),
    };
    let behavior = match registry.invoke(&start.code, &ctx) {
        Err(reason) => {
            send_done(
                world,
                node,
                coordinator,
                &start,
                TaskResult::ExecError { reason },
            );
            return;
        }
        Ok(Invocation::Behavior(behavior)) => behavior,
        Ok(Invocation::Script { source, root }) => {
            match run_nested_script(registry, &source, &root, &start) {
                Ok(behavior) => behavior,
                Err(reason) => {
                    send_done(
                        world,
                        node,
                        coordinator,
                        &start,
                        TaskResult::ExecError { reason },
                    );
                    return;
                }
            }
        }
    };
    // Bounded capacity: the task takes the earliest-free slot, waits
    // for its tail before the work (and marks) begin, and advances
    // that tail by its work time. Slot index breaks ties (stable, so
    // runs stay deterministic). No slots = unbounded, zero delay.
    let queue_delay = {
        let mut tails = tails.borrow_mut();
        match tails.iter().enumerate().min_by_key(|(_, tail)| **tail) {
            Some((slot, _)) => {
                let now = world.now();
                let tail = tails[slot].max(now);
                let delay = tail.since(now);
                tails[slot] = tail + behavior.work;
                delay
            }
            None => SimDuration::ZERO,
        }
    };
    play_behavior(world, node, coordinator, &start, behavior, queue_delay);
}

/// Schedules the behaviour's marks and completion in simulated time,
/// `queue_delay` after now (the node's serial queue, zero on parallel
/// nodes).
fn play_behavior(
    world: &mut World,
    node: NodeId,
    coordinator: NodeId,
    start: &StartTask,
    behavior: TaskBehavior,
    queue_delay: SimDuration,
) {
    for mark in behavior.marks {
        let msg = EngineMsg::Mark(MarkMsg {
            instance: start.instance.clone(),
            path: start.path.clone(),
            incarnation: start.incarnation,
            attempt: start.attempt,
            mark: mark.name,
            objects: mark.objects,
            epoch: start.epoch,
        });
        let at = queue_delay + mark.at.min(behavior.work);
        world.schedule_node_after(node, at, move |world| {
            world.send(node, coordinator, flowscript_codec::to_bytes(&msg));
        });
    }
    let done = TaskResult::Output {
        name: behavior.completion.outcome,
        objects: behavior.completion.objects,
        redo_after: behavior.redo_after,
    };
    let start = start.clone();
    world.schedule_node_after(node, queue_delay + behavior.work, move |world| {
        send_done(world, node, coordinator, &start, done);
    });
}

fn send_done(
    world: &mut World,
    node: NodeId,
    coordinator: NodeId,
    start: &StartTask,
    result: TaskResult,
) {
    let msg = EngineMsg::Done(TaskDone {
        instance: start.instance.clone(),
        path: start.path.clone(),
        incarnation: start.incarnation,
        attempt: start.attempt,
        result,
        epoch: start.epoch,
    });
    world.send(node, coordinator, flowscript_codec::to_bytes(&msg));
}

/// Runs a nested workflow for a script-bound implementation and maps its
/// root outcome onto this task's behaviour. The nested run uses its own
/// simulated world; its virtual elapsed time becomes this task's `work`.
fn run_nested_script(
    registry: &ImplRegistry,
    source: &str,
    root: &str,
    start: &StartTask,
) -> Result<TaskBehavior, String> {
    let depth = NESTING.with(|n| n.get());
    if depth >= MAX_SCRIPT_NESTING {
        return Err(format!(
            "script nesting deeper than {MAX_SCRIPT_NESTING} (implementation cycle?)"
        ));
    }
    NESTING.with(|n| n.set(depth + 1));
    let result = (|| {
        let mut nested = crate::api::WorkflowSystem::builder()
            .executors(1)
            .seed(u64::from(start.attempt).wrapping_add(0x5eed))
            .registry(registry.clone())
            .build();
        nested
            .register_script("nested", source, root)
            .map_err(|e| format!("nested script invalid: {e}"))?;
        let inputs: Vec<(String, crate::ObjectVal)> = start
            .inputs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        nested
            .start_with("nested-run", "nested", &start.set, inputs)
            .map_err(|e| format!("nested start failed: {e}"))?;
        nested.run();
        let elapsed = nested.now().since(flowscript_sim::SimTime::ZERO);
        match nested.outcome("nested-run") {
            Some(outcome) => {
                let mut behavior = TaskBehavior::outcome(outcome.name)
                    .with_work(elapsed.max(SimDuration::from_millis(1)));
                for (name, value) in outcome.objects {
                    behavior = behavior.with_object(name, value);
                }
                Ok(behavior)
            }
            None => Err("nested workflow did not complete".to_string()),
        }
    })();
    NESTING.with(|n| n.set(depth));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_counter_restores_after_guard() {
        NESTING.with(|n| n.set(MAX_SCRIPT_NESTING));
        let start = StartTask {
            instance: "i".into(),
            path: "p".into(),
            incarnation: 0,
            attempt: 0,
            code: "c".into(),
            implementation: Default::default(),
            set: "main".into(),
            inputs: Default::default(),
            repeat_objects: Default::default(),
            epoch: 1,
        };
        let registry = ImplRegistry::new();
        let err = run_nested_script(&registry, "class C;", "root", &start).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        NESTING.with(|n| n.set(0));
    }
}
