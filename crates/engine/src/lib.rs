#![warn(missing_docs)]
//! The flowscript execution environment: a transactional workflow system.
//!
//! This crate is the paper's §3 "execution environment", rebuilt on the
//! crate stack below it:
//!
//! - a **Workflow Repository Service** ([`repository`]) that stores,
//!   validates and versions scripts,
//! - a **Workflow Execution Service** ([`coordinator`]) that records
//!   inter-task dependencies in persistent atomic objects
//!   (`flowscript-tx`), drives tasks through the Fig. 3 state machine,
//!   propagates dataflow and notifications under atomic transactions,
//!   retries system-level failures a bounded number of times, and
//!   survives coordinator crashes by write-ahead-log recovery,
//! - **task executors** ([`executor`]) on separate simulated nodes,
//!   running implementations bound *at run time* by name
//!   ([`ImplRegistry`]), including the built-in timer,
//! - **adaptive, load-aware scheduling** ([`sched`]): dispatch honors
//!   the implementation clause's typed hints — `location` as a hard
//!   placement constraint, `priority` ordering ready tasks, declared
//!   durations/deadlines shaping the watchdog — picks the least loaded
//!   eligible executor (respecting declared **capacities**, parking
//!   excess dispatches in a priority-ordered ready queue), relocates
//!   retries off failed nodes, and feeds **observed completion times**
//!   ([`CostModel`]) back into load costs and watchdog timeouts; a
//!   per-shard **admission cap**
//!   ([`EngineConfig::max_inflight_instances`]) queues or rejects
//!   (typed [`EngineError::Busy`]) excess instance starts,
//! - **dynamic reconfiguration** ([`reconfig`]): transactional
//!   addition/removal of tasks and dependencies in a running instance,
//!   and implementation rebinding (online upgrade),
//! - **sharded coordinators** ([`shard`]): instance ownership split
//!   across multiple execution-service nodes by rendezvous hash of the
//!   instance name, each shard owning its facts, WAL and worklists,
//!   with misdirected requests forwarded and per-shard crash recovery,
//! - **live rebalancing**: epoch-versioned shard maps with hop-capped
//!   forwarding, and [`WorkflowSystem::add_coordinator`] /
//!   [`WorkflowSystem::rebalance`] moving running instances between
//!   shards as batched two-phase hand-offs — dual delivery of executor
//!   reports during the window, WAL-framed intent/decision records for
//!   crash repair,
//! - a high-level facade, [`WorkflowSystem`], that wires all services
//!   onto `flowscript-sim` nodes (the paper's Fig. 4 topology).
//!
//! # Examples
//!
//! ```
//! use flowscript_engine::{ObjectVal, TaskBehavior, WorkflowSystem};
//!
//! let mut sys = WorkflowSystem::builder().executors(2).seed(7).build();
//! sys.register_script("quickstart", flowscript_core::samples::QUICKSTART, "pipeline")
//!     .expect("valid script");
//! sys.bind_fn("refProduce", |ctx| {
//!     let seed = ctx.input_text("seed");
//!     TaskBehavior::outcome("produced")
//!         .with_object("message", ObjectVal::text("Message", format!("{seed}!")))
//! });
//! sys.bind_fn("refConsume", |ctx| {
//!     TaskBehavior::outcome("consumed")
//!         .with_object("result", ObjectVal::text("Message", ctx.input_text("message")))
//! });
//! sys.start(
//!     "run1",
//!     "quickstart",
//!     "main",
//!     [("seed", ObjectVal::text("Message", "hello"))],
//! )
//! .expect("instance starts");
//! sys.run();
//! let outcome = sys.outcome("run1").expect("completed");
//! assert_eq!(outcome.name, "done");
//! assert_eq!(outcome.objects["result"].as_text(), "hello!");
//! ```

pub mod api;
pub mod coordinator;
pub mod deps;
mod error;
pub mod executor;
pub mod facts;
pub mod impl_registry;
pub mod keys;
mod msg;
pub mod reconfig;
pub mod repository;
pub mod sched;
pub mod shard;
pub mod state;
mod value;

pub use api::{
    DrainReport, FailoverReport, KillPoint, RebalanceReport, SystemBuilder, WorkflowSystem,
};
pub use coordinator::{
    CommitBatch, CoordStats, DispatchRecord, EngineConfig, HandoffPackage, InstanceStatus, Outcome,
    MAX_FORWARD_HOPS,
};
pub use error::EngineError;
pub use facts::StoreFacts;
pub use flowscript_obs::{
    FlightRecorder, ObsEvent, ObsEventKind, ObserveLevel, Registry, Snapshot,
};
pub use flowscript_tx::{SharedFileStorage, SharedStorage, StableStore};
pub use impl_registry::{
    Completion, ImplRegistry, InvokeCtx, MarkEmission, TaskBehavior, TaskImpl,
};
pub use keys::InstanceKeys;
pub use reconfig::Reconfig;
pub use sched::{CostModel, ExecutorSlot, ExecutorSpec, ImplHints, SchedPolicy, Scheduler};
pub use shard::ShardMap;
pub use state::{CbState, TaskCb};
pub use value::ObjectVal;
