//! Per-instance interned storage keys.
//!
//! A live instance resolves every hot-path storage access through an
//! [`InstanceKeys`] table built **once** at instance start (and rebuilt
//! on reconfiguration, when the plan itself changes): control-block
//! uids are formatted exactly once per task, and every plan dependency
//! source gets its probed fact's dense [`FactKey`]s precomputed — both
//! the fact's *presence* sub-key (`obj = 0`, existence answers
//! "fired?") and the *data* sub-key of the one object the source takes
//! (`obj = ordinal + 1`, holding exactly that object's bytes) — so a
//! readiness probe is a single point read with zero record decode, and
//! an output commit, a subtree cancel/reset or a stuck diagnostic never
//! formats a string.

use flowscript_plan::{Plan, PlanCond, Probe, TaskId};
use flowscript_tx::{FactKey, ObjectUid};

/// Formats a control-block uid (used once per task at table build, and
/// by cold administrative paths).
pub(crate) fn cb_uid(instance: &str, path: &str) -> ObjectUid {
    ObjectUid::new(format!("inst/{instance}/cb/{path}"))
}

/// The two dense keys one dependency probe resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeKeys {
    /// The probed fact's presence sub-key (`obj = 0`): it exists iff
    /// the fact fired, and its payload carries only objects with no
    /// declared ordinal.
    pub presence: FactKey,
    /// The sub-key holding the probed object's value alone (`None` for
    /// notifications, or when the object is undeclared at the producer
    /// — such a value, if published at all, lives in the presence
    /// record).
    pub data: Option<FactKey>,
}

/// The interned key table of one live instance.
pub struct InstanceKeys {
    /// The instance's dense numeric id (the fact key namespace).
    pub instance_id: u32,
    /// Per task id: its control-block uid.
    cb: Vec<ObjectUid>,
    /// Per plan source index: the probed fact's keys (`None` when the
    /// producer no longer exists or the named set/output is
    /// undeclared — a probe that can never fire).
    source: Vec<Option<ProbeKeys>>,
    /// Per `any_pool` index: the `AnyOf` candidate output's keys.
    any: Vec<Option<ProbeKeys>>,
}

impl InstanceKeys {
    /// Builds the table for `plan` (one pass over the source pool).
    pub fn build(plan: &Plan, instance: &str, instance_id: u32) -> Self {
        let cb = plan
            .tasks
            .iter()
            .map(|task| cb_uid(instance, plan.str(task.path)))
            .collect();
        let mut source = vec![None; plan.sources.len()];
        let mut any = vec![None; plan.any_pool.len()];
        for (idx, src) in plan.sources.iter().enumerate() {
            let Some(producer) = src.producer else {
                continue;
            };
            let class = plan.class_of(plan.task(producer));
            let with_data = |base: FactKey| ProbeKeys {
                presence: base,
                data: src.object_ordinal.map(|ordinal| base.object(ordinal)),
            };
            match &src.cond {
                PlanCond::Input(set) => {
                    source[idx] = plan
                        .class_set_ordinal_by_id(class, *set)
                        .map(|item| with_data(FactKey::input(instance_id, producer, item)));
                }
                PlanCond::Output(output) => {
                    source[idx] = plan
                        .class_output_ordinal_by_id(class, *output)
                        .map(|item| with_data(FactKey::output(instance_id, producer, item)));
                }
                PlanCond::AnyOf(candidates) => {
                    for cand_idx in candidates.iter() {
                        any[cand_idx] = plan
                            .class_output_ordinal_by_id(class, plan.any_pool[cand_idx])
                            .map(|item| {
                                let base = FactKey::output(instance_id, producer, item);
                                ProbeKeys {
                                    presence: base,
                                    data: plan.any_obj_ordinals[cand_idx]
                                        .map(|ordinal| base.object(ordinal)),
                                }
                            });
                    }
                }
            }
        }
        Self {
            instance_id,
            cb,
            source,
            any,
        }
    }

    /// The control-block uid of a task.
    pub fn cb(&self, task: TaskId) -> &ObjectUid {
        &self.cb[task as usize]
    }

    /// Resolves an evaluation probe to its interned fact keys — pure
    /// index lookups, no strings touched.
    pub fn probe_keys(&self, probe: &Probe<'_>) -> Option<ProbeKeys> {
        match probe.candidate {
            Some(cand) => self.any[cand as usize],
            None => self.source[probe.source as usize],
        }
    }

    /// The presence sub-key of `task`'s output fact named `name`
    /// (commit paths; the name arrives from the wire, so one short scan
    /// over the class's declared outputs compares interned strings — no
    /// allocation).
    pub fn out_key(&self, plan: &Plan, task: TaskId, name: &str) -> Option<FactKey> {
        let class = plan.class_of(plan.task(task));
        plan.class_output_ordinal(class, name)
            .map(|item| FactKey::output(self.instance_id, task, item))
    }

    /// The presence sub-key of `task`'s input-binding fact for set
    /// `name`.
    pub fn in_key(&self, plan: &Plan, task: TaskId, name: &str) -> Option<FactKey> {
        let class = plan.class_of(plan.task(task));
        plan.class_set_ordinal(class, name)
            .map(|item| FactKey::input(self.instance_id, task, item))
    }

    /// The inclusive key range holding `task`'s input-binding facts
    /// (all items, all object sub-keys).
    pub fn input_fact_range(&self, task: TaskId) -> (FactKey, FactKey) {
        (
            FactKey::input(self.instance_id, task, 0),
            FactKey::input(self.instance_id, task, u32::MAX).fact_last(),
        )
    }

    /// The inclusive key range holding every fact of every *strict*
    /// descendant of `scope` — one contiguous range, because plans
    /// number tasks in DFS pre-order. `None` for childless scopes.
    pub fn subtree_fact_range(&self, plan: &Plan, scope: TaskId) -> Option<(FactKey, FactKey)> {
        let end = plan.task(scope).subtree_end;
        if end <= scope + 1 {
            return None;
        }
        Some((
            FactKey::task_first(self.instance_id, scope + 1),
            FactKey::task_last(self.instance_id, end - 1),
        ))
    }

    /// The inclusive key range holding every fact of the instance.
    pub fn instance_fact_range(&self) -> (FactKey, FactKey) {
        (
            FactKey::instance_first(self.instance_id),
            FactKey::instance_last(self.instance_id),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::schema::compile_source;
    use flowscript_tx::FactKind;

    fn order_plan() -> Plan {
        let schema = compile_source(
            flowscript_core::samples::ORDER_PROCESSING,
            "processOrderApplication",
        )
        .unwrap();
        Plan::lower(&schema)
    }

    #[test]
    fn every_source_of_a_live_plan_resolves() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i1", 3);
        for (idx, source) in plan.sources.iter().enumerate() {
            match &source.cond {
                PlanCond::AnyOf(range) => {
                    for cand in range.iter() {
                        assert!(keys.any[cand].is_some(), "candidate {cand} unresolved");
                    }
                }
                _ => assert!(keys.source[idx].is_some(), "source {idx} unresolved"),
            }
            // Dataflow sources resolve their object's data sub-key too.
            if source.object.is_some() && !matches!(source.cond, PlanCond::AnyOf(_)) {
                assert!(
                    keys.source[idx].unwrap().data.is_some(),
                    "source {idx} lost its object sub-key"
                );
            }
        }
        for probe in keys.source.iter().flatten() {
            assert_eq!(probe.presence.instance, 3);
            assert_eq!(probe.presence.obj, 0, "presence keys address sub-object 0");
            if let Some(data) = probe.data {
                assert!(data.obj >= 1, "data keys address declared sub-objects");
                assert_eq!(data.with_obj(0), probe.presence);
            }
        }
    }

    #[test]
    fn write_keys_match_probe_keys() {
        let plan = order_plan();
        let keys = InstanceKeys::build(&plan, "i1", 0);
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        // The key the commit path writes under must be the key probes
        // read from: find the source probing checkStock/stockAvailable.
        let written = keys.out_key(&plan, check, "stockAvailable").unwrap();
        assert_eq!(written.kind, FactKind::Output);
        let probed = plan
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.producer == Some(check))
            .filter_map(|(idx, s)| match &s.cond {
                PlanCond::Output(name) if plan.str(*name) == "stockAvailable" => keys.source[idx],
                _ => None,
            })
            .next()
            .expect("stockAvailable is probed");
        assert_eq!(written, probed.presence);
        // The data sub-key addresses stockInfo — declared ordinal 0.
        assert_eq!(probed.data, Some(written.object(0)));
    }

    #[test]
    fn subtree_range_is_contiguous() {
        let schema =
            compile_source(flowscript_core::samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let plan = Plan::lower(&schema);
        let keys = InstanceKeys::build(&plan, "t", 1);
        let scope = plan
            .task_by_path("tripReservation/businessReservation")
            .unwrap();
        let (lo, hi) = keys.subtree_fact_range(&plan, scope).unwrap();
        assert_eq!(lo.task, scope + 1);
        assert_eq!(hi.task, plan.task(scope).subtree_end - 1);
        assert_eq!(hi.obj, u32::MAX, "ranges span every object sub-key");
        // A leaf has no descendants.
        let leaf = plan.task_by_path("tripReservation/printTickets").unwrap();
        assert!(keys.subtree_fact_range(&plan, leaf).is_none());
        let (ilo, ihi) = keys.instance_fact_range();
        assert!(ilo <= lo && hi <= ihi);
        let (nlo, nhi) = keys.input_fact_range(scope);
        assert!(ilo <= nlo && nhi <= ihi);
    }
}
