use std::fmt;
use std::marker::PhantomData;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// Identifies a transaction (atomic action).
///
/// Ordering is by `(seq, node)`: the sequence number gives the global age
/// used by the wait-die deadlock policy, with the node id as tie-breaker
/// for transactions begun on different nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId {
    node: u32,
    seq: u64,
}

impl TxId {
    /// Creates an id from its parts.
    pub fn new(node: u32, seq: u64) -> Self {
        Self { node, seq }
    }

    /// The node that began the transaction.
    pub fn node(self) -> u32 {
        self.node
    }

    /// The per-manager sequence number.
    pub fn seq(self) -> u64 {
        self.seq
    }

    /// Whether `self` is older (began earlier) than `other` — the wait-die
    /// seniority test.
    pub fn is_older_than(self, other: TxId) -> bool {
        (self.seq, self.node) < (other.seq, other.node)
    }
}

impl PartialOrd for TxId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TxId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.seq, self.node).cmp(&(other.seq, other.node))
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}.{}", self.node, self.seq)
    }
}

impl Encode for TxId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.node);
        w.put_u64(self.seq);
    }
}

impl Decode for TxId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let node = r.get_u32()?;
        let seq = r.get_u64()?;
        Ok(TxId { node, seq })
    }
}

/// Names a persistent object in the store.
///
/// Uids are plain strings so that engine state is self-describing in the
/// log (e.g. `"instance/3/task/order/dispatch"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectUid(String);

impl ObjectUid {
    /// Creates a uid from a path-like name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Creates a child uid by appending `/segment`.
    pub fn child(&self, segment: &str) -> ObjectUid {
        ObjectUid(format!("{}/{}", self.0, segment))
    }
}

impl fmt::Display for ObjectUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectUid {
    fn from(s: &str) -> Self {
        ObjectUid::new(s)
    }
}

impl Encode for ObjectUid {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.0);
    }
}

impl Decode for ObjectUid {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(ObjectUid(r.get_str()?.to_owned()))
    }
}

/// A typed handle to a persistent object: an [`ObjectUid`] that remembers
/// what type it stores, so reads and writes cannot mix types up.
///
/// ```
/// use flowscript_tx::{Handle, TxManager};
///
/// # fn main() -> Result<(), flowscript_tx::TxError> {
/// let mut mgr = TxManager::in_memory();
/// let counter: Handle<u64> = Handle::new("counter");
/// let a = mgr.begin();
/// mgr.write_handle(&a, &counter, &7)?;
/// assert_eq!(mgr.read_handle(&a, &counter)?, Some(7));
/// mgr.commit(a)?;
/// # Ok(())
/// # }
/// ```
pub struct Handle<T> {
    uid: ObjectUid,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// Creates a typed handle over the named object.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            uid: ObjectUid::new(name),
            _marker: PhantomData,
        }
    }

    /// Wraps an existing uid.
    pub fn from_uid(uid: ObjectUid) -> Self {
        Self {
            uid,
            _marker: PhantomData,
        }
    }

    /// The underlying uid.
    pub fn uid(&self) -> &ObjectUid {
        &self.uid
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Self {
            uid: self.uid.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({})", self.uid)
    }
}

impl<T> fmt::Display for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.uid, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_age_ordering() {
        let old = TxId::new(5, 1);
        let young = TxId::new(0, 2);
        assert!(old.is_older_than(young));
        assert!(!young.is_older_than(old));
        assert!(old < young);
        // Same seq: node breaks ties.
        assert!(TxId::new(0, 7).is_older_than(TxId::new(1, 7)));
    }

    #[test]
    fn uid_children_compose_paths() {
        let root = ObjectUid::new("instance/1");
        assert_eq!(root.child("task/t2").as_str(), "instance/1/task/t2");
    }

    #[test]
    fn ids_roundtrip_codec() {
        let tx = TxId::new(3, 99);
        let bytes = flowscript_codec::to_bytes(&tx);
        assert_eq!(flowscript_codec::from_bytes::<TxId>(&bytes).unwrap(), tx);

        let uid = ObjectUid::new("a/b");
        let bytes = flowscript_codec::to_bytes(&uid);
        assert_eq!(
            flowscript_codec::from_bytes::<ObjectUid>(&bytes).unwrap(),
            uid
        );
    }

    #[test]
    fn handle_display_and_clone() {
        let h: Handle<u32> = Handle::new("x/y");
        let h2 = h.clone();
        assert_eq!(h2.uid().as_str(), "x/y");
        assert_eq!(format!("{h:?}"), "Handle(x/y)");
        assert_eq!(h.to_string(), "x/y");
    }
}
