//! Durable byte storage behind the write-ahead log.
//!
//! In simulation, durable state must survive *simulated node crashes* while
//! living in the test process: [`MemStorage`] is shared via
//! [`SharedStorage`] (an `Rc` cell), so a "crashed" node's `TxManager` can
//! be dropped and a fresh one recovered from the same bytes — exactly the
//! paper's model of stable storage surviving processor crashes.
//! [`FileStorage`] provides real on-disk durability for non-simulated use.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::rc::Rc;

use crate::error::TxError;

/// Append-only byte storage with full read-back and truncation.
pub trait Storage {
    /// Appends bytes at the end.
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] on I/O failure.
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError>;

    /// Reads the entire contents.
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] on I/O failure.
    fn read_all(&self) -> Result<Vec<u8>, TxError>;

    /// Truncates to `len` bytes (used to drop a torn tail or after a
    /// checkpoint rewrite).
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] on I/O failure.
    fn truncate(&mut self, len: u64) -> Result<(), TxError>;

    /// Current length in bytes.
    fn len(&self) -> u64;

    /// Whether the storage is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory storage.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    bytes: Vec<u8>,
}

impl MemStorage {
    /// Creates empty in-memory storage.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>, TxError> {
        Ok(self.bytes.clone())
    }

    fn truncate(&mut self, len: u64) -> Result<(), TxError> {
        self.bytes.truncate(len as usize);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }
}

/// A reference-counted storage cell, cloneable across the "disk" boundary:
/// the simulated machine holds one clone, the simulated stable store the
/// other. Dropping the machine's clone (crash) does not lose the bytes.
#[derive(Debug, Clone, Default)]
pub struct SharedStorage {
    inner: Rc<RefCell<MemStorage>>,
}

impl SharedStorage {
    /// Creates empty shared storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently stored (diagnostics).
    pub fn snapshot(&self) -> Vec<u8> {
        self.inner.borrow().bytes.clone()
    }
}

impl Storage for SharedStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError> {
        self.inner.borrow_mut().append(bytes)
    }

    fn read_all(&self) -> Result<Vec<u8>, TxError> {
        self.inner.borrow().read_all()
    }

    fn truncate(&mut self, len: u64) -> Result<(), TxError> {
        self.inner.borrow_mut().truncate(len)
    }

    fn len(&self) -> u64 {
        self.inner.borrow().len()
    }
}

/// File-backed storage, syncing on every append.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    len: u64,
}

impl FileStorage {
    /// Opens (creating if absent) the log file at `path`.
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TxError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| TxError::Storage(e.to_string()))?;
        let len = file
            .metadata()
            .map_err(|e| TxError::Storage(e.to_string()))?
            .len();
        Ok(Self { file, len })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError> {
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| TxError::Storage(e.to_string()))?;
        self.file
            .write_all(bytes)
            .map_err(|e| TxError::Storage(e.to_string()))?;
        self.file
            .sync_data()
            .map_err(|e| TxError::Storage(e.to_string()))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>, TxError> {
        let mut file = self
            .file
            .try_clone()
            .map_err(|e| TxError::Storage(e.to_string()))?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| TxError::Storage(e.to_string()))?;
        let mut out = Vec::with_capacity(self.len as usize);
        file.read_to_end(&mut out)
            .map_err(|e| TxError::Storage(e.to_string()))?;
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> Result<(), TxError> {
        self.file
            .set_len(len)
            .map_err(|e| TxError::Storage(e.to_string()))?;
        self.len = len;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// A [`FileStorage`] behind an `Rc` cell, cloneable across the "disk"
/// boundary exactly like [`SharedStorage`]: the simulated machine and
/// the simulated stable store hold clones of the same open log file, so
/// a crashed node's `TxManager` can be dropped and a fresh one
/// recovered over the surviving file.
#[derive(Debug, Clone)]
pub struct SharedFileStorage {
    inner: Rc<RefCell<FileStorage>>,
}

impl SharedFileStorage {
    /// Opens (creating if absent) the log file at `path`, keeping any
    /// existing contents — the restart-over-a-surviving-disk shape.
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TxError> {
        Ok(Self {
            inner: Rc::new(RefCell::new(FileStorage::open(path)?)),
        })
    }

    /// Opens the log file at `path` truncated to empty — a fresh log
    /// for a brand-new system (benchmarks, throwaway tests).
    ///
    /// # Errors
    ///
    /// [`TxError::Storage`] if the file cannot be opened or truncated.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, TxError> {
        let store = Self::open(path)?;
        store.inner.borrow_mut().truncate(0)?;
        Ok(store)
    }
}

impl Storage for SharedFileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError> {
        self.inner.borrow_mut().append(bytes)
    }

    fn read_all(&self) -> Result<Vec<u8>, TxError> {
        self.inner.borrow().read_all()
    }

    fn truncate(&mut self, len: u64) -> Result<(), TxError> {
        self.inner.borrow_mut().truncate(len)
    }

    fn len(&self) -> u64 {
        self.inner.borrow().len()
    }
}

/// The stable store a coordinator journals to: simulated memory (the
/// default — crash survival without touching the real disk) or a real
/// synced file (every WAL frame append is a `write` + `fdatasync`, the
/// cost that group commit amortizes).
#[derive(Debug, Clone)]
pub enum StableStore {
    /// Simulated stable memory ([`SharedStorage`]).
    Mem(SharedStorage),
    /// A synced on-disk log file ([`SharedFileStorage`]).
    File(SharedFileStorage),
}

impl Default for StableStore {
    fn default() -> Self {
        Self::Mem(SharedStorage::default())
    }
}

impl From<SharedStorage> for StableStore {
    fn from(storage: SharedStorage) -> Self {
        Self::Mem(storage)
    }
}

impl From<SharedFileStorage> for StableStore {
    fn from(storage: SharedFileStorage) -> Self {
        Self::File(storage)
    }
}

impl Storage for StableStore {
    fn append(&mut self, bytes: &[u8]) -> Result<(), TxError> {
        match self {
            Self::Mem(s) => s.append(bytes),
            Self::File(s) => s.append(bytes),
        }
    }

    fn read_all(&self) -> Result<Vec<u8>, TxError> {
        match self {
            Self::Mem(s) => s.read_all(),
            Self::File(s) => s.read_all(),
        }
    }

    fn truncate(&mut self, len: u64) -> Result<(), TxError> {
        match self {
            Self::Mem(s) => s.truncate(len),
            Self::File(s) => s.truncate(len),
        }
    }

    fn len(&self) -> u64 {
        match self {
            Self::Mem(s) => s.len(),
            Self::File(s) => s.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_append_read_truncate() {
        let mut s = MemStorage::new();
        assert!(s.is_empty());
        s.append(b"hello").unwrap();
        s.append(b" world").unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello world");
        s.truncate(5).unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello");
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn shared_storage_survives_clone_drop() {
        let stable = SharedStorage::new();
        {
            let mut machine_view = stable.clone();
            machine_view.append(b"durable").unwrap();
            // machine "crashes": its clone is dropped here.
        }
        assert_eq!(stable.read_all().unwrap(), b"durable");
        assert_eq!(stable.snapshot(), b"durable");
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fs-tx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-test.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.append(b"abc").unwrap();
            s.append(b"def").unwrap();
            assert_eq!(s.len(), 6);
        }
        // Re-open and verify durability.
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcdef");
        let mut s = s;
        s.truncate(3).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abc");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_file_storage_survives_clone_drop_and_reopen() {
        let dir = std::env::temp_dir().join(format!("fs-tx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-shared.log");
        let stable = SharedFileStorage::create(&path).unwrap();
        {
            let mut machine_view = stable.clone();
            machine_view.append(b"durable").unwrap();
            // machine "crashes": its clone is dropped here.
        }
        assert_eq!(stable.read_all().unwrap(), b"durable");
        // A whole-process restart: reopen from the path, non-truncating.
        let reopened = SharedFileStorage::open(&path).unwrap();
        assert_eq!(reopened.read_all().unwrap(), b"durable");
        // `create` starts a fresh log over the same file.
        let fresh = SharedFileStorage::create(&path).unwrap();
        assert!(fresh.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stable_store_variants_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fs-tx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-stable.log");
        let mut stores = [
            StableStore::default(),
            StableStore::from(SharedFileStorage::create(&path).unwrap()),
        ];
        for store in &mut stores {
            assert!(store.is_empty());
            store.append(b"frame-1").unwrap();
            store.append(b"frame-2").unwrap();
            assert_eq!(store.read_all().unwrap(), b"frame-1frame-2");
            store.truncate(7).unwrap();
            assert_eq!(store.read_all().unwrap(), b"frame-1");
            // Clones view the same bytes (the shared-disk contract).
            assert_eq!(store.clone().read_all().unwrap(), b"frame-1");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
