//! Strict two-phase locking with wait-die deadlock avoidance.
//!
//! The lock manager grants read (shared) and write (exclusive) locks on
//! [`StoreKey`]s to transactions. Locks are held until the *top-level*
//! action commits or aborts (strict 2PL), which together with redo-only
//! logging gives serialisable, recoverable histories.
//!
//! Deadlock is avoided rather than detected: on conflict, an older
//! requester is told to [`Conflict::Wait`] (retry later) while a younger
//! one is told to [`Conflict::Die`] (abort itself). Age comes from
//! [`TxId`] ordering, so the policy is deterministic.

use std::collections::HashMap;

use crate::id::TxId;
use crate::key::StoreKey;

/// Lock compatibility modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: compatible with other reads.
    Read,
    /// Exclusive: compatible with nothing.
    Write,
}

/// Wait-die verdict handed to a conflicting requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Requester is older than the holder: it may retry later.
    Wait,
    /// Requester is younger: it must abort (it would risk deadlock).
    Die,
}

#[derive(Debug)]
struct LockState {
    mode: LockMode,
    /// Holding transactions. Multiple holders only under `Read`.
    holders: Vec<TxId>,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<StoreKey, LockState>,
}

/// Outcome of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquired {
    /// The lock was granted (or upgraded, or already held).
    Granted,
    /// Conflict with `holder`; the requester received the given verdict.
    Conflicted {
        /// A transaction currently blocking the request.
        holder: TxId,
        /// The wait-die verdict for the requester.
        verdict: Conflict,
    },
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `key` in `mode` for `tx`.
    ///
    /// Re-acquisition by a current holder is granted, including a
    /// read→write upgrade when `tx` is the *sole* holder.
    pub fn acquire(&mut self, tx: TxId, key: &StoreKey, mode: LockMode) -> Acquired {
        match self.locks.get_mut(key) {
            None => {
                self.locks.insert(
                    key.clone(),
                    LockState {
                        mode,
                        holders: vec![tx],
                    },
                );
                Acquired::Granted
            }
            Some(state) => {
                let already_holds = state.holders.contains(&tx);
                match (state.mode, mode) {
                    (LockMode::Read, LockMode::Read) => {
                        if !already_holds {
                            state.holders.push(tx);
                        }
                        Acquired::Granted
                    }
                    (LockMode::Read, LockMode::Write) => {
                        if already_holds && state.holders.len() == 1 {
                            state.mode = LockMode::Write;
                            Acquired::Granted
                        } else {
                            let holder = *state
                                .holders
                                .iter()
                                .find(|h| **h != tx)
                                .expect("conflicting read holder");
                            Acquired::Conflicted {
                                holder,
                                verdict: Self::verdict(tx, holder),
                            }
                        }
                    }
                    (LockMode::Write, _) => {
                        if already_holds {
                            Acquired::Granted
                        } else {
                            let holder = state.holders[0];
                            Acquired::Conflicted {
                                holder,
                                verdict: Self::verdict(tx, holder),
                            }
                        }
                    }
                }
            }
        }
    }

    fn verdict(requester: TxId, holder: TxId) -> Conflict {
        if requester.is_older_than(holder) {
            Conflict::Wait
        } else {
            Conflict::Die
        }
    }

    /// Releases every lock held by `tx`.
    pub fn release_all(&mut self, tx: TxId) {
        self.locks.retain(|_, state| {
            state.holders.retain(|h| *h != tx);
            !state.holders.is_empty()
        });
    }

    /// Transfers all locks held by `from` to `to` (nested-action commit:
    /// the child's locks are inherited by the parent, per Arjuna).
    pub fn transfer(&mut self, from: TxId, to: TxId) {
        for state in self.locks.values_mut() {
            let held_by_from = state.holders.contains(&from);
            if held_by_from {
                state.holders.retain(|h| *h != from && *h != to);
                state.holders.push(to);
            }
        }
    }

    /// Whether `tx` holds a lock on `key` in a mode at least `mode`.
    pub fn holds(&self, tx: TxId, key: &StoreKey, mode: LockMode) -> bool {
        match self.locks.get(key) {
            None => false,
            Some(state) => {
                state.holders.contains(&tx)
                    && match (state.mode, mode) {
                        (LockMode::Write, _) => true,
                        (LockMode::Read, LockMode::Read) => true,
                        (LockMode::Read, LockMode::Write) => false,
                    }
            }
        }
    }

    /// Number of objects currently locked (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> StoreKey {
        StoreKey::Uid(crate::id::ObjectUid::new(s))
    }

    #[test]
    fn shared_reads_coexist() {
        let mut lm = LockManager::new();
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(0, 2);
        assert_eq!(lm.acquire(t1, &uid("o"), LockMode::Read), Acquired::Granted);
        assert_eq!(lm.acquire(t2, &uid("o"), LockMode::Read), Acquired::Granted);
        assert!(lm.holds(t1, &uid("o"), LockMode::Read));
        assert!(lm.holds(t2, &uid("o"), LockMode::Read));
    }

    #[test]
    fn write_excludes_write_with_wait_die() {
        let mut lm = LockManager::new();
        let old = TxId::new(0, 1);
        let young = TxId::new(0, 2);
        assert_eq!(
            lm.acquire(young, &uid("o"), LockMode::Write),
            Acquired::Granted
        );
        // Older requester waits.
        assert_eq!(
            lm.acquire(old, &uid("o"), LockMode::Write),
            Acquired::Conflicted {
                holder: young,
                verdict: Conflict::Wait
            }
        );
        lm.release_all(young);
        let mut lm2 = LockManager::new();
        assert_eq!(
            lm2.acquire(old, &uid("o"), LockMode::Write),
            Acquired::Granted
        );
        // Younger requester dies.
        assert_eq!(
            lm2.acquire(young, &uid("o"), LockMode::Write),
            Acquired::Conflicted {
                holder: old,
                verdict: Conflict::Die
            }
        );
    }

    #[test]
    fn sole_reader_upgrades() {
        let mut lm = LockManager::new();
        let t1 = TxId::new(0, 1);
        assert_eq!(lm.acquire(t1, &uid("o"), LockMode::Read), Acquired::Granted);
        assert_eq!(
            lm.acquire(t1, &uid("o"), LockMode::Write),
            Acquired::Granted
        );
        assert!(lm.holds(t1, &uid("o"), LockMode::Write));
    }

    #[test]
    fn shared_reader_cannot_upgrade() {
        let mut lm = LockManager::new();
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(0, 2);
        lm.acquire(t1, &uid("o"), LockMode::Read);
        lm.acquire(t2, &uid("o"), LockMode::Read);
        assert!(matches!(
            lm.acquire(t1, &uid("o"), LockMode::Write),
            Acquired::Conflicted { holder, .. } if holder == t2
        ));
    }

    #[test]
    fn release_frees_objects() {
        let mut lm = LockManager::new();
        let t1 = TxId::new(0, 1);
        lm.acquire(t1, &uid("a"), LockMode::Write);
        lm.acquire(t1, &uid("b"), LockMode::Read);
        assert_eq!(lm.locked_objects(), 2);
        lm.release_all(t1);
        assert_eq!(lm.locked_objects(), 0);
        assert!(!lm.holds(t1, &uid("a"), LockMode::Read));
    }

    #[test]
    fn transfer_moves_child_locks_to_parent() {
        let mut lm = LockManager::new();
        let parent = TxId::new(0, 1);
        let child = TxId::new(0, 2);
        lm.acquire(child, &uid("o"), LockMode::Write);
        lm.transfer(child, parent);
        assert!(lm.holds(parent, &uid("o"), LockMode::Write));
        assert!(!lm.holds(child, &uid("o"), LockMode::Write));
        // Parent keeps exclusivity against others.
        let other = TxId::new(0, 3);
        assert!(matches!(
            lm.acquire(other, &uid("o"), LockMode::Write),
            Acquired::Conflicted { .. }
        ));
    }

    #[test]
    fn transfer_when_parent_already_holds_keeps_single_entry() {
        let mut lm = LockManager::new();
        let parent = TxId::new(0, 1);
        let child = TxId::new(0, 2);
        lm.acquire(parent, &uid("o"), LockMode::Read);
        lm.acquire(child, &uid("o"), LockMode::Read);
        lm.transfer(child, parent);
        lm.release_all(parent);
        assert_eq!(lm.locked_objects(), 0, "no residual holder entries");
    }

    #[test]
    fn reacquire_same_mode_is_idempotent() {
        let mut lm = LockManager::new();
        let t1 = TxId::new(0, 1);
        lm.acquire(t1, &uid("o"), LockMode::Write);
        assert_eq!(
            lm.acquire(t1, &uid("o"), LockMode::Write),
            Acquired::Granted
        );
        assert_eq!(lm.acquire(t1, &uid("o"), LockMode::Read), Acquired::Granted);
    }
}
