//! Structured storage keys.
//!
//! The engine's dependency *facts* (published outputs and bound input
//! sets) are by far the hottest objects in the store: every readiness
//! probe reads one. Naming them with path strings forces a `format!`
//! per probe and a string compare per lookup. [`FactKey`] replaces that
//! with a dense, `Copy`, fixed-size key — instance id × task id × fact
//! kind × item ordinal — so a probe is integer comparison and a whole
//! subtree of facts is one contiguous key range.
//!
//! [`StoreKey`] unifies the two key families the store accepts: the
//! self-describing string [`ObjectUid`]s (metadata, control blocks,
//! reconfiguration records — anything enumerated by prefix on cold
//! paths) and the dense [`FactKey`]s of the commit hot path. Storage,
//! locking and the write-ahead log are all keyed by `StoreKey`.

use std::fmt;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

use crate::id::ObjectUid;

/// Which fact family a [`FactKey`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FactKind {
    /// A bound input set (the consumer-side binding record).
    Input,
    /// A published output (outcome, abort outcome, repeat or mark).
    Output,
}

/// Dense key of one dependency-fact **sub-object**.
///
/// `task` is the producing task's plan id and `item` the ordinal of the
/// set or output within the task's class declaration — both assigned by
/// the compiled plan, so a live instance never builds a string to name
/// a fact. `obj` addresses *within* one fact: sub-key `0` is the fact's
/// presence record (it exists iff the fact fired; its payload carries
/// only objects with no declared ordinal), and sub-key `i + 1` holds
/// the value of the declaration's `i`-th object alone — so a readiness
/// probe reads exactly the bytes of the one object it needs.
///
/// Ordering is `(instance, task, kind, item, obj)`: all sub-objects of
/// a fact are contiguous, as are all facts of a task, of an instance,
/// and (because plans number tasks in DFS pre-order) of a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactKey {
    /// The owning instance's numeric id.
    pub instance: u32,
    /// The producing task's plan id.
    pub task: u32,
    /// Input-binding or published-output fact.
    pub kind: FactKind,
    /// Ordinal of the input set / output within the task's class.
    pub item: u32,
    /// Sub-object ordinal: `0` = presence record, `i + 1` = the value
    /// of the declaration's `i`-th object.
    pub obj: u32,
}

impl FactKey {
    /// The presence sub-key of `task`'s `item`-th declared input set.
    pub fn input(instance: u32, task: u32, item: u32) -> Self {
        Self {
            instance,
            task,
            kind: FactKind::Input,
            item,
            obj: 0,
        }
    }

    /// The presence sub-key of `task`'s `item`-th declared output.
    pub fn output(instance: u32, task: u32, item: u32) -> Self {
        Self {
            instance,
            task,
            kind: FactKind::Output,
            item,
            obj: 0,
        }
    }

    /// This fact's sub-key for sub-object ordinal `obj`.
    pub fn with_obj(mut self, obj: u32) -> Self {
        self.obj = obj;
        self
    }

    /// The sub-key holding the declaration's `ordinal`-th object value.
    pub fn object(self, ordinal: u32) -> Self {
        self.with_obj(ordinal + 1)
    }

    /// The largest sub-key this fact can have (the presence key is the
    /// smallest): `self..=self.fact_last()` spans one whole fact.
    pub fn fact_last(self) -> Self {
        self.with_obj(u32::MAX)
    }

    /// The smallest key a fact of `task` can have (range scans).
    pub fn task_first(instance: u32, task: u32) -> Self {
        Self::input(instance, task, 0)
    }

    /// The largest key a fact of `task` can have (range scans).
    pub fn task_last(instance: u32, task: u32) -> Self {
        Self::output(instance, task, u32::MAX).fact_last()
    }

    /// The smallest key any fact of `instance` can have.
    pub fn instance_first(instance: u32) -> Self {
        Self::task_first(instance, 0)
    }

    /// The largest key any fact of `instance` can have.
    pub fn instance_last(instance: u32) -> Self {
        Self::task_last(instance, u32::MAX)
    }
}

impl fmt::Display for FactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FactKind::Input => "in",
            FactKind::Output => "out",
        };
        write!(
            f,
            "fact/{}/{}/{kind}/{}/{}",
            self.instance, self.task, self.item, self.obj
        )
    }
}

impl Encode for FactKey {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_var_u64(u64::from(self.instance));
        w.put_var_u64(u64::from(self.task));
        w.put_u8(match self.kind {
            FactKind::Input => 0,
            FactKind::Output => 1,
        });
        w.put_var_u64(u64::from(self.item));
        w.put_var_u64(u64::from(self.obj));
    }
}

impl Decode for FactKey {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let instance = r.get_var_u64()? as u32;
        let task = r.get_var_u64()? as u32;
        let kind = match r.get_u8()? {
            0 => FactKind::Input,
            1 => FactKind::Output,
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "FactKind",
                    value: u64::from(other),
                })
            }
        };
        let item = r.get_var_u64()? as u32;
        let obj = r.get_var_u64()? as u32;
        Ok(FactKey {
            instance,
            task,
            kind,
            item,
            obj,
        })
    }
}

/// A key into the persistent object store: either a self-describing
/// string uid or a dense fact key.
///
/// String uids order before fact keys, so prefix enumeration of uids and
/// range scans over facts each stay within their own region of the
/// store's key space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StoreKey {
    /// A path-like string key (metadata, control blocks, admin records).
    Uid(ObjectUid),
    /// A dense fact key (the commit hot path).
    Fact(FactKey),
}

impl StoreKey {
    /// The uid, when this is a string key.
    pub fn as_uid(&self) -> Option<&ObjectUid> {
        match self {
            StoreKey::Uid(uid) => Some(uid),
            StoreKey::Fact(_) => None,
        }
    }

    /// The fact key, when this is one.
    pub fn as_fact(&self) -> Option<FactKey> {
        match self {
            StoreKey::Uid(_) => None,
            StoreKey::Fact(key) => Some(*key),
        }
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreKey::Uid(uid) => fmt::Display::fmt(uid, f),
            StoreKey::Fact(key) => fmt::Display::fmt(key, f),
        }
    }
}

impl From<ObjectUid> for StoreKey {
    fn from(uid: ObjectUid) -> Self {
        StoreKey::Uid(uid)
    }
}

impl From<&ObjectUid> for StoreKey {
    fn from(uid: &ObjectUid) -> Self {
        StoreKey::Uid(uid.clone())
    }
}

impl From<FactKey> for StoreKey {
    fn from(key: FactKey) -> Self {
        StoreKey::Fact(key)
    }
}

impl Encode for StoreKey {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            StoreKey::Uid(uid) => {
                w.put_u8(0);
                uid.encode(w);
            }
            StoreKey::Fact(key) => {
                w.put_u8(1);
                key.encode(w);
            }
        }
    }
}

impl Decode for StoreKey {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => StoreKey::Uid(ObjectUid::decode(r)?),
            1 => StoreKey::Fact(FactKey::decode(r)?),
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "StoreKey",
                    value: u64::from(other),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_key_ordering_groups_instance_then_task() {
        let a = FactKey::input(1, 2, 0);
        let b = FactKey::output(1, 2, 0);
        let c = FactKey::input(1, 3, 0);
        let d = FactKey::input(2, 0, 0);
        assert!(a < b, "inputs order before outputs of the same task");
        assert!(b < c, "all facts of a task are contiguous");
        assert!(c < d, "all facts of an instance are contiguous");
        assert!(FactKey::task_first(1, 2) <= a && b <= FactKey::task_last(1, 2));
        assert!(FactKey::instance_first(1) <= a && c <= FactKey::instance_last(1));
    }

    #[test]
    fn object_sub_keys_stay_inside_their_fact() {
        let base = FactKey::output(1, 2, 3);
        let first = base.object(0);
        let second = base.object(1);
        assert!(base < first, "the presence key is the fact's smallest");
        assert!(first < second, "object ordinals order the sub-keys");
        assert!(second <= base.fact_last());
        // The next fact of the same task starts past the sub-range.
        assert!(base.fact_last() < FactKey::output(1, 2, 4));
        // And the whole sub-range stays inside the task range.
        assert!(base.fact_last() <= FactKey::task_last(1, 2));
    }

    #[test]
    fn uids_order_before_facts() {
        let uid = StoreKey::from(ObjectUid::new("zzz"));
        let fact = StoreKey::from(FactKey::input(0, 0, 0));
        assert!(uid < fact);
    }

    #[test]
    fn keys_roundtrip_codec() {
        let keys = [
            StoreKey::from(ObjectUid::new("inst/a/meta")),
            StoreKey::from(FactKey::input(7, 3, 1)),
            StoreKey::from(FactKey::input(7, 3, 1).object(4)),
            StoreKey::from(FactKey::output(u32::MAX, u32::MAX, u32::MAX).fact_last()),
        ];
        for key in keys {
            let bytes = flowscript_codec::to_bytes(&key);
            assert_eq!(
                flowscript_codec::from_bytes::<StoreKey>(&bytes).unwrap(),
                key
            );
        }
    }

    #[test]
    fn display_is_path_like() {
        assert_eq!(FactKey::output(1, 4, 2).to_string(), "fact/1/4/out/2/0");
        assert_eq!(
            FactKey::output(1, 4, 2).object(3).to_string(),
            "fact/1/4/out/2/4"
        );
        assert_eq!(
            StoreKey::from(ObjectUid::new("inst/i/meta")).to_string(),
            "inst/i/meta"
        );
    }
}
