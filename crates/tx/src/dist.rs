//! Presumed-abort two-phase commit.
//!
//! When the engine shards its coordination objects over several execution-
//! service nodes, a workflow state transition touches more than one
//! [`crate::TxManager`] and must commit atomically across them. This module
//! provides the coordinator as a *pure state machine*: callers feed it
//! votes/acks/timeouts and it emits [`CoordAction`]s (messages to send,
//! decisions to persist). Keeping I/O outside makes the protocol unit-
//! testable in isolation and reusable over any transport (the engine drives
//! it over the simulated network).
//!
//! Protocol summary (presumed abort):
//!
//! 1. Coordinator sends `Prepare` with each participant's writes.
//! 2. Participants durably prepare ([`crate::TxManager::prepare_remote`])
//!    and vote. A participant that cannot prepare votes no.
//! 3. On all-yes the coordinator *first persists* the commit decision,
//!    then sends `Decision{commit: true}`. On any no / timeout it sends
//!    `Decision{commit: false}` without persisting (absence ⇒ abort).
//! 4. Participants resolve ([`crate::TxManager::resolve_remote`]) and ack;
//!    the coordinator retries decisions until all acks arrive.
//! 5. A recovering in-doubt participant queries the coordinator; a missing
//!    decision record means abort.

use std::collections::{BTreeMap, BTreeSet};

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

use crate::id::TxId;
use crate::key::StoreKey;

/// Messages exchanged by the 2PC roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistMsg {
    /// Coordinator → participant: stage these writes and vote.
    Prepare {
        /// Distributed transaction id.
        tx: TxId,
        /// Coordinator node id (for in-doubt queries).
        coordinator: u32,
        /// The participant's share of the writes.
        writes: Vec<(StoreKey, Option<Vec<u8>>)>,
    },
    /// Participant → coordinator: prepare verdict.
    Vote {
        /// Distributed transaction id.
        tx: TxId,
        /// Voting participant.
        from: u32,
        /// `true` when prepared durably.
        yes: bool,
    },
    /// Coordinator → participant: final outcome.
    Decision {
        /// Distributed transaction id.
        tx: TxId,
        /// `true` = commit.
        commit: bool,
    },
    /// Participant → coordinator: decision applied.
    Ack {
        /// Distributed transaction id.
        tx: TxId,
        /// Acknowledging participant.
        from: u32,
    },
    /// Recovering participant → coordinator: what happened to `tx`?
    QueryOutcome {
        /// Distributed transaction id.
        tx: TxId,
        /// Asking participant.
        from: u32,
    },
}

impl Encode for DistMsg {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            DistMsg::Prepare {
                tx,
                coordinator,
                writes,
            } => {
                w.put_u8(0);
                tx.encode(w);
                w.put_u32(*coordinator);
                writes.encode(w);
            }
            DistMsg::Vote { tx, from, yes } => {
                w.put_u8(1);
                tx.encode(w);
                w.put_u32(*from);
                w.put_bool(*yes);
            }
            DistMsg::Decision { tx, commit } => {
                w.put_u8(2);
                tx.encode(w);
                w.put_bool(*commit);
            }
            DistMsg::Ack { tx, from } => {
                w.put_u8(3);
                tx.encode(w);
                w.put_u32(*from);
            }
            DistMsg::QueryOutcome { tx, from } => {
                w.put_u8(4);
                tx.encode(w);
                w.put_u32(*from);
            }
        }
    }
}

impl Decode for DistMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(DistMsg::Prepare {
                tx: TxId::decode(r)?,
                coordinator: r.get_u32()?,
                writes: Vec::decode(r)?,
            }),
            1 => Ok(DistMsg::Vote {
                tx: TxId::decode(r)?,
                from: r.get_u32()?,
                yes: r.get_bool()?,
            }),
            2 => Ok(DistMsg::Decision {
                tx: TxId::decode(r)?,
                commit: r.get_bool()?,
            }),
            3 => Ok(DistMsg::Ack {
                tx: TxId::decode(r)?,
                from: r.get_u32()?,
            }),
            4 => Ok(DistMsg::QueryOutcome {
                tx: TxId::decode(r)?,
                from: r.get_u32()?,
            }),
            other => Err(CodecError::InvalidDiscriminant {
                ty: "DistMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// Instructions the coordinator hands back to its host environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordAction {
    /// Send `msg` to participant node `to`.
    Send {
        /// Destination participant node.
        to: u32,
        /// Message to deliver.
        msg: DistMsg,
    },
    /// Durably record the commit decision *before* emitting any
    /// subsequent `Send` of that decision (presumed abort requires it).
    PersistDecision {
        /// The decided transaction.
        tx: TxId,
        /// `true` = commit.
        commit: bool,
    },
    /// The transaction fully terminated (all acks in).
    Done {
        /// The finished transaction.
        tx: TxId,
        /// Final outcome.
        committed: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Voting,
    Deciding { commit: bool },
}

#[derive(Debug)]
struct TxState {
    participants: BTreeSet<u32>,
    votes_yes: BTreeSet<u32>,
    acked: BTreeSet<u32>,
    phase: Phase,
}

/// One participant's share of a distributed transaction's writes:
/// `(participant node, after-images)`.
pub type ParticipantWrites = (u32, AfterImages);

/// A run of after-images: `(key, new bytes or tombstone)` pairs.
pub type AfterImages = Vec<(StoreKey, Option<Vec<u8>>)>;

/// The 2PC coordinator state machine.
///
/// Decisions that must survive coordinator crashes are emitted as
/// [`CoordAction::PersistDecision`]; after a crash, rebuild with
/// [`Coordinator::new`] and answer in-doubt queries from the persisted
/// decisions (see [`crate::TxManager::coordinator_decision`]).
#[derive(Debug)]
pub struct Coordinator {
    node: u32,
    live: BTreeMap<TxId, TxState>,
}

impl Coordinator {
    /// Creates a coordinator for the given node id.
    pub fn new(node: u32) -> Self {
        Self {
            node,
            live: BTreeMap::new(),
        }
    }

    /// This coordinator's node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Starts 2PC for `tx`, sharding `writes` over participants.
    /// Returns the prepare messages to send.
    ///
    /// An empty participant set commits immediately.
    pub fn begin(&mut self, tx: TxId, writes: Vec<ParticipantWrites>) -> Vec<CoordAction> {
        let participants: BTreeSet<u32> = writes.iter().map(|(n, _)| *n).collect();
        if participants.is_empty() {
            return vec![
                CoordAction::PersistDecision { tx, commit: true },
                CoordAction::Done {
                    tx,
                    committed: true,
                },
            ];
        }
        self.live.insert(
            tx,
            TxState {
                participants: participants.clone(),
                votes_yes: BTreeSet::new(),
                acked: BTreeSet::new(),
                phase: Phase::Voting,
            },
        );
        writes
            .into_iter()
            .map(|(to, writes)| CoordAction::Send {
                to,
                msg: DistMsg::Prepare {
                    tx,
                    coordinator: self.node,
                    writes,
                },
            })
            .collect()
    }

    /// Amortized 2PC: runs several member transactions' writes as **one**
    /// protocol round under the umbrella transaction `group_tx`. Each
    /// member's per-participant writes are merged per participant (in
    /// member order, so later members' after-images supersede earlier
    /// ones on replay), then the whole batch pays a single
    /// prepare/vote/decision/ack round per participant shard — and the
    /// participant's merged prepare is one WAL frame. Under presumed
    /// abort `group_tx` stands for the entire batch: the batch commits
    /// or aborts as a unit.
    pub fn begin_batch(
        &mut self,
        group_tx: TxId,
        members: Vec<(TxId, Vec<ParticipantWrites>)>,
    ) -> Vec<CoordAction> {
        let mut merged: BTreeMap<u32, AfterImages> = BTreeMap::new();
        for (_member, shares) in members {
            for (participant, writes) in shares {
                merged.entry(participant).or_default().extend(writes);
            }
        }
        self.begin(group_tx, merged.into_iter().collect())
    }

    /// Handles a participant vote.
    pub fn on_vote(&mut self, tx: TxId, from: u32, yes: bool) -> Vec<CoordAction> {
        let Some(state) = self.live.get_mut(&tx) else {
            return Vec::new();
        };
        if state.phase != Phase::Voting || !state.participants.contains(&from) {
            return Vec::new();
        }
        if !yes {
            return self.decide(tx, false);
        }
        state.votes_yes.insert(from);
        if state.votes_yes == state.participants {
            self.decide(tx, true)
        } else {
            Vec::new()
        }
    }

    fn decide(&mut self, tx: TxId, commit: bool) -> Vec<CoordAction> {
        let state = self.live.get_mut(&tx).expect("deciding unknown tx");
        state.phase = Phase::Deciding { commit };
        let mut actions = Vec::new();
        if commit {
            actions.push(CoordAction::PersistDecision { tx, commit });
        }
        for &to in &state.participants {
            actions.push(CoordAction::Send {
                to,
                msg: DistMsg::Decision { tx, commit },
            });
        }
        actions
    }

    /// Handles a participant ack of the decision.
    pub fn on_ack(&mut self, tx: TxId, from: u32) -> Vec<CoordAction> {
        let Some(state) = self.live.get_mut(&tx) else {
            return Vec::new();
        };
        let Phase::Deciding { commit } = state.phase else {
            return Vec::new();
        };
        state.acked.insert(from);
        if state.acked == state.participants {
            self.live.remove(&tx);
            vec![CoordAction::Done {
                tx,
                committed: commit,
            }]
        } else {
            Vec::new()
        }
    }

    /// Periodic timeout driver: aborts stuck votes, re-sends undelivered
    /// decisions. Call on a timer until the transaction is `Done`.
    pub fn on_timeout(&mut self, tx: TxId) -> Vec<CoordAction> {
        let Some(state) = self.live.get(&tx) else {
            return Vec::new();
        };
        match state.phase {
            Phase::Voting => self.decide(tx, false),
            Phase::Deciding { commit } => {
                let state = self.live.get(&tx).expect("checked above");
                state
                    .participants
                    .difference(&state.acked)
                    .map(|&to| CoordAction::Send {
                        to,
                        msg: DistMsg::Decision { tx, commit },
                    })
                    .collect()
            }
        }
    }

    /// Answers an in-doubt participant. `persisted` is the durable
    /// decision looked up by the host (presumed abort: `None` ⇒ abort).
    pub fn on_query(&self, tx: TxId, from: u32, persisted: Option<bool>) -> Vec<CoordAction> {
        let commit = match (&self.live.get(&tx), persisted) {
            (Some(state), _) => match state.phase {
                Phase::Deciding { commit } => commit,
                Phase::Voting => return Vec::new(), // still undecided; participant waits
            },
            (None, Some(decision)) => decision,
            (None, None) => false, // presumed abort
        };
        vec![CoordAction::Send {
            to: from,
            msg: DistMsg::Decision { tx, commit },
        }]
    }

    /// Transactions still in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> StoreKey {
        StoreKey::Uid(crate::id::ObjectUid::new(s))
    }

    fn tx() -> TxId {
        TxId::new(0, 42)
    }

    fn writes_for(parts: &[u32]) -> Vec<ParticipantWrites> {
        parts
            .iter()
            .map(|&p| (p, vec![(uid(&format!("o{p}")), Some(vec![p as u8]))]))
            .collect()
    }

    fn sends(actions: &[CoordAction]) -> Vec<(u32, &DistMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn all_yes_commits_with_persist_before_sends() {
        let mut c = Coordinator::new(0);
        let actions = c.begin(tx(), writes_for(&[1, 2]));
        assert_eq!(sends(&actions).len(), 2);

        assert!(c.on_vote(tx(), 1, true).is_empty());
        let decision_actions = c.on_vote(tx(), 2, true);
        // Persist must come before any decision send.
        assert!(matches!(
            decision_actions[0],
            CoordAction::PersistDecision { commit: true, .. }
        ));
        let decision_sends = sends(&decision_actions);
        assert_eq!(decision_sends.len(), 2);
        for (_, msg) in decision_sends {
            assert_eq!(
                msg,
                &DistMsg::Decision {
                    tx: tx(),
                    commit: true
                }
            );
        }

        assert!(c.on_ack(tx(), 1).is_empty());
        let done = c.on_ack(tx(), 2);
        assert_eq!(
            done,
            vec![CoordAction::Done {
                tx: tx(),
                committed: true
            }]
        );
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn any_no_aborts_without_persist() {
        let mut c = Coordinator::new(0);
        c.begin(tx(), writes_for(&[1, 2]));
        c.on_vote(tx(), 1, true);
        let actions = c.on_vote(tx(), 2, false);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, CoordAction::PersistDecision { .. })),
            "aborts are presumed, not persisted"
        );
        for (_, msg) in sends(&actions) {
            assert_eq!(
                msg,
                &DistMsg::Decision {
                    tx: tx(),
                    commit: false
                }
            );
        }
    }

    #[test]
    fn timeout_during_voting_aborts() {
        let mut c = Coordinator::new(0);
        c.begin(tx(), writes_for(&[1, 2]));
        c.on_vote(tx(), 1, true);
        let actions = c.on_timeout(tx());
        for (_, msg) in sends(&actions) {
            assert!(matches!(msg, DistMsg::Decision { commit: false, .. }));
        }
    }

    #[test]
    fn timeout_after_decision_resends_to_unacked_only() {
        let mut c = Coordinator::new(0);
        c.begin(tx(), writes_for(&[1, 2]));
        c.on_vote(tx(), 1, true);
        c.on_vote(tx(), 2, true);
        c.on_ack(tx(), 1);
        let actions = c.on_timeout(tx());
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, 2);
    }

    #[test]
    fn empty_participant_set_commits_immediately() {
        let mut c = Coordinator::new(0);
        let actions = c.begin(tx(), vec![]);
        assert!(actions.contains(&CoordAction::Done {
            tx: tx(),
            committed: true
        }));
    }

    #[test]
    fn query_uses_presumed_abort() {
        let c = Coordinator::new(0);
        // Unknown tx, no persisted decision: abort.
        let actions = c.on_query(tx(), 7, None);
        assert_eq!(
            sends(&actions)[0].1,
            &DistMsg::Decision {
                tx: tx(),
                commit: false
            }
        );
        // Unknown tx but persisted commit: commit.
        let actions = c.on_query(tx(), 7, Some(true));
        assert_eq!(
            sends(&actions)[0].1,
            &DistMsg::Decision {
                tx: tx(),
                commit: true
            }
        );
    }

    #[test]
    fn query_while_voting_gets_no_answer_yet() {
        let mut c = Coordinator::new(0);
        c.begin(tx(), writes_for(&[1]));
        assert!(c.on_query(tx(), 1, None).is_empty());
    }

    #[test]
    fn duplicate_and_stray_messages_ignored() {
        let mut c = Coordinator::new(0);
        c.begin(tx(), writes_for(&[1]));
        // Vote from a non-participant.
        assert!(c.on_vote(tx(), 99, true).is_empty());
        let decided = c.on_vote(tx(), 1, true);
        assert!(!decided.is_empty());
        // Second identical vote after decision: ignored.
        assert!(c.on_vote(tx(), 1, true).is_empty());
        // Ack for unknown tx: ignored.
        assert!(c.on_ack(TxId::new(5, 5), 1).is_empty());
    }

    #[test]
    fn batch_coalesces_to_one_round_per_participant() {
        let mut c = Coordinator::new(0);
        let group = TxId::new(0, 100);
        // Three member transactions over the same two participants.
        let members: Vec<(TxId, Vec<ParticipantWrites>)> = (0..3u64)
            .map(|m| {
                (
                    TxId::new(0, m),
                    vec![
                        (1, vec![(uid(&format!("m{m}p1")), Some(vec![m as u8]))]),
                        (2, vec![(uid(&format!("m{m}p2")), Some(vec![m as u8]))]),
                    ],
                )
            })
            .collect();
        let actions = c.begin_batch(group, members);
        // Exactly one prepare per participant, writes concatenated in
        // member order.
        let s = sends(&actions);
        assert_eq!(s.len(), 2);
        for (to, msg) in s {
            let DistMsg::Prepare { tx, writes, .. } = msg else {
                panic!("expected prepare, got {msg:?}");
            };
            assert_eq!(*tx, group);
            let expected: Vec<StoreKey> = (0..3u64).map(|m| uid(&format!("m{m}p{to}"))).collect();
            let got: Vec<StoreKey> = writes.iter().map(|(k, _)| k.clone()).collect();
            assert_eq!(got, expected);
        }
        // One decision round for the whole batch.
        assert!(c.on_vote(group, 1, true).is_empty());
        let decided = c.on_vote(group, 2, true);
        assert_eq!(sends(&decided).len(), 2);
        c.on_ack(group, 1);
        let done = c.on_ack(group, 2);
        assert_eq!(
            done,
            vec![CoordAction::Done {
                tx: group,
                committed: true
            }]
        );
    }

    #[test]
    fn empty_batch_commits_immediately() {
        let mut c = Coordinator::new(0);
        let group = TxId::new(0, 100);
        let actions = c.begin_batch(group, vec![]);
        assert!(actions.contains(&CoordAction::Done {
            tx: group,
            committed: true
        }));
    }

    #[test]
    fn batched_prepare_is_one_wal_frame_at_participant() {
        use crate::manager::TxManager;
        let mut c = Coordinator::new(9);
        let group = TxId::new(9, 100);
        let members: Vec<(TxId, Vec<ParticipantWrites>)> = (0..4u64)
            .map(|m| {
                (
                    TxId::new(9, m),
                    vec![(1, vec![(uid(&format!("k{m}")), Some(vec![m as u8]))])],
                )
            })
            .collect();
        let actions = c.begin_batch(group, members);
        let mut mgr = TxManager::in_memory();
        let frames_before = mgr.wal_frames_appended();
        for (_, msg) in sends(&actions) {
            let DistMsg::Prepare {
                tx,
                coordinator,
                writes,
            } = msg
            else {
                panic!("expected prepare");
            };
            mgr.prepare_remote(*tx, *coordinator, writes.clone())
                .unwrap();
        }
        assert_eq!(
            mgr.wal_frames_appended(),
            frames_before + 1,
            "four member transactions prepare in one frame"
        );
        mgr.resolve_remote(group, true).unwrap();
        for m in 0..4u64 {
            assert!(mgr.exists_key(&uid(&format!("k{m}"))));
        }
    }

    #[test]
    fn messages_roundtrip_codec() {
        let msgs = vec![
            DistMsg::Prepare {
                tx: tx(),
                coordinator: 3,
                writes: vec![(uid("a"), None), (uid("b"), Some(vec![1]))],
            },
            DistMsg::Vote {
                tx: tx(),
                from: 1,
                yes: true,
            },
            DistMsg::Decision {
                tx: tx(),
                commit: false,
            },
            DistMsg::Ack { tx: tx(), from: 2 },
            DistMsg::QueryOutcome { tx: tx(), from: 2 },
        ];
        for msg in msgs {
            let bytes = flowscript_codec::to_bytes(&msg);
            assert_eq!(
                flowscript_codec::from_bytes::<DistMsg>(&bytes).unwrap(),
                msg
            );
        }
    }
}
