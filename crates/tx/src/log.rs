//! The redo-only write-ahead log.
//!
//! Uncommitted data never reaches the object store (no-steal), so the log
//! only needs *redo* information: the after-images of committed writes.
//! Recovery replays commits in order, starting from the newest checkpoint.
//! Prepared distributed transactions are additionally logged so in-doubt
//! participants can be resolved after a crash (see [`crate::dist`]).

use flowscript_codec::{frame, ByteReader, ByteWriter, CodecError, Decode, Encode, FrameReader};

use crate::error::TxError;
use crate::id::TxId;
use crate::key::StoreKey;
use crate::storage::Storage;

/// One durable log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A top-level transaction committed with these after-images
    /// (`None` payload = object deleted).
    Commit {
        /// The committing transaction.
        tx: TxId,
        /// After-images: key → new bytes or deletion.
        writes: Vec<(StoreKey, Option<Vec<u8>>)>,
    },
    /// Full store snapshot; earlier records are obsolete.
    Checkpoint {
        /// Every live object and its committed bytes.
        states: Vec<(StoreKey, Vec<u8>)>,
    },
    /// A 2PC participant prepared this transaction (vote "yes" is durable).
    Prepare {
        /// The distributed transaction.
        tx: TxId,
        /// Coordinator node, for in-doubt resolution after recovery.
        coordinator: u32,
        /// Staged after-images, applied only on a later `Resolve{commit}`.
        writes: Vec<(StoreKey, Option<Vec<u8>>)>,
    },
    /// Outcome of a prepared transaction.
    Resolve {
        /// The distributed transaction.
        tx: TxId,
        /// `true` = commit, `false` = abort.
        committed: bool,
    },
    /// Several records made durable as one frame (group commit). A torn
    /// group frame loses the whole group as a unit — recovery never sees
    /// a partial batch.
    GroupCommit {
        /// The grouped records, in commit order.
        records: Vec<LogRecord>,
    },
    /// The source side of an instance hand-off declared its intent: the
    /// instance's keyspace is about to be 2PC'd to `dest`. A `Begin`
    /// with no matching [`LogRecord::HandOffEnd`] after a crash means
    /// the outcome is unknown — recovery presumes abort and tells the
    /// destination.
    HandOffBegin {
        /// The distributed transaction moving the instance.
        tx: TxId,
        /// The moving instance's name.
        instance: String,
        /// Destination shard (coordinator node index).
        dest: u32,
    },
    /// The source side's hand-off decision (this is the 2PC
    /// coordinator's decision record: `committed` here is what the
    /// destination learns if it has to ask after a crash). On commit,
    /// the source's deletion of the moved keyspace follows as one
    /// ordinary `Commit`.
    HandOffEnd {
        /// The distributed transaction moving the instance.
        tx: TxId,
        /// The moving instance's name.
        instance: String,
        /// Destination shard (coordinator node index).
        dest: u32,
        /// `true` = the destination owns the instance now.
        committed: bool,
    },
    /// Another node claimed this storage (crash-driven failover): the
    /// claimant is about to adopt every instance recorded here. From
    /// this record on, any manager whose node is *not* the claimant is
    /// fenced — a zombie owner waking mid-adoption replays (or trips
    /// over) the fence and can never commit again, so it cannot
    /// double-drive the adopted instances.
    Fence {
        /// Node index of the claiming survivor.
        claimant: u32,
        /// Membership epoch the claim ran under (the post-failure
        /// shard map's bumped epoch — stale claims are diagnosable).
        epoch: u64,
    },
}

impl Encode for LogRecord {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            LogRecord::Commit { tx, writes } => {
                w.put_u8(0);
                tx.encode(w);
                writes.encode(w);
            }
            LogRecord::Checkpoint { states } => {
                w.put_u8(1);
                states.encode(w);
            }
            LogRecord::Prepare {
                tx,
                coordinator,
                writes,
            } => {
                w.put_u8(2);
                tx.encode(w);
                w.put_u32(*coordinator);
                writes.encode(w);
            }
            LogRecord::Resolve { tx, committed } => {
                w.put_u8(3);
                tx.encode(w);
                w.put_bool(*committed);
            }
            LogRecord::GroupCommit { records } => {
                w.put_u8(4);
                records.encode(w);
            }
            LogRecord::HandOffBegin { tx, instance, dest } => {
                w.put_u8(5);
                tx.encode(w);
                instance.encode(w);
                w.put_u32(*dest);
            }
            LogRecord::HandOffEnd {
                tx,
                instance,
                dest,
                committed,
            } => {
                w.put_u8(6);
                tx.encode(w);
                instance.encode(w);
                w.put_u32(*dest);
                w.put_bool(*committed);
            }
            LogRecord::Fence { claimant, epoch } => {
                w.put_u8(7);
                w.put_u32(*claimant);
                w.put_u64(*epoch);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(LogRecord::Commit {
                tx: TxId::decode(r)?,
                writes: Vec::decode(r)?,
            }),
            1 => Ok(LogRecord::Checkpoint {
                states: Vec::decode(r)?,
            }),
            2 => Ok(LogRecord::Prepare {
                tx: TxId::decode(r)?,
                coordinator: r.get_u32()?,
                writes: Vec::decode(r)?,
            }),
            3 => Ok(LogRecord::Resolve {
                tx: TxId::decode(r)?,
                committed: r.get_bool()?,
            }),
            4 => Ok(LogRecord::GroupCommit {
                records: Vec::decode(r)?,
            }),
            5 => Ok(LogRecord::HandOffBegin {
                tx: TxId::decode(r)?,
                instance: String::decode(r)?,
                dest: r.get_u32()?,
            }),
            6 => Ok(LogRecord::HandOffEnd {
                tx: TxId::decode(r)?,
                instance: String::decode(r)?,
                dest: r.get_u32()?,
                committed: r.get_bool()?,
            }),
            7 => Ok(LogRecord::Fence {
                claimant: r.get_u32()?,
                epoch: r.get_u64()?,
            }),
            other => Err(CodecError::InvalidDiscriminant {
                ty: "LogRecord",
                value: u64::from(other),
            }),
        }
    }
}

/// The write-ahead log over some [`Storage`].
#[derive(Debug)]
pub struct Wal<S> {
    storage: S,
    records_appended: u64,
}

impl<S: Storage> Wal<S> {
    /// Wraps existing storage (whose contents, if any, will be read by
    /// [`Wal::scan`]).
    pub fn new(storage: S) -> Self {
        Self {
            storage,
            records_appended: 0,
        }
    }

    /// Appends one record durably.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn append(&mut self, record: &LogRecord) -> Result<(), TxError> {
        let payload = flowscript_codec::to_bytes(record);
        let framed = frame::encode_frame(&payload)?;
        self.storage.append(&framed)?;
        self.records_appended += 1;
        Ok(())
    }

    /// Reads every decodable record. A torn final frame is dropped
    /// (interrupted append); corruption elsewhere is an error.
    ///
    /// # Errors
    ///
    /// [`TxError::Corrupt`] on checksum/decode failure mid-log,
    /// [`TxError::Storage`] on I/O failure.
    pub fn scan(&self) -> Result<Vec<LogRecord>, TxError> {
        let bytes = self.storage.read_all()?;
        let mut reader = FrameReader::new(&bytes);
        let (frames, _torn) = reader.read_all_tolerant()?;
        let mut records = Vec::with_capacity(frames.len());
        for payload in frames {
            records.push(flowscript_codec::from_bytes::<LogRecord>(payload)?);
        }
        Ok(records)
    }

    /// Reads every decodable record appended at or after byte `offset`
    /// (a frame boundary — callers pass a length they observed after
    /// one of their own appends). The cheap half of fence detection:
    /// a shared-storage writer scans only the tail another handle
    /// grew, not the whole log.
    ///
    /// # Errors
    ///
    /// As for [`Wal::scan`].
    pub fn scan_from(&self, offset: u64) -> Result<Vec<LogRecord>, TxError> {
        let bytes = self.storage.read_all()?;
        if offset as usize >= bytes.len() {
            return Ok(Vec::new());
        }
        let mut reader = FrameReader::new(&bytes[offset as usize..]);
        let (frames, _torn) = reader.read_all_tolerant()?;
        let mut records = Vec::with_capacity(frames.len());
        for payload in frames {
            records.push(flowscript_codec::from_bytes::<LogRecord>(payload)?);
        }
        Ok(records)
    }

    /// Replaces the entire log with a checkpoint of `states` (log
    /// compaction). The write happens before the truncation so that a
    /// crash between the two leaves a prefix that still replays correctly.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn rewrite_with_checkpoint(
        &mut self,
        states: Vec<(StoreKey, Vec<u8>)>,
        pending: Vec<LogRecord>,
    ) -> Result<(), TxError> {
        let old_len = self.storage.len();
        self.append(&LogRecord::Checkpoint { states })?;
        for record in &pending {
            self.append(record)?;
        }
        // Move the new tail to the front by rewriting storage wholesale.
        let bytes = self.storage.read_all()?;
        let tail = bytes[old_len as usize..].to_vec();
        self.storage.truncate(0)?;
        self.storage.append(&tail)?;
        Ok(())
    }

    /// Number of records appended through this handle (diagnostics).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Current log size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.len()
    }

    /// Consumes the WAL, returning the underlying storage.
    pub fn into_storage(self) -> S {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn uid(s: &str) -> StoreKey {
        StoreKey::Uid(crate::id::ObjectUid::new(s))
    }

    fn sample_commit(seq: u64) -> LogRecord {
        LogRecord::Commit {
            tx: TxId::new(0, seq),
            writes: vec![(uid("a"), Some(vec![1, 2, 3])), (uid("b"), None)],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(&sample_commit(1)).unwrap();
        wal.append(&LogRecord::Resolve {
            tx: TxId::new(1, 2),
            committed: true,
        })
        .unwrap();
        let records = wal.scan().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], sample_commit(1));
        assert_eq!(wal.records_appended(), 2);
    }

    #[test]
    fn torn_tail_dropped_cleanly() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(&sample_commit(1)).unwrap();
        wal.append(&sample_commit(2)).unwrap();
        let mut storage = wal.into_storage();
        let len = storage.len();
        storage.truncate(len - 3).unwrap();
        let wal = Wal::new(storage);
        let records = wal.scan().unwrap();
        assert_eq!(records.len(), 1, "only the intact record survives");
    }

    #[test]
    fn corruption_mid_log_is_an_error() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(&sample_commit(1)).unwrap();
        wal.append(&sample_commit(2)).unwrap();
        let storage = wal.into_storage();
        let mut bytes = storage.read_all().unwrap();
        // Flip a payload byte inside the first frame (offset past header).
        bytes[20] ^= 0xFF;
        let mut corrupted = MemStorage::new();
        corrupted.append(&bytes).unwrap();
        let wal = Wal::new(corrupted);
        assert!(matches!(wal.scan(), Err(TxError::Corrupt(_))));
    }

    #[test]
    fn checkpoint_rewrite_compacts() {
        let mut wal = Wal::new(MemStorage::new());
        for seq in 0..50 {
            wal.append(&sample_commit(seq)).unwrap();
        }
        let big = wal.size_bytes();
        wal.rewrite_with_checkpoint(vec![(uid("a"), vec![9])], vec![])
            .unwrap();
        assert!(wal.size_bytes() < big);
        let records = wal.scan().unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], LogRecord::Checkpoint { .. }));
    }

    #[test]
    fn checkpoint_preserves_pending_records() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(&sample_commit(1)).unwrap();
        let prepare = LogRecord::Prepare {
            tx: TxId::new(2, 9),
            coordinator: 0,
            writes: vec![(uid("x"), Some(vec![7]))],
        };
        wal.rewrite_with_checkpoint(vec![], vec![prepare.clone()])
            .unwrap();
        let records = wal.scan().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], prepare);
    }

    #[test]
    fn torn_group_frame_drops_whole_group() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(&sample_commit(1)).unwrap();
        wal.append(&LogRecord::GroupCommit {
            records: vec![sample_commit(2), sample_commit(3), sample_commit(4)],
        })
        .unwrap();
        let mut storage = wal.into_storage();
        let len = storage.len();
        // Tear off the frame tail: the whole group vanishes as a unit,
        // never a prefix of its member records.
        storage.truncate(len - 3).unwrap();
        let wal = Wal::new(storage);
        let records = wal.scan().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], sample_commit(1));
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        let records = vec![
            sample_commit(3),
            LogRecord::Checkpoint {
                states: vec![(uid("s"), vec![1])],
            },
            LogRecord::Prepare {
                tx: TxId::new(1, 4),
                coordinator: 7,
                writes: vec![],
            },
            LogRecord::Resolve {
                tx: TxId::new(1, 4),
                committed: false,
            },
            LogRecord::GroupCommit {
                records: vec![
                    sample_commit(5),
                    LogRecord::GroupCommit {
                        records: vec![sample_commit(6)],
                    },
                ],
            },
            LogRecord::HandOffBegin {
                tx: TxId::new(2, 8),
                instance: "wf-moving".into(),
                dest: 3,
            },
            LogRecord::HandOffEnd {
                tx: TxId::new(2, 8),
                instance: "wf-moving".into(),
                dest: 3,
                committed: true,
            },
            LogRecord::Fence {
                claimant: 4,
                epoch: 9,
            },
        ];
        for record in records {
            let bytes = flowscript_codec::to_bytes(&record);
            assert_eq!(
                flowscript_codec::from_bytes::<LogRecord>(&bytes).unwrap(),
                record
            );
        }
    }
}
