use std::fmt;

use crate::id::TxId;
use crate::key::StoreKey;
use crate::lock::Conflict;

/// Errors raised by the transaction substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// A lock could not be granted. The embedded [`Conflict`] tells the
    /// caller whether wait-die policy says to retry later (`Wait`) or to
    /// abort itself (`Die`).
    Lock {
        /// The contended object's key.
        key: StoreKey,
        /// The holder that blocked us.
        holder: TxId,
        /// Wait-die verdict for the requester.
        conflict: Conflict,
    },
    /// The action id is unknown (already committed/aborted, or foreign).
    UnknownAction(TxId),
    /// A nested action's parent has already terminated.
    ParentTerminated(TxId),
    /// The log or a stored object failed to decode.
    Corrupt(flowscript_codec::CodecError),
    /// Underlying storage failed (file-backed logs only).
    Storage(String),
    /// A distributed transaction could not reach a commit decision.
    DistAborted {
        /// The distributed transaction.
        tx: TxId,
        /// Human-readable reason (vote no, timeout…).
        reason: String,
    },
    /// Another node claimed this storage (a durable
    /// [`crate::LogRecord::Fence`] by a different claimant): this
    /// manager may never append again. Terminal by design — the fenced
    /// owner is a zombie and the claimant's adopted copies are the
    /// truth.
    Fenced {
        /// The claiming node.
        claimant: u32,
        /// Membership epoch stamped into the claim.
        epoch: u64,
    },
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Lock {
                key,
                holder,
                conflict,
            } => write!(
                f,
                "lock conflict on {key}: held by {holder}, verdict {conflict:?}"
            ),
            TxError::UnknownAction(tx) => write!(f, "unknown or terminated action {tx}"),
            TxError::ParentTerminated(tx) => write!(f, "parent action {tx} already terminated"),
            TxError::Corrupt(err) => write!(f, "corrupt transactional state: {err}"),
            TxError::Storage(msg) => write!(f, "storage failure: {msg}"),
            TxError::DistAborted { tx, reason } => {
                write!(f, "distributed transaction {tx} aborted: {reason}")
            }
            TxError::Fenced { claimant, epoch } => write!(
                f,
                "storage fenced: claimed by node {claimant} at epoch {epoch}"
            ),
        }
    }
}

impl std::error::Error for TxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxError::Corrupt(err) => Some(err),
            _ => None,
        }
    }
}

impl From<flowscript_codec::CodecError> for TxError {
    fn from(err: flowscript_codec::CodecError) -> Self {
        TxError::Corrupt(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let lock = TxError::Lock {
            key: StoreKey::Uid(crate::id::ObjectUid::new("o")),
            holder: TxId::new(0, 1),
            conflict: Conflict::Wait,
        };
        assert!(lock.to_string().contains("lock conflict"));
        assert!(TxError::UnknownAction(TxId::new(0, 2))
            .to_string()
            .contains("unknown"));
        assert!(TxError::Storage("disk".into()).to_string().contains("disk"));
    }

    #[test]
    fn codec_error_converts_with_source() {
        use std::error::Error as _;
        let err: TxError = flowscript_codec::CodecError::InvalidUtf8.into();
        assert!(err.source().is_some());
    }
}
