use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use flowscript_codec::{Decode, Encode};
use flowscript_obs::{Counter, Histogram, ObserveLevel, Registry};

use crate::error::TxError;
use crate::id::{Handle, ObjectUid, TxId};
use crate::key::{FactKey, StoreKey};
use crate::lock::{Acquired, LockManager, LockMode};
use crate::log::{LogRecord, Wal};
use crate::storage::{SharedStorage, Storage};

/// A live atomic action (transaction).
///
/// Deliberately neither `Clone` nor `Copy`: an action is terminated exactly
/// once, by passing it *by value* to [`TxManager::commit`] or
/// [`TxManager::abort`].
#[derive(Debug)]
pub struct AtomicAction {
    id: TxId,
    parent: Option<TxId>,
}

impl AtomicAction {
    /// This action's transaction id.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The enclosing action's id, when nested.
    pub fn parent(&self) -> Option<TxId> {
        self.parent
    }

    /// Whether this is a top-level action.
    pub fn is_top_level(&self) -> bool {
        self.parent.is_none()
    }
}

#[derive(Debug, Default)]
struct Workspace {
    /// Staged after-images; `None` marks a deletion.
    writes: HashMap<StoreKey, Option<Vec<u8>>>,
    /// First-write order, for deterministic log records.
    order: Vec<StoreKey>,
}

impl Workspace {
    fn stage(&mut self, key: StoreKey, value: Option<Vec<u8>>) {
        if !self.writes.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.writes.insert(key, value);
    }

    fn into_ordered(mut self) -> Vec<(StoreKey, Option<Vec<u8>>)> {
        self.order
            .drain(..)
            .map(|key| {
                let value = self.writes.remove(&key).expect("ordered key staged");
                (key, value)
            })
            .collect()
    }
}

#[derive(Debug)]
struct ActiveTx {
    parent: Option<TxId>,
    children: Vec<TxId>,
    workspace: Workspace,
}

#[derive(Debug)]
struct PreparedTx {
    coordinator: u32,
    writes: Vec<(StoreKey, Option<Vec<u8>>)>,
}

/// The manager's metric handles, registered under `tx.*`/`wal.*` in
/// whatever [`Registry`] the manager was opened with (a private one
/// for [`TxManager::open`], the shard's for
/// [`TxManager::open_with_metrics`]). The legacy getters
/// ([`TxManager::prefix_scan_count`] and friends) are thin wrappers
/// over these handles.
#[derive(Debug, Clone)]
struct TxMetrics {
    /// Top-level and nested commits (`tx.commits`).
    commits: Counter,
    /// Aborts, explicit or cascading (`tx.aborts`).
    aborts: Counter,
    /// Uid prefix scans served (`tx.prefix_scans`). Scans are
    /// O(matches) range walks, fine for recovery and cold admin paths —
    /// but the engine's per-commit paths must never need one, and
    /// regression tests assert this counter stays flat during runs.
    prefix_scans: Counter,
    /// Fact range scans served (`tx.fact_range_scans`). Legitimate on
    /// subtree cancel/reset, whole-fact reconstruction and
    /// reconfiguration — but a readiness *probe* must be a point read,
    /// and regression tests assert clean runs keep this counter flat.
    fact_range_scans: Counter,
    /// Committed-state point reads of fact keys (`tx.fact_point_reads`)
    /// — the cheap side of the point-read-vs-range-scan split above.
    fact_point_reads: Counter,
    /// Lock requests denied with a wait-die verdict (`tx.lock_waits`).
    lock_waits: Counter,
    /// 2PC protocol steps processed here — prepares, resolves and
    /// coordinator decision records (`tx.two_pc_rounds`).
    two_pc_rounds: Counter,
    /// Groups of ≥2 commits flushed as one `GroupCommit` frame
    /// (`tx.group_commits`).
    group_commits: Counter,
    /// Write frames per top-level commit record
    /// (`wal.frames_per_commit`); only fed when observing metrics.
    wal_frames_per_commit: Histogram,
    /// Bytes per appended WAL frame (`wal.bytes_per_frame`); only fed
    /// when observing metrics.
    wal_bytes_per_frame: Histogram,
}

impl TxMetrics {
    fn register(registry: &Registry) -> Self {
        TxMetrics {
            commits: registry.counter("tx.commits"),
            aborts: registry.counter("tx.aborts"),
            prefix_scans: registry.counter("tx.prefix_scans"),
            fact_range_scans: registry.counter("tx.fact_range_scans"),
            fact_point_reads: registry.counter("tx.fact_point_reads"),
            lock_waits: registry.counter("tx.lock_waits"),
            two_pc_rounds: registry.counter("tx.two_pc_rounds"),
            group_commits: registry.counter("tx.group_commits"),
            wal_frames_per_commit: registry.histogram("wal.frames_per_commit"),
            wal_bytes_per_frame: registry.histogram("wal.bytes_per_frame"),
        }
    }
}

/// The transaction manager: atomic actions over a persistent object store.
///
/// One `TxManager` corresponds to one node's recoverable state (the paper's
/// "persistent atomic objects"). All coordination data the engine keeps —
/// task control blocks, dependency records, produced outputs — lives in
/// objects managed here, so a crash between events loses nothing that was
/// committed and everything that was not.
///
/// Objects are addressed by [`StoreKey`]: string [`ObjectUid`]s for the
/// self-describing metadata, dense [`FactKey`]s for the dependency facts
/// of the commit hot path. The store is ordered by key, so uid prefixes
/// and fact ranges are both real range scans.
#[derive(Debug)]
pub struct TxManager<S = SharedStorage> {
    node: u32,
    wal: Wal<S>,
    store: BTreeMap<StoreKey, Vec<u8>>,
    locks: LockManager,
    active: HashMap<TxId, ActiveTx>,
    prepared: HashMap<TxId, PreparedTx>,
    /// Commit decisions this node made as a 2PC coordinator (presumed
    /// abort: only commits are remembered durably).
    coordinator_commits: HashMap<TxId, bool>,
    /// Instance hand-offs this node initiated whose outcome is not yet
    /// durable: `HandOffBegin` logged, no matching `HandOffEnd`. Keyed
    /// by the moving transaction; one transaction may batch several
    /// instances bound for the same destination (planned drains), so
    /// the value is every (instance, dest shard) still undecided.
    open_handoffs: HashMap<TxId, Vec<(String, u32)>>,
    /// Hand-off decisions seen during log replay (crash recovery needs
    /// to re-announce committed moves and purge leftover state).
    replayed_handoff_ends: Vec<(TxId, String, u32, bool)>,
    next_seq: u64,
    /// Open [`TxManager::begin_group`] nesting depth; while positive,
    /// top-level commit records buffer instead of hitting the WAL.
    group_depth: usize,
    /// Commit records awaiting the group flush, in commit order.
    group_buffer: Vec<LogRecord>,
    /// A durable [`LogRecord::Fence`] by *another* node: `(claimant,
    /// epoch)`. Set at replay, or detected mid-run by the tail probe in
    /// [`TxManager::append_record`] (the storage is shared, so a
    /// claimant's fence lands in this manager's log behind its back).
    /// Once set, every append fails with [`TxError::Fenced`].
    fence: Option<(u32, u64)>,
    /// Log length after this manager's own last append — a tail beyond
    /// it means another handle wrote (fence detection).
    wal_len: u64,
    metrics: TxMetrics,
    observe: ObserveLevel,
}

impl TxManager<SharedStorage> {
    /// A fresh manager over new in-memory shared storage (node id 0).
    pub fn in_memory() -> Self {
        Self::open(0, SharedStorage::new()).expect("empty storage cannot fail recovery")
    }
}

impl<S: Storage> TxManager<S> {
    /// Opens a manager over `storage`, replaying any existing log
    /// (recovery). An empty log yields an empty store.
    ///
    /// # Errors
    ///
    /// [`TxError::Corrupt`] if the log is damaged beyond a torn tail,
    /// [`TxError::Storage`] on I/O failure.
    pub fn open(node: u32, storage: S) -> Result<Self, TxError> {
        Self::open_with_metrics(node, storage, &Registry::new(), ObserveLevel::Off)
    }

    /// [`TxManager::open`] registering this manager's metrics
    /// (`tx.*`/`wal.*`) in the caller's `registry` instead of a private
    /// one, observing at `observe` (gates the optional histograms; the
    /// always-on counters behind the legacy getters tick regardless).
    ///
    /// # Errors
    ///
    /// As for [`TxManager::open`].
    pub fn open_with_metrics(
        node: u32,
        storage: S,
        registry: &Registry,
        observe: ObserveLevel,
    ) -> Result<Self, TxError> {
        let wal = Wal::new(storage);
        let records = wal.scan()?;
        let mut store = BTreeMap::new();
        let mut prepared: HashMap<TxId, PreparedTx> = HashMap::new();
        let mut coordinator_commits = HashMap::new();
        let mut open_handoffs: HashMap<TxId, Vec<(String, u32)>> = HashMap::new();
        let mut replayed_handoff_ends: Vec<(TxId, String, u32, bool)> = Vec::new();
        let mut fence: Option<(u32, u64)> = None;
        let mut max_seq = 0u64;
        // Worklist so `GroupCommit` frames flatten to their member
        // records in order (groups may nest; replay order is preserved
        // by pushing members reversed onto the stack).
        let mut worklist: Vec<LogRecord> = records;
        worklist.reverse();
        while let Some(record) = worklist.pop() {
            match record {
                LogRecord::GroupCommit { records } => {
                    worklist.extend(records.into_iter().rev());
                }
                LogRecord::Checkpoint { states } => {
                    store = states.into_iter().collect();
                }
                LogRecord::Commit { tx, writes } => {
                    max_seq = max_seq.max(tx.seq());
                    apply_writes(&mut store, &writes);
                }
                LogRecord::Prepare {
                    tx,
                    coordinator,
                    writes,
                } => {
                    max_seq = max_seq.max(tx.seq());
                    prepared.insert(
                        tx,
                        PreparedTx {
                            coordinator,
                            writes,
                        },
                    );
                }
                LogRecord::Resolve { tx, committed } => {
                    max_seq = max_seq.max(tx.seq());
                    if let Some(p) = prepared.remove(&tx) {
                        if committed {
                            apply_writes(&mut store, &p.writes);
                        }
                    } else {
                        // A resolve without a local prepare is a
                        // coordinator-side decision record.
                        coordinator_commits.insert(tx, committed);
                    }
                }
                LogRecord::HandOffBegin { tx, instance, dest } => {
                    max_seq = max_seq.max(tx.seq());
                    open_handoffs.entry(tx).or_default().push((instance, dest));
                }
                LogRecord::HandOffEnd {
                    tx,
                    instance,
                    dest,
                    committed,
                } => {
                    max_seq = max_seq.max(tx.seq());
                    if let Some(batch) = open_handoffs.get_mut(&tx) {
                        batch.retain(|(name, _)| *name != instance);
                        if batch.is_empty() {
                            open_handoffs.remove(&tx);
                        }
                    }
                    // The end frame doubles as the 2PC coordinator
                    // decision for the move.
                    coordinator_commits.insert(tx, committed);
                    replayed_handoff_ends.push((tx, instance, dest, committed));
                }
                LogRecord::Fence { claimant, epoch } => {
                    // A claimant reopening storage it fenced itself must
                    // not be fenced out by its own claim.
                    if claimant != node {
                        fence = Some((claimant, epoch));
                    }
                }
            }
        }
        let mut locks = LockManager::new();
        // In-doubt transactions keep their write locks so nothing reads
        // through them until the coordinator's verdict arrives.
        for (tx, p) in &prepared {
            for (key, _) in &p.writes {
                let acquired = locks.acquire(*tx, key, LockMode::Write);
                debug_assert_eq!(acquired, Acquired::Granted);
            }
        }
        let wal_len = wal.size_bytes();
        Ok(Self {
            node,
            wal,
            store,
            locks,
            active: HashMap::new(),
            prepared,
            coordinator_commits,
            open_handoffs,
            replayed_handoff_ends,
            next_seq: max_seq + 1,
            group_depth: 0,
            group_buffer: Vec::new(),
            fence,
            wal_len,
            metrics: TxMetrics::register(registry),
            observe,
        })
    }

    /// This manager's node id (used in [`TxId`]s it mints).
    pub fn node(&self) -> u32 {
        self.node
    }

    fn mint(&mut self) -> TxId {
        let id = TxId::new(self.node, self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Begins a top-level atomic action.
    pub fn begin(&mut self) -> AtomicAction {
        let id = self.mint();
        self.active.insert(
            id,
            ActiveTx {
                parent: None,
                children: Vec::new(),
                workspace: Workspace::default(),
            },
        );
        AtomicAction { id, parent: None }
    }

    /// Begins an action nested inside `parent`. Its effects become
    /// permanent only when every enclosing action commits.
    ///
    /// # Errors
    ///
    /// [`TxError::UnknownAction`] if the parent has already terminated.
    pub fn begin_nested(&mut self, parent: &AtomicAction) -> Result<AtomicAction, TxError> {
        if !self.active.contains_key(&parent.id) {
            return Err(TxError::UnknownAction(parent.id));
        }
        let id = self.mint();
        self.active.insert(
            id,
            ActiveTx {
                parent: Some(parent.id),
                children: Vec::new(),
                workspace: Workspace::default(),
            },
        );
        self.active
            .get_mut(&parent.id)
            .expect("checked above")
            .children
            .push(id);
        Ok(AtomicAction {
            id,
            parent: Some(parent.id),
        })
    }

    fn acquire(&mut self, tx: TxId, key: &StoreKey, mode: LockMode) -> Result<(), TxError> {
        match self.locks.acquire(tx, key, mode) {
            Acquired::Granted => Ok(()),
            Acquired::Conflicted { holder, verdict } => {
                self.metrics.lock_waits.inc();
                Err(TxError::Lock {
                    key: key.clone(),
                    holder,
                    conflict: verdict,
                })
            }
        }
    }

    /// Reads an object within an action, acquiring a read lock.
    /// Returns `None` if the object does not exist.
    ///
    /// # Errors
    ///
    /// [`TxError::Lock`] on conflict, [`TxError::UnknownAction`] for a
    /// terminated action, [`TxError::Corrupt`] if stored bytes fail to
    /// decode as `T`.
    pub fn read<T: Decode>(
        &mut self,
        action: &AtomicAction,
        uid: &ObjectUid,
    ) -> Result<Option<T>, TxError> {
        self.read_key(action, &StoreKey::from(uid))
    }

    /// [`TxManager::read`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::read`].
    pub fn read_key<T: Decode>(
        &mut self,
        action: &AtomicAction,
        key: &StoreKey,
    ) -> Result<Option<T>, TxError> {
        let bytes = self.read_key_raw(action, key)?;
        match bytes {
            None => Ok(None),
            Some(b) => Ok(Some(flowscript_codec::from_bytes(&b)?)),
        }
    }

    /// Reads raw object bytes within an action (see [`TxManager::read`]).
    ///
    /// # Errors
    ///
    /// As for [`TxManager::read`], minus decode failures.
    pub fn read_raw(
        &mut self,
        action: &AtomicAction,
        uid: &ObjectUid,
    ) -> Result<Option<Vec<u8>>, TxError> {
        self.read_key_raw(action, &StoreKey::from(uid))
    }

    /// [`TxManager::read_raw`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::read_raw`].
    pub fn read_key_raw(
        &mut self,
        action: &AtomicAction,
        key: &StoreKey,
    ) -> Result<Option<Vec<u8>>, TxError> {
        if !self.active.contains_key(&action.id) {
            return Err(TxError::UnknownAction(action.id));
        }
        self.acquire(action.id, key, LockMode::Read)?;
        // Nearest staged version wins: this action, then ancestors.
        let mut cursor = Some(action.id);
        while let Some(txid) = cursor {
            let entry = self
                .active
                .get(&txid)
                .expect("ancestor chain of active action");
            if let Some(staged) = entry.workspace.writes.get(key) {
                return Ok(staged.clone());
            }
            cursor = entry.parent;
        }
        Ok(self.store.get(key).cloned())
    }

    /// Writes an object within an action, acquiring a write lock. The
    /// value is staged and reaches the store only on top-level commit.
    ///
    /// # Errors
    ///
    /// [`TxError::Lock`] on conflict, [`TxError::UnknownAction`] for a
    /// terminated action.
    pub fn write<T: Encode + ?Sized>(
        &mut self,
        action: &AtomicAction,
        uid: &ObjectUid,
        value: &T,
    ) -> Result<(), TxError> {
        self.write_key(action, &StoreKey::from(uid), value)
    }

    /// [`TxManager::write`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::write`].
    pub fn write_key<T: Encode + ?Sized>(
        &mut self,
        action: &AtomicAction,
        key: &StoreKey,
        value: &T,
    ) -> Result<(), TxError> {
        self.write_key_raw(action, key, flowscript_codec::to_bytes(value))
    }

    /// Writes raw object bytes within an action (see [`TxManager::write`]).
    ///
    /// # Errors
    ///
    /// As for [`TxManager::write`].
    pub fn write_raw(
        &mut self,
        action: &AtomicAction,
        uid: &ObjectUid,
        bytes: Vec<u8>,
    ) -> Result<(), TxError> {
        self.write_key_raw(action, &StoreKey::from(uid), bytes)
    }

    /// [`TxManager::write_raw`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::write_raw`].
    pub fn write_key_raw(
        &mut self,
        action: &AtomicAction,
        key: &StoreKey,
        bytes: Vec<u8>,
    ) -> Result<(), TxError> {
        if !self.active.contains_key(&action.id) {
            return Err(TxError::UnknownAction(action.id));
        }
        self.acquire(action.id, key, LockMode::Write)?;
        self.active
            .get_mut(&action.id)
            .expect("checked above")
            .workspace
            .stage(key.clone(), Some(bytes));
        Ok(())
    }

    /// Deletes an object within an action.
    ///
    /// # Errors
    ///
    /// As for [`TxManager::write`].
    pub fn delete(&mut self, action: &AtomicAction, uid: &ObjectUid) -> Result<(), TxError> {
        self.delete_key(action, &StoreKey::from(uid))
    }

    /// [`TxManager::delete`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::delete`].
    pub fn delete_key(&mut self, action: &AtomicAction, key: &StoreKey) -> Result<(), TxError> {
        if !self.active.contains_key(&action.id) {
            return Err(TxError::UnknownAction(action.id));
        }
        self.acquire(action.id, key, LockMode::Write)?;
        self.active
            .get_mut(&action.id)
            .expect("checked above")
            .workspace
            .stage(key.clone(), None);
        Ok(())
    }

    /// Typed read through a [`Handle`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::read`].
    pub fn read_handle<T: Decode>(
        &mut self,
        action: &AtomicAction,
        handle: &Handle<T>,
    ) -> Result<Option<T>, TxError> {
        self.read(action, handle.uid())
    }

    /// Typed write through a [`Handle`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::write`].
    pub fn write_handle<T: Encode>(
        &mut self,
        action: &AtomicAction,
        handle: &Handle<T>,
        value: &T,
    ) -> Result<(), TxError> {
        self.write(action, handle.uid(), value)
    }

    /// Commits an action.
    ///
    /// Top-level: the staged writes are logged durably, applied to the
    /// store, and all locks released. Nested: the writes and locks are
    /// inherited by the parent. Any still-open children are aborted first.
    ///
    /// # Errors
    ///
    /// [`TxError::UnknownAction`] if already terminated;
    /// [`TxError::ParentTerminated`] if a nested action outlived its
    /// parent; storage errors on log append.
    pub fn commit(&mut self, action: AtomicAction) -> Result<(), TxError> {
        self.abort_open_children(action.id);
        let entry = self
            .active
            .remove(&action.id)
            .ok_or(TxError::UnknownAction(action.id))?;
        match entry.parent {
            Some(parent_id) => {
                let Some(parent) = self.active.get_mut(&parent_id) else {
                    // Parent vanished: abandon the child's effects.
                    self.locks.release_all(action.id);
                    self.metrics.aborts.inc();
                    return Err(TxError::ParentTerminated(parent_id));
                };
                for (key, value) in entry.workspace.into_ordered() {
                    parent.workspace.stage(key, value);
                }
                parent.children.retain(|c| *c != action.id);
                self.locks.transfer(action.id, parent_id);
                self.metrics.commits.inc();
                Ok(())
            }
            None => {
                let writes = entry.workspace.into_ordered();
                if self.observe.metrics() {
                    self.metrics
                        .wal_frames_per_commit
                        .record(writes.len() as u64);
                }
                if !writes.is_empty() {
                    let record = LogRecord::Commit {
                        tx: action.id,
                        writes: writes.clone(),
                    };
                    if self.group_depth > 0 {
                        self.group_buffer.push(record);
                    } else {
                        self.append_record(&record)?;
                    }
                    apply_writes(&mut self.store, &writes);
                }
                self.locks.release_all(action.id);
                self.metrics.commits.inc();
                Ok(())
            }
        }
    }

    /// Aborts an action, discarding its staged writes (and those of any
    /// open children). Idempotent for already-terminated ids.
    pub fn abort(&mut self, action: AtomicAction) {
        self.abort_by_id(action.id);
    }

    // ------------------------------------------------------------------
    // Group commit (batched durability).
    // ------------------------------------------------------------------

    /// Opens a commit group: until the matching [`TxManager::end_group`],
    /// top-level commits apply to the store and release their locks as
    /// usual but their log records buffer in memory instead of each
    /// paying a WAL frame. Nests — only the outermost `end_group`
    /// flushes. A crash before the flush loses the whole open group as
    /// a unit (no partial batch is ever durable), which is exactly the
    /// pre-flush window an unbatched caller would have lost anyway.
    pub fn begin_group(&mut self) {
        self.group_depth += 1;
    }

    /// Closes one [`TxManager::begin_group`] level; at depth zero the
    /// buffered records flush — one record appends bare, two or more
    /// become a single [`LogRecord::GroupCommit`] frame.
    ///
    /// # Errors
    ///
    /// Storage errors on the flush append.
    pub fn end_group(&mut self) -> Result<(), TxError> {
        debug_assert!(self.group_depth > 0, "end_group without begin_group");
        self.group_depth = self.group_depth.saturating_sub(1);
        if self.group_depth > 0 {
            return Ok(());
        }
        self.flush_group()
    }

    /// Whether a commit group is currently open (callers gate log
    /// compaction on this: a rewrite mid-group would reorder records
    /// around the unflushed buffer).
    pub fn in_group(&self) -> bool {
        self.group_depth > 0
    }

    fn flush_group(&mut self) -> Result<(), TxError> {
        match self.group_buffer.len() {
            0 => Ok(()),
            1 => {
                let record = self.group_buffer.pop().expect("length checked");
                self.append_record(&record)
            }
            _ => {
                let records = std::mem::take(&mut self.group_buffer);
                self.metrics.group_commits.inc();
                self.append_record(&LogRecord::GroupCommit { records })
            }
        }
    }

    /// Routes a hand-off frame through the open commit group when one
    /// is active — a drain batching N decisions under one group flushes
    /// them as a single atomic `GroupCommit` frame (no crash can leave
    /// half the batch decided) — and appends directly otherwise.
    fn append_or_buffer(&mut self, record: LogRecord) -> Result<(), TxError> {
        if self.group_depth > 0 {
            self.check_fence()?;
            self.group_buffer.push(record);
            Ok(())
        } else {
            self.append_record(&record)
        }
    }

    fn append_record(&mut self, record: &LogRecord) -> Result<(), TxError> {
        self.check_fence()?;
        if self.observe.metrics() {
            let before = self.wal.size_bytes();
            self.wal.append(record)?;
            self.metrics
                .wal_bytes_per_frame
                .record(self.wal.size_bytes().saturating_sub(before));
        } else {
            self.wal.append(record)?;
        }
        self.wal_len = self.wal.size_bytes();
        Ok(())
    }

    /// Refuses the next append if another node has claimed this storage.
    /// Cheap in the common case (a length compare); only when the log
    /// grew behind our back — some other handle appended — do we scan
    /// the foreign tail for a [`LogRecord::Fence`].
    fn check_fence(&mut self) -> Result<(), TxError> {
        if let Some((claimant, epoch)) = self.fence {
            return Err(TxError::Fenced { claimant, epoch });
        }
        let len = self.wal.size_bytes();
        if len != self.wal_len {
            for record in self.wal.scan_from(self.wal_len)? {
                if let LogRecord::Fence { claimant, epoch } = record {
                    if claimant != self.node {
                        self.fence = Some((claimant, epoch));
                        return Err(TxError::Fenced { claimant, epoch });
                    }
                }
            }
            // Foreign tail but no fence in it (e.g. our own claim written
            // through a sibling handle): fold it into the watermark.
            self.wal_len = len;
        }
        Ok(())
    }

    /// The fence this manager has observed, if any: `(claimant, epoch)`.
    /// Cached — does not touch storage; use [`TxManager::probe_fence`]
    /// to actively check the log tail.
    pub fn fenced(&self) -> Option<(u32, u64)> {
        self.fence
    }

    /// Actively checks the log tail for a foreign fence and returns the
    /// verdict. Lets callers muzzle a zombie *before* it starts mutating
    /// in-memory state, instead of discovering the fence mid-commit.
    pub fn probe_fence(&mut self) -> Option<(u32, u64)> {
        let _ = self.check_fence();
        self.fence
    }

    /// Durably claims this storage for `self.node` at membership
    /// `epoch`: appends a [`LogRecord::Fence`] that every *other* node's
    /// manager will trip over on its next append (or replay). Writing
    /// one's own fence again is idempotent; claiming storage another
    /// node already fenced fails with [`TxError::Fenced`].
    ///
    /// # Errors
    ///
    /// [`TxError::Fenced`] if a different claimant got there first,
    /// [`TxError::Storage`] on I/O failure.
    pub fn write_fence(&mut self, epoch: u64) -> Result<(), TxError> {
        self.append_record(&LogRecord::Fence {
            claimant: self.node,
            epoch,
        })
    }

    fn abort_by_id(&mut self, id: TxId) {
        self.abort_open_children(id);
        if let Some(entry) = self.active.remove(&id) {
            if let Some(parent_id) = entry.parent {
                if let Some(parent) = self.active.get_mut(&parent_id) {
                    parent.children.retain(|c| *c != id);
                }
            }
            self.locks.release_all(id);
            self.metrics.aborts.inc();
        }
    }

    fn abort_open_children(&mut self, id: TxId) {
        let children = match self.active.get(&id) {
            Some(entry) => entry.children.clone(),
            None => return,
        };
        for child in children {
            self.abort_by_id(child);
        }
    }

    /// Reads the committed state of an object outside any transaction
    /// (dirty reads impossible: uncommitted data never reaches the store).
    ///
    /// # Errors
    ///
    /// [`TxError::Corrupt`] if the stored bytes fail to decode as `T`.
    pub fn read_committed<T: Decode>(&self, uid: &ObjectUid) -> Result<Option<T>, TxError> {
        self.read_committed_key(&StoreKey::from(uid))
    }

    /// [`TxManager::read_committed`] for any [`StoreKey`].
    ///
    /// # Errors
    ///
    /// As for [`TxManager::read_committed`].
    pub fn read_committed_key<T: Decode>(&self, key: &StoreKey) -> Result<Option<T>, TxError> {
        if matches!(key, StoreKey::Fact(_)) {
            self.metrics.fact_point_reads.inc();
        }
        match self.store.get(key) {
            None => Ok(None),
            Some(bytes) => Ok(Some(flowscript_codec::from_bytes(bytes)?)),
        }
    }

    /// The committed raw bytes of an object (key remapping, diagnostics).
    pub fn read_committed_bytes(&self, key: &StoreKey) -> Option<&[u8]> {
        self.store.get(key).map(Vec::as_slice)
    }

    /// Whether an object exists in committed state.
    pub fn exists(&self, uid: &ObjectUid) -> bool {
        self.store.contains_key(&StoreKey::from(uid))
    }

    /// Whether an object exists in committed state, for any key.
    pub fn exists_key(&self, key: &StoreKey) -> bool {
        if matches!(key, StoreKey::Fact(_)) {
            self.metrics.fact_point_reads.inc();
        }
        self.store.contains_key(key)
    }

    /// All committed uids with the given prefix, sorted (recovery
    /// enumeration). One range scan: uids order before fact keys.
    pub fn uids_with_prefix(&self, prefix: &str) -> Vec<ObjectUid> {
        self.uids_matching(prefix, "")
    }

    /// [`TxManager::uids_with_prefix`] keeping only uids that also end
    /// with `suffix` — the filter runs before any clone, so enumerating
    /// the few `inst/…/meta` objects among many control blocks does not
    /// materialize the rest.
    pub fn uids_matching(&self, prefix: &str, suffix: &str) -> Vec<ObjectUid> {
        self.metrics.prefix_scans.inc();
        let start = StoreKey::Uid(ObjectUid::new(prefix));
        self.store
            .range((Bound::Included(start), Bound::Unbounded))
            .map_while(|(key, _)| key.as_uid())
            .take_while(|uid| uid.as_str().starts_with(prefix))
            .filter(|uid| uid.as_str().ends_with(suffix))
            .cloned()
            .collect()
    }

    /// All committed fact keys in `lo..=hi`, in key order (subtree
    /// cancel/reset, reconfiguration remapping). One range scan over the
    /// dense fact index space.
    pub fn fact_keys_in_range(&self, lo: FactKey, hi: FactKey) -> Vec<FactKey> {
        self.metrics.fact_range_scans.inc();
        self.store
            .range(StoreKey::Fact(lo)..=StoreKey::Fact(hi))
            .filter_map(|(key, _)| key.as_fact())
            .collect()
    }

    /// All committed fact keys in `lo..=hi` with their raw payloads
    /// (whole-fact reconstruction on cold paths: monitoring, recovery
    /// re-dispatch, reconfiguration remapping). One range scan.
    pub fn facts_in_range(&self, lo: FactKey, hi: FactKey) -> Vec<(FactKey, Vec<u8>)> {
        self.metrics.fact_range_scans.inc();
        self.store
            .range(StoreKey::Fact(lo)..=StoreKey::Fact(hi))
            .filter_map(|(key, bytes)| key.as_fact().map(|key| (key, bytes.clone())))
            .collect()
    }

    /// Writes a checkpoint and compacts the log to it.
    ///
    /// # Errors
    ///
    /// Storage errors on rewrite.
    pub fn checkpoint(&mut self) -> Result<(), TxError> {
        // A fenced manager must not compact: the rewrite would erase the
        // claimant's Fence record and un-fence the zombie.
        self.check_fence()?;
        // Buffered group records are already applied to the store, so
        // the snapshot below subsumes them — drop the buffer rather
        // than flushing records the checkpoint would obsolete.
        self.group_buffer.clear();
        // The store is ordered, so the snapshot is deterministic as-is.
        let states: Vec<(StoreKey, Vec<u8>)> = self
            .store
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        // Prepared-but-unresolved transactions must survive compaction.
        let mut pending: Vec<LogRecord> = self
            .prepared
            .iter()
            .map(|(tx, p)| LogRecord::Prepare {
                tx: *tx,
                coordinator: p.coordinator,
                writes: p.writes.clone(),
            })
            .collect();
        pending.sort_by_key(|r| match r {
            LogRecord::Prepare { tx, .. } => *tx,
            _ => unreachable!("only prepares pending"),
        });
        for (tx, committed) in &self.coordinator_commits {
            pending.push(LogRecord::Resolve {
                tx: *tx,
                committed: *committed,
            });
        }
        // Undecided hand-offs must survive compaction too: their
        // begin frames are what recovery presumes abort from.
        let mut open_moves: Vec<LogRecord> = self
            .open_handoffs
            .iter()
            .flat_map(|(tx, batch)| {
                batch
                    .iter()
                    .map(|(instance, dest)| LogRecord::HandOffBegin {
                        tx: *tx,
                        instance: instance.clone(),
                        dest: *dest,
                    })
            })
            .collect();
        open_moves.sort_by_key(|r| match r {
            LogRecord::HandOffBegin { tx, instance, .. } => (*tx, instance.clone()),
            _ => unreachable!("only begins collected"),
        });
        pending.extend(open_moves);
        self.wal.rewrite_with_checkpoint(states, pending)?;
        self.wal_len = self.wal.size_bytes();
        Ok(())
    }

    /// Current log size in bytes.
    pub fn log_size(&self) -> u64 {
        self.wal.size_bytes()
    }

    /// WAL frames appended through this manager (each append is one
    /// frame, so this counts frame writes — the unit group commit
    /// amortizes). Thin wrapper over [`Wal::records_appended`].
    pub fn wal_frames_appended(&self) -> u64 {
        self.wal.records_appended()
    }

    /// Groups of ≥2 commits flushed as a single `GroupCommit` frame.
    /// Thin wrapper over the `tx.group_commits` registry counter.
    pub fn group_commit_count(&self) -> u64 {
        self.metrics.group_commits.get()
    }

    /// `(commits, aborts)` — thin wrapper over the `tx.commits` /
    /// `tx.aborts` registry counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.metrics.commits.get(), self.metrics.aborts.get())
    }

    /// Uid prefix scans served (the stuck-diagnostics regression
    /// guard: commit-path work must be point reads and dense-key range
    /// scans, never a prefix walk). Thin wrapper over the
    /// `tx.prefix_scans` registry counter.
    pub fn prefix_scan_count(&self) -> u64 {
        self.metrics.prefix_scans.get()
    }

    /// Fact range scans served (per-object probes are point reads: a
    /// clean run performs none of these either — only subtree
    /// cancel/reset, whole-fact reconstruction and reconfiguration
    /// do). Thin wrapper over the `tx.fact_range_scans` registry
    /// counter.
    pub fn fact_range_scan_count(&self) -> u64 {
        self.metrics.fact_range_scans.get()
    }

    /// Committed-state fact point reads served — the cheap complement
    /// the two scan guards above are measured against. Thin wrapper
    /// over the `tx.fact_point_reads` registry counter.
    pub fn fact_point_read_count(&self) -> u64 {
        self.metrics.fact_point_reads.get()
    }

    /// Number of live (committed) objects.
    pub fn object_count(&self) -> usize {
        self.store.len()
    }

    // ------------------------------------------------------------------
    // 2PC participant operations (see `crate::dist`).
    // ------------------------------------------------------------------

    /// Participant prepare: durably stages the writes of distributed
    /// transaction `tx` and takes its write locks. After this returns the
    /// node has voted "yes" and must await the coordinator's decision.
    ///
    /// # Errors
    ///
    /// [`TxError::Lock`] if any lock is unavailable (the caller votes
    /// "no"); storage errors on log append.
    pub fn prepare_remote(
        &mut self,
        tx: TxId,
        coordinator: u32,
        writes: Vec<(StoreKey, Option<Vec<u8>>)>,
    ) -> Result<(), TxError> {
        self.metrics.two_pc_rounds.inc();
        for (key, _) in &writes {
            if let Acquired::Conflicted { holder, verdict } =
                self.locks.acquire(tx, key, LockMode::Write)
            {
                self.locks.release_all(tx);
                self.metrics.lock_waits.inc();
                return Err(TxError::Lock {
                    key: key.clone(),
                    holder,
                    conflict: verdict,
                });
            }
        }
        self.append_record(&LogRecord::Prepare {
            tx,
            coordinator,
            writes: writes.clone(),
        })?;
        self.prepared.insert(
            tx,
            PreparedTx {
                coordinator,
                writes,
            },
        );
        Ok(())
    }

    /// Participant resolve: applies or discards a prepared transaction per
    /// the coordinator's decision. Idempotent.
    ///
    /// # Errors
    ///
    /// Storage errors on log append.
    pub fn resolve_remote(&mut self, tx: TxId, committed: bool) -> Result<(), TxError> {
        let Some(prepared) = self.prepared.remove(&tx) else {
            return Ok(());
        };
        self.metrics.two_pc_rounds.inc();
        self.append_record(&LogRecord::Resolve { tx, committed })?;
        if committed {
            apply_writes(&mut self.store, &prepared.writes);
            self.metrics.commits.inc();
        } else {
            self.metrics.aborts.inc();
        }
        self.locks.release_all(tx);
        Ok(())
    }

    /// Distributed transactions prepared here but not yet resolved,
    /// with their coordinator node ids (queried after recovery).
    pub fn in_doubt(&self) -> Vec<(TxId, u32)> {
        let mut out: Vec<(TxId, u32)> = self
            .prepared
            .iter()
            .map(|(tx, p)| (*tx, p.coordinator))
            .collect();
        out.sort();
        out
    }

    /// Coordinator-side durable decision record (presumed abort: commits
    /// *must* be logged before any participant learns of them; aborts may
    /// be logged for bookkeeping but are also implied by absence).
    ///
    /// # Errors
    ///
    /// Storage errors on log append.
    pub fn log_coordinator_decision(&mut self, tx: TxId, committed: bool) -> Result<(), TxError> {
        self.metrics.two_pc_rounds.inc();
        self.append_record(&LogRecord::Resolve { tx, committed })?;
        self.coordinator_commits.insert(tx, committed);
        Ok(())
    }

    /// A previously logged coordinator decision, if any.
    pub fn coordinator_decision(&self, tx: TxId) -> Option<bool> {
        self.coordinator_commits.get(&tx).copied()
    }

    /// Mints a fresh id for a distributed transaction coordinated here.
    pub fn mint_dist_tx(&mut self) -> TxId {
        self.mint()
    }

    // ------------------------------------------------------------------
    // Instance hand-off frames (live shard rebalancing).
    // ------------------------------------------------------------------

    /// Source-side hand-off intent: mints the moving transaction and
    /// durably logs that `instance` is being 2PC'd to shard `dest`.
    /// A begin with no later [`TxManager::handoff_end`] is presumed
    /// aborted by recovery.
    ///
    /// # Errors
    ///
    /// Storage errors on log append.
    pub fn handoff_begin(&mut self, instance: &str, dest: u32) -> Result<TxId, TxError> {
        self.handoff_begin_batch(std::slice::from_ref(&instance.to_string()), dest)
    }

    /// [`TxManager::handoff_begin`] for a whole batch: mints ONE moving
    /// transaction and logs a begin frame per instance, all bound for
    /// shard `dest`. Planned drains use this to amortize the 2PC round
    /// — one prepare/decision pair covers every instance in the batch.
    ///
    /// # Errors
    ///
    /// Storage errors on log append.
    pub fn handoff_begin_batch(
        &mut self,
        instances: &[String],
        dest: u32,
    ) -> Result<TxId, TxError> {
        let tx = self.mint();
        self.metrics.two_pc_rounds.inc();
        for instance in instances {
            self.append_or_buffer(LogRecord::HandOffBegin {
                tx,
                instance: instance.clone(),
                dest,
            })?;
            self.open_handoffs
                .entry(tx)
                .or_default()
                .push((instance.clone(), dest));
        }
        Ok(tx)
    }

    /// Source-side hand-off decision. This is the move's 2PC
    /// coordinator decision record: once durable, a crashed destination
    /// can learn the verdict via [`TxManager::coordinator_decision`].
    ///
    /// # Errors
    ///
    /// Storage errors on log append.
    pub fn handoff_end(
        &mut self,
        tx: TxId,
        instance: &str,
        dest: u32,
        committed: bool,
    ) -> Result<(), TxError> {
        self.metrics.two_pc_rounds.inc();
        self.append_or_buffer(LogRecord::HandOffEnd {
            tx,
            instance: instance.to_string(),
            dest,
            committed,
        })?;
        if let Some(batch) = self.open_handoffs.get_mut(&tx) {
            batch.retain(|(name, _)| name != instance);
            if batch.is_empty() {
                self.open_handoffs.remove(&tx);
            }
        }
        self.coordinator_commits.insert(tx, committed);
        Ok(())
    }

    /// Hand-offs begun here with no durable decision yet, sorted by
    /// transaction (crash recovery presumes these aborted).
    pub fn open_handoffs(&self) -> Vec<(TxId, String, u32)> {
        let mut out: Vec<(TxId, String, u32)> = self
            .open_handoffs
            .iter()
            .flat_map(|(tx, batch)| {
                batch
                    .iter()
                    .map(|(instance, dest)| (*tx, instance.clone(), *dest))
            })
            .collect();
        out.sort();
        out
    }

    /// Hand-off decisions replayed from the log at open time, in log
    /// order. Recovery uses these to purge committed-away instances
    /// and re-announce verdicts the destination may have missed.
    pub fn replayed_handoff_ends(&self) -> &[(TxId, String, u32, bool)] {
        &self.replayed_handoff_ends
    }
}

fn apply_writes(store: &mut BTreeMap<StoreKey, Vec<u8>>, writes: &[(StoreKey, Option<Vec<u8>>)]) {
    for (key, value) in writes {
        match value {
            Some(bytes) => {
                store.insert(key.clone(), bytes.clone());
            }
            None => {
                store.remove(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::Conflict;

    fn uid(s: &str) -> ObjectUid {
        ObjectUid::new(s)
    }

    fn key(s: &str) -> StoreKey {
        StoreKey::from(ObjectUid::new(s))
    }

    #[test]
    fn committed_write_is_visible_later() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &41u32).unwrap();
        mgr.commit(a).unwrap();
        assert_eq!(mgr.read_committed::<u32>(&uid("x")).unwrap(), Some(41));
        let b = mgr.begin();
        assert_eq!(mgr.read::<u32>(&b, &uid("x")).unwrap(), Some(41));
        mgr.abort(b);
    }

    #[test]
    fn aborted_write_leaves_no_trace() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &1u8).unwrap();
        mgr.abort(a);
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), None);
        assert!(!mgr.exists(&uid("x")));
        assert_eq!(mgr.stats(), (0, 1));
    }

    #[test]
    fn own_writes_read_back_before_commit() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &7i64).unwrap();
        assert_eq!(mgr.read::<i64>(&a, &uid("x")).unwrap(), Some(7));
        mgr.delete(&a, &uid("x")).unwrap();
        assert_eq!(mgr.read::<i64>(&a, &uid("x")).unwrap(), None);
        mgr.commit(a).unwrap();
    }

    #[test]
    fn write_conflict_gets_wait_die_verdict() {
        let mut mgr = TxManager::in_memory();
        let older = mgr.begin();
        let younger = mgr.begin();
        mgr.write(&younger, &uid("x"), &1u8).unwrap();
        // Older requester is told to wait.
        match mgr.write(&older, &uid("x"), &2u8) {
            Err(TxError::Lock { conflict, .. }) => assert_eq!(conflict, Conflict::Wait),
            other => panic!("expected lock conflict, got {other:?}"),
        }
        mgr.abort(younger);
        // Now the lock is free.
        mgr.write(&older, &uid("x"), &2u8).unwrap();
        mgr.commit(older).unwrap();
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), Some(2));
    }

    #[test]
    fn younger_conflicting_writer_dies() {
        let mut mgr = TxManager::in_memory();
        let older = mgr.begin();
        mgr.write(&older, &uid("x"), &1u8).unwrap();
        let younger = mgr.begin();
        match mgr.write(&younger, &uid("x"), &2u8) {
            Err(TxError::Lock { conflict, .. }) => assert_eq!(conflict, Conflict::Die),
            other => panic!("expected lock conflict, got {other:?}"),
        }
        mgr.abort(younger);
        mgr.commit(older).unwrap();
    }

    #[test]
    fn nested_commit_folds_into_parent() {
        let mut mgr = TxManager::in_memory();
        let parent = mgr.begin();
        let child = mgr.begin_nested(&parent).unwrap();
        mgr.write(&child, &uid("x"), &5u8).unwrap();
        mgr.commit(child).unwrap();
        // Not yet durable: only staged in the parent.
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), None);
        assert_eq!(mgr.read::<u8>(&parent, &uid("x")).unwrap(), Some(5));
        mgr.commit(parent).unwrap();
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), Some(5));
    }

    #[test]
    fn nested_abort_spares_parent() {
        let mut mgr = TxManager::in_memory();
        let parent = mgr.begin();
        mgr.write(&parent, &uid("keep"), &1u8).unwrap();
        let child = mgr.begin_nested(&parent).unwrap();
        mgr.write(&child, &uid("discard"), &2u8).unwrap();
        mgr.abort(child);
        mgr.commit(parent).unwrap();
        assert_eq!(mgr.read_committed::<u8>(&uid("keep")).unwrap(), Some(1));
        assert_eq!(mgr.read_committed::<u8>(&uid("discard")).unwrap(), None);
    }

    #[test]
    fn parent_commit_aborts_open_children() {
        let mut mgr = TxManager::in_memory();
        let parent = mgr.begin();
        let child = mgr.begin_nested(&parent).unwrap();
        mgr.write(&child, &uid("x"), &9u8).unwrap();
        mgr.commit(parent).unwrap();
        assert_eq!(
            mgr.read_committed::<u8>(&uid("x")).unwrap(),
            None,
            "open child must be aborted by parent commit"
        );
        // The child action is now unknown.
        assert!(matches!(mgr.commit(child), Err(TxError::UnknownAction(_))));
    }

    #[test]
    fn recovery_replays_committed_state() {
        let stable = SharedStorage::new();
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let a = mgr.begin();
            mgr.write(&a, &uid("x"), &String::from("durable")).unwrap();
            mgr.write(&a, &uid("y"), &2u8).unwrap();
            mgr.commit(a).unwrap();
            let b = mgr.begin();
            mgr.delete(&b, &uid("y")).unwrap();
            mgr.commit(b).unwrap();
            let c = mgr.begin();
            mgr.write(&c, &uid("z"), &3u8).unwrap();
            // c is never committed: crash here.
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(
            mgr.read_committed::<String>(&uid("x")).unwrap(),
            Some("durable".to_string())
        );
        assert_eq!(mgr.read_committed::<u8>(&uid("y")).unwrap(), None);
        assert_eq!(mgr.read_committed::<u8>(&uid("z")).unwrap(), None);
    }

    #[test]
    fn recovery_after_checkpoint() {
        let stable = SharedStorage::new();
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            for i in 0..10u8 {
                let a = mgr.begin();
                mgr.write(&a, &uid(&format!("o{i}")), &i).unwrap();
                mgr.commit(a).unwrap();
            }
            mgr.checkpoint().unwrap();
            let a = mgr.begin();
            mgr.write(&a, &uid("post"), &99u8).unwrap();
            mgr.commit(a).unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.object_count(), 11);
        assert_eq!(mgr.read_committed::<u8>(&uid("o7")).unwrap(), Some(7));
        assert_eq!(mgr.read_committed::<u8>(&uid("post")).unwrap(), Some(99));
    }

    #[test]
    fn checkpoint_shrinks_log() {
        let mut mgr = TxManager::in_memory();
        for i in 0..100u32 {
            let a = mgr.begin();
            mgr.write(&a, &uid("hot"), &i).unwrap();
            mgr.commit(a).unwrap();
        }
        let before = mgr.log_size();
        mgr.checkpoint().unwrap();
        assert!(mgr.log_size() < before / 10);
        assert_eq!(mgr.read_committed::<u32>(&uid("hot")).unwrap(), Some(99));
    }

    #[test]
    fn read_only_commit_appends_nothing() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &1u8).unwrap();
        mgr.commit(a).unwrap();
        let size = mgr.log_size();
        let b = mgr.begin();
        let _ = mgr.read::<u8>(&b, &uid("x")).unwrap();
        mgr.commit(b).unwrap();
        assert_eq!(mgr.log_size(), size);
    }

    #[test]
    fn prefix_enumeration_sorted() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        mgr.write(&a, &uid("inst/1/b"), &1u8).unwrap();
        mgr.write(&a, &uid("inst/1/a"), &1u8).unwrap();
        mgr.write(&a, &uid("inst/2/a"), &1u8).unwrap();
        // Fact keys never leak into uid prefix scans.
        mgr.write_key(&a, &StoreKey::Fact(FactKey::output(1, 0, 0)), &1u8)
            .unwrap();
        mgr.commit(a).unwrap();
        let uids = mgr.uids_with_prefix("inst/1/");
        assert_eq!(uids, vec![uid("inst/1/a"), uid("inst/1/b")]);
    }

    #[test]
    fn prefix_scan_counter_tracks_only_prefix_walks() {
        let mut mgr = TxManager::in_memory();
        assert_eq!(mgr.prefix_scan_count(), 0);
        let a = mgr.begin();
        mgr.write(&a, &uid("inst/1/a"), &1u8).unwrap();
        mgr.write_key(&a, &StoreKey::Fact(FactKey::output(1, 0, 0)), &1u8)
            .unwrap();
        mgr.commit(a).unwrap();
        // Point reads and dense-key range scans are not prefix scans.
        let _ = mgr.read_committed::<u8>(&uid("inst/1/a")).unwrap();
        let _ = mgr.fact_keys_in_range(FactKey::instance_first(1), FactKey::instance_last(1));
        assert_eq!(mgr.prefix_scan_count(), 0);
        let _ = mgr.uids_with_prefix("inst/");
        let _ = mgr.uids_with_prefix("inst/1/");
        assert_eq!(mgr.prefix_scan_count(), 2);
    }

    #[test]
    fn fact_range_scans_cover_task_and_subtree() {
        let mut mgr = TxManager::in_memory();
        let a = mgr.begin();
        for task in 1..4u32 {
            mgr.write_key(&a, &StoreKey::Fact(FactKey::input(7, task, 0)), &task)
                .unwrap();
            mgr.write_key(&a, &StoreKey::Fact(FactKey::output(7, task, 1)), &task)
                .unwrap();
        }
        // Another instance's facts must not appear.
        mgr.write_key(&a, &StoreKey::Fact(FactKey::output(8, 2, 0)), &1u8)
            .unwrap();
        mgr.commit(a).unwrap();
        let task2 = mgr.fact_keys_in_range(FactKey::task_first(7, 2), FactKey::task_last(7, 2));
        assert_eq!(
            task2,
            vec![FactKey::input(7, 2, 0), FactKey::output(7, 2, 1)]
        );
        // DFS-contiguous subtree 2..=3 in one scan.
        let subtree = mgr.fact_keys_in_range(FactKey::task_first(7, 2), FactKey::task_last(7, 3));
        assert_eq!(subtree.len(), 4);
        let all = mgr.fact_keys_in_range(FactKey::instance_first(7), FactKey::instance_last(7));
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn fact_writes_survive_recovery_and_checkpoint() {
        let stable = SharedStorage::new();
        let fact = StoreKey::Fact(FactKey::output(3, 1, 0));
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let a = mgr.begin();
            mgr.write_key(&a, &fact, &42u32).unwrap();
            mgr.commit(a).unwrap();
            mgr.checkpoint().unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.read_committed_key::<u32>(&fact).unwrap(), Some(42));
        assert!(mgr.exists_key(&fact));
        assert!(mgr.read_committed_bytes(&fact).is_some());
    }

    #[test]
    fn prepared_transaction_survives_recovery_in_doubt() {
        let stable = SharedStorage::new();
        let dist_tx = TxId::new(9, 1000);
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            mgr.prepare_remote(dist_tx, 9, vec![(key("x"), Some(vec![1]))])
                .unwrap();
        }
        let mut mgr = TxManager::open(0, stable.clone()).unwrap();
        assert_eq!(mgr.in_doubt(), vec![(dist_tx, 9)]);
        // The staged write is invisible and the object locked.
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), None);
        let a = mgr.begin();
        assert!(matches!(
            mgr.read::<u8>(&a, &uid("x")),
            Err(TxError::Lock { .. })
        ));
        mgr.abort(a);
        // Resolution commits it.
        mgr.resolve_remote(dist_tx, true).unwrap();
        assert!(mgr.exists(&uid("x")));
        assert!(mgr.in_doubt().is_empty());
        // And is durable.
        let mgr2 = TxManager::open(0, stable).unwrap();
        assert!(mgr2.exists(&uid("x")));
    }

    #[test]
    fn resolve_is_idempotent() {
        let mut mgr = TxManager::in_memory();
        let dist_tx = TxId::new(9, 1);
        mgr.prepare_remote(dist_tx, 9, vec![(key("x"), Some(vec![1]))])
            .unwrap();
        mgr.resolve_remote(dist_tx, false).unwrap();
        mgr.resolve_remote(dist_tx, false).unwrap();
        assert!(!mgr.exists(&uid("x")));
        // Lock released after abort resolution.
        let a = mgr.begin();
        assert!(mgr.write(&a, &uid("x"), &2u8).is_ok());
        mgr.abort(a);
    }

    #[test]
    fn coordinator_decisions_survive_recovery() {
        let stable = SharedStorage::new();
        let dist_tx = TxId::new(0, 500);
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            mgr.log_coordinator_decision(dist_tx, true).unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.coordinator_decision(dist_tx), Some(true));
        assert_eq!(mgr.coordinator_decision(TxId::new(0, 501)), None);
    }

    #[test]
    fn group_commit_flushes_one_frame() {
        let stable = SharedStorage::new();
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let frames_before = mgr.wal_frames_appended();
            mgr.begin_group();
            for i in 0..5u8 {
                let a = mgr.begin();
                mgr.write(&a, &uid(&format!("g{i}")), &i).unwrap();
                mgr.commit(a).unwrap();
                // Applied and unlocked immediately, durable later.
                assert_eq!(
                    mgr.read_committed::<u8>(&uid(&format!("g{i}"))).unwrap(),
                    Some(i)
                );
            }
            assert_eq!(mgr.wal_frames_appended(), frames_before, "buffered");
            mgr.end_group().unwrap();
            assert_eq!(mgr.wal_frames_appended(), frames_before + 1);
            assert_eq!(mgr.group_commit_count(), 1);
        }
        // Recovery replays every member of the group frame.
        let mgr = TxManager::open(0, stable).unwrap();
        for i in 0..5u8 {
            assert_eq!(
                mgr.read_committed::<u8>(&uid(&format!("g{i}"))).unwrap(),
                Some(i)
            );
        }
    }

    #[test]
    fn singleton_group_appends_bare_record() {
        let mut mgr = TxManager::in_memory();
        mgr.begin_group();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &1u8).unwrap();
        mgr.commit(a).unwrap();
        mgr.end_group().unwrap();
        assert_eq!(mgr.group_commit_count(), 0, "one record needs no group");
        assert_eq!(mgr.wal_frames_appended(), 1);
    }

    #[test]
    fn nested_groups_flush_once_at_depth_zero() {
        let mut mgr = TxManager::in_memory();
        mgr.begin_group();
        mgr.begin_group();
        let a = mgr.begin();
        mgr.write(&a, &uid("x"), &1u8).unwrap();
        mgr.commit(a).unwrap();
        mgr.end_group().unwrap();
        assert!(mgr.in_group());
        assert_eq!(mgr.wal_frames_appended(), 0, "inner end does not flush");
        let b = mgr.begin();
        mgr.write(&b, &uid("y"), &2u8).unwrap();
        mgr.commit(b).unwrap();
        mgr.end_group().unwrap();
        assert!(!mgr.in_group());
        assert_eq!(mgr.wal_frames_appended(), 1);
        assert_eq!(mgr.group_commit_count(), 1);
    }

    #[test]
    fn unflushed_group_lost_as_a_unit() {
        let stable = SharedStorage::new();
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let a = mgr.begin();
            mgr.write(&a, &uid("before"), &1u8).unwrap();
            mgr.commit(a).unwrap();
            mgr.begin_group();
            for i in 0..3u8 {
                let a = mgr.begin();
                mgr.write(&a, &uid(&format!("w{i}")), &i).unwrap();
                mgr.commit(a).unwrap();
            }
            // Crash before end_group: the whole window vanishes.
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.read_committed::<u8>(&uid("before")).unwrap(), Some(1));
        for i in 0..3u8 {
            assert_eq!(
                mgr.read_committed::<u8>(&uid(&format!("w{i}"))).unwrap(),
                None,
                "no partial batch may survive"
            );
        }
    }

    #[test]
    fn checkpoint_subsumes_open_group_buffer() {
        let stable = SharedStorage::new();
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            mgr.begin_group();
            let a = mgr.begin();
            mgr.write(&a, &uid("x"), &7u8).unwrap();
            mgr.commit(a).unwrap();
            mgr.checkpoint().unwrap();
            mgr.end_group().unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.read_committed::<u8>(&uid("x")).unwrap(), Some(7));
    }

    #[test]
    fn open_handoff_survives_recovery_and_checkpoint() {
        let stable = SharedStorage::new();
        let moving;
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            moving = mgr.handoff_begin("wf-7", 2).unwrap();
            // Crash with the intent durable but no decision.
        }
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            assert_eq!(mgr.open_handoffs(), vec![(moving, "wf-7".to_string(), 2)]);
            // Compaction must not forget the undecided move.
            mgr.checkpoint().unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.open_handoffs(), vec![(moving, "wf-7".to_string(), 2)]);
        assert!(mgr.replayed_handoff_ends().is_empty());
    }

    #[test]
    fn handoff_end_is_the_durable_decision() {
        let stable = SharedStorage::new();
        let moving;
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            moving = mgr.handoff_begin("wf-7", 2).unwrap();
            mgr.handoff_end(moving, "wf-7", 2, true).unwrap();
            assert!(mgr.open_handoffs().is_empty());
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert!(mgr.open_handoffs().is_empty());
        assert_eq!(
            mgr.replayed_handoff_ends(),
            &[(moving, "wf-7".to_string(), 2, true)]
        );
        // The destination can learn the verdict after a crash.
        assert_eq!(mgr.coordinator_decision(moving), Some(true));
    }

    #[test]
    fn aborted_handoff_answers_queries_with_abort() {
        let stable = SharedStorage::new();
        let moving;
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            moving = mgr.handoff_begin("wf-9", 1).unwrap();
            mgr.handoff_end(moving, "wf-9", 1, false).unwrap();
        }
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.coordinator_decision(moving), Some(false));
        assert!(mgr.open_handoffs().is_empty());
    }

    #[test]
    fn batched_handoff_shares_one_tx_and_ends_per_instance() {
        let stable = SharedStorage::new();
        let moving;
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let names: Vec<String> = vec!["wf-1".into(), "wf-2".into(), "wf-3".into()];
            moving = mgr.handoff_begin_batch(&names, 2).unwrap();
            assert_eq!(mgr.open_handoffs().len(), 3);
            mgr.handoff_end(moving, "wf-2", 2, true).unwrap();
        }
        // Recovery sees the two undecided members of the batch, not the
        // decided one.
        let mut mgr = TxManager::open(0, stable.clone()).unwrap();
        assert_eq!(
            mgr.open_handoffs(),
            vec![
                (moving, "wf-1".to_string(), 2),
                (moving, "wf-3".to_string(), 2)
            ]
        );
        // And compaction keeps them.
        mgr.checkpoint().unwrap();
        drop(mgr);
        let mgr = TxManager::open(0, stable).unwrap();
        assert_eq!(mgr.open_handoffs().len(), 2);
    }

    #[test]
    fn fence_blocks_other_nodes_append_mid_run() {
        let stable = SharedStorage::new();
        let mut zombie = TxManager::open(0, stable.clone()).unwrap();
        let a = zombie.begin();
        zombie.write(&a, &uid("x"), &1u8).unwrap();
        zombie.commit(a).unwrap();
        // Another node claims the storage behind the zombie's back.
        let mut claimant = TxManager::open(2, stable).unwrap();
        claimant.write_fence(9).unwrap();
        // The zombie's next durable act trips over the fence.
        let b = zombie.begin();
        zombie.write(&b, &uid("x"), &2u8).unwrap();
        assert_eq!(
            zombie.commit(b),
            Err(TxError::Fenced {
                claimant: 2,
                epoch: 9
            })
        );
        assert_eq!(zombie.fenced(), Some((2, 9)));
        // Compaction is refused too — it would erase the fence record.
        assert!(matches!(zombie.checkpoint(), Err(TxError::Fenced { .. })));
    }

    #[test]
    fn fence_survives_replay_and_claimant_is_exempt() {
        let stable = SharedStorage::new();
        {
            let mut claimant = TxManager::open(2, stable.clone()).unwrap();
            claimant.write_fence(4).unwrap();
        }
        // The fenced owner restarting sees the claim at replay.
        let mut owner = TxManager::open(0, stable.clone()).unwrap();
        assert_eq!(owner.fenced(), Some((2, 4)));
        assert_eq!(owner.probe_fence(), Some((2, 4)));
        let a = owner.begin();
        owner.write(&a, &uid("x"), &1u8).unwrap();
        assert!(matches!(owner.commit(a), Err(TxError::Fenced { .. })));
        // The claimant reopening its own claim is not fenced by it.
        let mut again = TxManager::open(2, stable).unwrap();
        assert_eq!(again.fenced(), None);
        let b = again.begin();
        again.write(&b, &uid("y"), &2u8).unwrap();
        again.commit(b).unwrap();
    }

    #[test]
    fn second_claimant_loses_to_first() {
        let stable = SharedStorage::new();
        let mut first = TxManager::open(2, stable.clone()).unwrap();
        first.write_fence(4).unwrap();
        let mut second = TxManager::open(3, stable).unwrap();
        assert_eq!(
            second.write_fence(5),
            Err(TxError::Fenced {
                claimant: 2,
                epoch: 4
            })
        );
    }

    #[test]
    fn minted_ids_advance_after_recovery() {
        let stable = SharedStorage::new();
        let first;
        {
            let mut mgr = TxManager::open(0, stable.clone()).unwrap();
            let a = mgr.begin();
            first = a.id();
            mgr.write(&a, &uid("x"), &1u8).unwrap();
            mgr.commit(a).unwrap();
        }
        let mut mgr = TxManager::open(0, stable).unwrap();
        let b = mgr.begin();
        assert!(first.is_older_than(b.id()), "ids must not repeat");
        mgr.abort(b);
    }
}
