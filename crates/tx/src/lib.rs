#![warn(missing_docs)]
//! Arjuna-style transaction substrate for the flowscript workflow system.
//!
//! The paper's execution environment "records inter-task dependencies in
//! persistent shared objects and uses atomic transactions to implement
//! notification and dataflow dependencies" (§3), on top of OTSArjuna. This
//! crate rebuilds that substrate:
//!
//! - [`TxManager`]: atomic actions over a persistent object store —
//!   begin / read / write / delete / commit / abort, with nesting,
//! - [`lock`]: strict two-phase locking with wait-die deadlock avoidance,
//! - [`log`]: a redo-only write-ahead log with checksummed frames,
//! - [`storage`]: durable byte storage (in-memory for simulation — it
//!   survives simulated node crashes — or file-backed),
//! - recovery: replaying the log rebuilds the committed store exactly,
//! - [`dist`]: presumed-abort two-phase commit for coordination state
//!   sharded across nodes.
//!
//! # Examples
//!
//! ```
//! use flowscript_tx::{ObjectUid, TxManager};
//!
//! # fn main() -> Result<(), flowscript_tx::TxError> {
//! let mut mgr = TxManager::in_memory();
//! let uid = ObjectUid::new("account/a");
//!
//! let a = mgr.begin();
//! mgr.write(&a, &uid, &100u64)?;
//! mgr.commit(a)?;
//!
//! let b = mgr.begin();
//! let balance: u64 = mgr.read(&b, &uid)?.unwrap();
//! assert_eq!(balance, 100);
//! mgr.abort(b);
//! # Ok(())
//! # }
//! ```

pub mod dist;
mod error;
mod id;
mod key;
pub mod lock;
pub mod log;
mod manager;
pub mod storage;

pub use error::TxError;
pub use id::{Handle, ObjectUid, TxId};
pub use key::{FactKey, FactKind, StoreKey};
pub use lock::{Conflict, LockMode};
pub use log::{LogRecord, Wal};
pub use manager::{AtomicAction, TxManager};
pub use storage::{
    FileStorage, MemStorage, SharedFileStorage, SharedStorage, StableStore, Storage,
};
