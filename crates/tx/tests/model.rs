//! Model-based property tests: the transactional store, driven by random
//! operation sequences with interleaved commits/aborts/crashes, must always
//! agree with a trivial reference model (a `HashMap` mutated only on
//! commit).

use std::collections::HashMap;

use flowscript_tx::{ObjectUid, SharedStorage, TxManager};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, u16),
    Delete(u8),
    Commit,
    Abort,
    /// Simulated crash: drop the manager mid-transaction and recover from
    /// the shared log.
    CrashRecover,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Write(k % 12, v)),
        1 => any::<u8>().prop_map(|k| Op::Delete(k % 12)),
        3 => Just(Op::Commit),
        2 => Just(Op::Abort),
        1 => Just(Op::CrashRecover),
        1 => Just(Op::Checkpoint),
    ]
}

fn uid(k: u8) -> ObjectUid {
    ObjectUid::new(format!("obj/{k}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let stable = SharedStorage::new();
        let mut mgr = TxManager::open(0, stable.clone()).unwrap();
        let mut model: HashMap<u8, u16> = HashMap::new();
        let mut staged: HashMap<u8, Option<u16>> = HashMap::new();
        let mut action = None;

        for op in ops {
            match op {
                Op::Write(k, v) => {
                    let a = action.get_or_insert_with(|| mgr.begin());
                    mgr.write(a, &uid(k), &v).unwrap();
                    staged.insert(k, Some(v));
                }
                Op::Delete(k) => {
                    let a = action.get_or_insert_with(|| mgr.begin());
                    mgr.delete(a, &uid(k)).unwrap();
                    staged.insert(k, None);
                }
                Op::Commit => {
                    if let Some(a) = action.take() {
                        mgr.commit(a).unwrap();
                        for (k, v) in staged.drain() {
                            match v {
                                Some(v) => { model.insert(k, v); }
                                None => { model.remove(&k); }
                            }
                        }
                    }
                }
                Op::Abort => {
                    if let Some(a) = action.take() {
                        mgr.abort(a);
                        staged.clear();
                    }
                }
                Op::CrashRecover => {
                    // Uncommitted work dies with the process.
                    action = None;
                    staged.clear();
                    drop(mgr);
                    mgr = TxManager::open(0, stable.clone()).unwrap();
                }
                Op::Checkpoint => {
                    // Checkpoint outside a transaction only (the manager
                    // supports it any time, but keep the model simple).
                    if action.is_none() {
                        mgr.checkpoint().unwrap();
                    }
                }
            }

            // Committed state must equal the model at every step.
            for k in 0..12u8 {
                let stored: Option<u16> = mgr.read_committed(&uid(k)).unwrap();
                prop_assert_eq!(stored, model.get(&k).copied(), "key {}", k);
            }
        }

        // Final recovery must also reproduce the model exactly.
        drop(mgr);
        let recovered = TxManager::open(0, stable).unwrap();
        for k in 0..12u8 {
            let stored: Option<u16> = recovered.read_committed(&uid(k)).unwrap();
            prop_assert_eq!(stored, model.get(&k).copied(), "post-recovery key {}", k);
        }
    }

    #[test]
    fn nested_actions_isolate(depth in 1usize..6, values in proptest::collection::vec(any::<u32>(), 6)) {
        let mut mgr = TxManager::in_memory();
        let top = mgr.begin();
        mgr.write(&top, &uid(0), &values[0]).unwrap();

        // Build a nesting chain, each level writing its own object.
        let mut chain = vec![top];
        for level in 1..=depth {
            let parent = chain.last().unwrap();
            let child = mgr.begin_nested(parent).unwrap();
            mgr.write(&child, &uid(level as u8), &values[level % values.len()]).unwrap();
            chain.push(child);
        }

        // Abort the innermost, commit the rest outward.
        let innermost = chain.pop().unwrap();
        mgr.abort(innermost);
        while let Some(a) = chain.pop() {
            mgr.commit(a).unwrap();
        }

        // Everything except the innermost level must be durable.
        prop_assert_eq!(mgr.read_committed::<u32>(&uid(0)).unwrap(), Some(values[0]));
        for level in 1..depth {
            prop_assert!(mgr.read_committed::<u32>(&uid(level as u8)).unwrap().is_some());
        }
        prop_assert_eq!(mgr.read_committed::<u32>(&uid(depth as u8)).unwrap(), None);
    }
}
