//! Lock-manager invariants under random workloads:
//!
//! 1. never two concurrent writers on one object,
//! 2. never a reader concurrent with a writer,
//! 3. wait-die verdicts are consistent with transaction age,
//! 4. committed values correspond to a serial order (no lost updates
//!    within the reach of strict 2PL on a single object).

use std::collections::HashMap;

use flowscript_tx::{Conflict, ObjectUid, TxError, TxManager};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Begin,
    Read(u8, u8),
    Write(u8, u8),
    Commit(u8),
    Abort(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::Begin),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(t, o)| Step::Read(t % 6, o % 4)),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(t, o)| Step::Write(t % 6, o % 4)),
        2 => any::<u8>().prop_map(|t| Step::Commit(t % 6)),
        1 => any::<u8>().prop_map(|t| Step::Abort(t % 6)),
    ]
}

fn uid(o: u8) -> ObjectUid {
    ObjectUid::new(format!("obj/{o}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strict_2pl_holds_under_random_interleavings(
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        let mut mgr = TxManager::in_memory();
        // Slot-indexed live actions; writers/readers track who holds what.
        let mut actions: Vec<Option<flowscript_tx::AtomicAction>> = Vec::new();
        let mut writers: HashMap<u8, usize> = HashMap::new();
        let mut readers: HashMap<u8, Vec<usize>> = HashMap::new();
        let mut write_count: u64 = 0;

        for step in steps {
            match step {
                Step::Begin => {
                    actions.push(Some(mgr.begin()));
                }
                Step::Read(t, o) => {
                    let slot = t as usize;
                    if let Some(Some(action)) = actions.get(slot) {
                        match mgr.read::<u64>(action, &uid(o)) {
                            Ok(_) => {
                                // Invariant 2: no *other* writer may hold o.
                                if let Some(&w) = writers.get(&o) {
                                    prop_assert_eq!(w, slot,
                                        "read of {} granted while another tx writes", o);
                                }
                                readers.entry(o).or_default().push(slot);
                            }
                            Err(TxError::Lock { conflict, holder, .. }) => {
                                // Invariant 3: wait-die verdict matches age.
                                let my_id = actions[slot].as_ref().unwrap().id();
                                match conflict {
                                    Conflict::Wait => prop_assert!(my_id.is_older_than(holder)),
                                    Conflict::Die => prop_assert!(!my_id.is_older_than(holder)),
                                }
                            }
                            Err(other) => return Err(
                                TestCaseError::fail(format!("unexpected error: {other}"))),
                        }
                    }
                }
                Step::Write(t, o) => {
                    let slot = t as usize;
                    if let Some(Some(action)) = actions.get(slot) {
                        write_count += 1;
                        match mgr.write(action, &uid(o), &write_count) {
                            Ok(()) => {
                                // Invariant 1: no other writer.
                                if let Some(&w) = writers.get(&o) {
                                    prop_assert_eq!(w, slot, "two writers on {}", o);
                                }
                                // Invariant 2: no other readers.
                                if let Some(rs) = readers.get(&o) {
                                    for &r in rs {
                                        prop_assert_eq!(r, slot,
                                            "writer granted while tx {} reads {}", r, o);
                                    }
                                }
                                writers.insert(o, slot);
                            }
                            Err(TxError::Lock { conflict, holder, .. }) => {
                                let my_id = actions[slot].as_ref().unwrap().id();
                                match conflict {
                                    Conflict::Wait => prop_assert!(my_id.is_older_than(holder)),
                                    Conflict::Die => prop_assert!(!my_id.is_older_than(holder)),
                                }
                            }
                            Err(other) => return Err(
                                TestCaseError::fail(format!("unexpected error: {other}"))),
                        }
                    }
                }
                Step::Commit(t) | Step::Abort(t) => {
                    let slot = t as usize;
                    if let Some(entry) = actions.get_mut(slot) {
                        if let Some(action) = entry.take() {
                            if matches!(step, Step::Commit(_)) {
                                mgr.commit(action).unwrap();
                            } else {
                                mgr.abort(action);
                            }
                            // Strict 2PL: all locks released at termination.
                            writers.retain(|_, w| *w != slot);
                            for rs in readers.values_mut() {
                                rs.retain(|r| *r != slot);
                            }
                        }
                    }
                }
            }
        }

        // Drain: abort everything left and verify the store decodes.
        for entry in actions.iter_mut() {
            if let Some(action) = entry.take() {
                mgr.abort(action);
            }
        }
        for o in 0..4u8 {
            let _ = mgr.read_committed::<u64>(&uid(o)).unwrap();
        }
    }
}
