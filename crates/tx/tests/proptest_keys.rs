//! Structured-key properties.
//!
//! [`StoreKey`]/[`FactKey`] are the storage substrate of the engine's
//! event-driven commit pipeline: they must round-trip the binary codec
//! exactly, and their ordering must keep an instance's facts (and a
//! task's facts) contiguous so subtree cancel/reset and reconfiguration
//! remapping stay single range scans.

use flowscript_tx::{FactKey, FactKind, ObjectUid, StoreKey};
use proptest::prelude::*;

fn fact_key(instance: u32, task: u32, kind_bit: bool, item: u32, obj: u32) -> FactKey {
    let base = if kind_bit {
        FactKey::output(instance, task, item)
    } else {
        FactKey::input(instance, task, item)
    };
    base.with_obj(obj)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fact_keys_roundtrip_codec(
        instance in 0u32..=u32::MAX,
        task in 0u32..=u32::MAX,
        kind_bit: bool,
        item in 0u32..=u32::MAX,
        obj in 0u32..=u32::MAX,
    ) {
        let key = fact_key(instance, task, kind_bit, item, obj);
        let bytes = flowscript_codec::to_bytes(&key);
        prop_assert_eq!(flowscript_codec::from_bytes::<FactKey>(&bytes).unwrap(), key);

        let store = StoreKey::from(key);
        let bytes = flowscript_codec::to_bytes(&store);
        prop_assert_eq!(flowscript_codec::from_bytes::<StoreKey>(&bytes).unwrap(), store);
    }

    #[test]
    fn store_keys_roundtrip_codec_for_uids(name in "[a-z/]{0,24}") {
        let store = StoreKey::from(ObjectUid::new(name));
        let bytes = flowscript_codec::to_bytes(&store);
        prop_assert_eq!(flowscript_codec::from_bytes::<StoreKey>(&bytes).unwrap(), store);
    }

    #[test]
    fn ordering_keeps_instances_tasks_and_facts_contiguous(
        instance in 0u32..1000,
        task in 0u32..1000,
        kind_bit: bool,
        item in 0u32..1000,
        obj in 0u32..1000,
    ) {
        let key = fact_key(instance, task, kind_bit, item, obj);
        // Ordering matches the tuple order (instance, task, kind, item,
        // obj) — the contract every range bound below builds on.
        let tuple = |k: &FactKey| (k.instance, k.task, k.kind, k.item, k.obj);
        let other = fact_key(
            instance.wrapping_add(obj), task.wrapping_add(1), !kind_bit, item, obj / 2,
        );
        prop_assert_eq!(key.cmp(&other), tuple(&key).cmp(&tuple(&other)));
        // Within the fact's own sub-range.
        let base = key.with_obj(0);
        prop_assert!(base <= key);
        prop_assert!(key <= base.fact_last());
        // Within the task range.
        prop_assert!(FactKey::task_first(instance, task) <= key);
        prop_assert!(key <= FactKey::task_last(instance, task));
        // Within the instance range.
        prop_assert!(FactKey::instance_first(instance) <= key);
        prop_assert!(key <= FactKey::instance_last(instance));
        // Other instances' ranges exclude it.
        prop_assert!(key < FactKey::instance_first(instance + 1));
        // Inputs sort before outputs of the same (instance, task, item).
        prop_assert!(
            FactKey::input(instance, task, item) < FactKey::output(instance, task, item)
        );
        // Object sub-keys stay inside their fact: the next item's
        // presence key is past this fact's whole sub-range.
        prop_assert!(base.fact_last() < fact_key(instance, task, kind_bit, item + 1, 0));
        // Uids and facts never interleave.
        prop_assert!(StoreKey::from(ObjectUid::new("zzzz")) < StoreKey::from(key));
    }

    #[test]
    fn codec_preserves_ordering(
        a_task in 0u32..64, a_item in 0u32..64, a_obj in 0u32..8,
        b_task in 0u32..64, b_item in 0u32..64, b_obj in 0u32..8,
        kinds: (bool, bool),
    ) {
        // Decode(encode(x)) preserves comparisons — the WAL can replay
        // checkpoints into the ordered store without re-sorting
        // surprises.
        let a = fact_key(1, a_task, kinds.0, a_item, a_obj);
        let b = fact_key(1, b_task, kinds.1, b_item, b_obj);
        let a2 = flowscript_codec::from_bytes::<FactKey>(&flowscript_codec::to_bytes(&a)).unwrap();
        let b2 = flowscript_codec::from_bytes::<FactKey>(&flowscript_codec::to_bytes(&b)).unwrap();
        prop_assert_eq!(a.cmp(&b), a2.cmp(&b2));
        let _ = FactKind::Input; // re-exported and nameable
    }
}
