use std::fmt;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// Identifies a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node within its [`crate::World`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from its raw [`Self::index`]. Durable
    /// records (WAL frames, shard maps) store node ids as plain
    /// integers; this turns them back into addressable handles. The
    /// index is not validated — sending to a node the world never
    /// created is a silent no-op, same as sending to a crashed one.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(r.get_u32()?))
    }
}

/// Whether a node is currently able to process messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Processing normally.
    Up,
    /// Crashed; in-flight messages to it are dropped on delivery, and its
    /// volatile state is assumed lost (durable state survives in whatever
    /// store the services keep — see `flowscript-tx`).
    Crashed,
}

/// Per-node bookkeeping inside the [`crate::World`].
pub(crate) struct NodeState {
    pub(crate) name: String,
    pub(crate) status: NodeStatus,
    /// Incremented on every crash; deliveries scheduled during a previous
    /// incarnation are discarded even if the node is back up (a restarted
    /// process has fresh sockets — old packets do not arrive).
    pub(crate) incarnation: u64,
}

impl NodeState {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            status: NodeStatus::Up,
            incarnation: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn codec_roundtrip() {
        let id = NodeId(77);
        let bytes = flowscript_codec::to_bytes(&id);
        assert_eq!(flowscript_codec::from_bytes::<NodeId>(&bytes).unwrap(), id);
    }
}
