#![warn(missing_docs)]
//! Deterministic discrete-event simulation of a distributed system.
//!
//! The ICDCS'98 workflow system ran over a CORBA ORB on real machines; this
//! crate provides the equivalent substrate as a *deterministic, seeded*
//! simulator so that every failure scenario in the paper (processor crashes,
//! temporary network failures, partitions that refuse to heal) can be
//! reproduced exactly:
//!
//! - [`World`]: the simulation facade — virtual clock, event queue, nodes,
//!   network, RNG and trace,
//! - [`net`]: per-link latency/jitter/loss plus named partitions,
//! - [`rpc`]: correlated request/response with timeouts over the network,
//! - [`fault`]: declarative fault plans (crash at *t*, partition, heal …),
//! - [`trace`]: a structured event trace used by tests to assert
//!   determinism (same seed ⇒ identical trace).
//!
//! # Examples
//!
//! ```
//! use flowscript_sim::World;
//!
//! let mut world = World::new(42);
//! let a = world.add_node("a");
//! let b = world.add_node("b");
//! world.set_handler(b, move |world, envelope| {
//!     let greeting = String::from_utf8(envelope.payload.clone()).unwrap();
//!     assert_eq!(greeting, "hello");
//!     world.trace_custom("b", "greeted");
//! });
//! world.send(a, b, b"hello".to_vec());
//! world.run();
//! assert!(world.trace().contains_custom("greeted"));
//! ```

mod event;
pub mod fault;
pub mod net;
mod node;
pub mod rpc;
mod sched;
mod time;
pub mod trace;
mod world;

pub use event::EventId;
pub use fault::{FaultAction, FaultPlan};
pub use net::{LinkConfig, Network};
pub use node::{NodeId, NodeStatus};
pub use rpc::RpcError;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
pub use world::{Envelope, ReplyToken, World};
