//! Correlated request/response messaging with timeouts.
//!
//! The workflow services (repository, execution coordinator, task
//! executors) talk RPC, mirroring the CORBA request/reply interactions of
//! the paper's architecture (Fig. 4). A call either completes with the
//! reply payload or fails with a [`RpcError`]; lost messages surface as
//! timeouts, exactly the failure the engine's retry logic must absorb.

use std::collections::HashMap;
use std::fmt;

use crate::event::EventId;
use crate::node::NodeId;
use crate::time::SimDuration;
use crate::world::{PayloadKind, World};

/// Why an RPC did not return a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply arrived within the timeout (request or reply lost, server
    /// down or partitioned — indistinguishable, as in a real network).
    Timeout,
    /// The calling node was down at call time.
    SenderDown,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::SenderDown => write!(f, "calling node is down"),
        }
    }
}

impl std::error::Error for RpcError {}

type Callback = Box<dyn FnOnce(&mut World, Result<Vec<u8>, RpcError>)>;

struct PendingCall {
    from: NodeId,
    from_incarnation: u64,
    timeout_event: EventId,
    on_done: Callback,
}

/// Book-keeping for in-flight calls, owned by the [`World`].
pub(crate) struct RpcState {
    next_id: u64,
    pending: HashMap<u64, PendingCall>,
}

impl RpcState {
    pub(crate) fn new() -> Self {
        Self {
            next_id: 0,
            pending: HashMap::new(),
        }
    }

    /// Number of in-flight calls (diagnostics).
    pub(crate) fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

pub(crate) fn call(
    world: &mut World,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
    timeout: SimDuration,
    on_done: Callback,
) {
    if !world.is_up(src) {
        on_done(world, Err(RpcError::SenderDown));
        return;
    }
    let call_id = world.rpc.next_id;
    world.rpc.next_id += 1;
    let timeout_event = world.schedule_after(timeout, move |world| {
        complete_call(world, call_id, Err(RpcError::Timeout));
    });
    let pending = PendingCall {
        from: src,
        from_incarnation: world.incarnation(src),
        timeout_event,
        on_done,
    };
    world.rpc.pending.insert(call_id, pending);
    world.send_kind(src, dst, PayloadKind::Request(call_id), payload);
}

/// Resolves a pending call. Invoked by reply delivery or by the timeout
/// event; whichever runs first wins and the other finds nothing pending.
pub(crate) fn complete_call(world: &mut World, call_id: u64, result: Result<Vec<u8>, RpcError>) {
    let Some(pending) = world.rpc.pending.remove(&call_id) else {
        return;
    };
    world.cancel(pending.timeout_event);
    // The caller crashed (or restarted) while the call was in flight: the
    // continuation belonged to its lost volatile state.
    if !world.is_up(pending.from) || world.incarnation(pending.from) != pending.from_incarnation {
        return;
    }
    (pending.on_done)(world, result);
}

/// Drops every pending call originated by `node` (crash handling).
pub(crate) fn fail_calls_from(world: &mut World, node: NodeId) {
    let stale: Vec<u64> = world
        .rpc
        .pending
        .iter()
        .filter(|(_, p)| p.from == node)
        .map(|(id, _)| *id)
        .collect();
    for id in stale {
        if let Some(pending) = world.rpc.pending.remove(&id) {
            world.cancel(pending.timeout_event);
        }
    }
}

/// Number of in-flight RPCs in `world` (diagnostic helper for tests).
pub fn in_flight(world: &World) -> usize {
    world.rpc.in_flight()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn request_reply_roundtrip() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.set_handler(server, |world, env| {
            assert!(env.is_request());
            let mut reply = env.payload.clone();
            reply.reverse();
            world.rpc_reply(env, reply);
        });
        let result = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        world.rpc_call(
            client,
            server,
            vec![1, 2, 3],
            SimDuration::from_secs(1),
            move |_, r| {
                *result2.borrow_mut() = Some(r);
            },
        );
        world.run();
        assert_eq!(*result.borrow(), Some(Ok(vec![3, 2, 1])));
        assert_eq!(in_flight(&world), 0);
    }

    #[test]
    fn timeout_when_server_down() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.crash(server);
        let result = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        world.rpc_call(
            client,
            server,
            vec![9],
            SimDuration::from_millis(10),
            move |_, r| {
                *result2.borrow_mut() = Some(r);
            },
        );
        world.run();
        assert_eq!(*result.borrow(), Some(Err(RpcError::Timeout)));
    }

    #[test]
    fn timeout_when_partitioned() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.set_handler(server, |world, env| {
            world.rpc_reply(env, vec![]);
        });
        world.partition(&[client], &[server]);
        let result = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        world.rpc_call(
            client,
            server,
            vec![],
            SimDuration::from_millis(5),
            move |_, r| {
                *result2.borrow_mut() = Some(r);
            },
        );
        world.run();
        assert_eq!(*result.borrow(), Some(Err(RpcError::Timeout)));
    }

    #[test]
    fn sender_down_fails_immediately() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.crash(client);
        let result = Rc::new(RefCell::new(None));
        let result2 = result.clone();
        world.rpc_call(
            client,
            server,
            vec![],
            SimDuration::from_millis(5),
            move |_, r| {
                *result2.borrow_mut() = Some(r);
            },
        );
        assert_eq!(*result.borrow(), Some(Err(RpcError::SenderDown)));
    }

    #[test]
    fn callback_discarded_when_caller_crashes_midflight() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.set_handler(server, |world, env| {
            world.rpc_reply(env, vec![1]);
        });
        let ran = Rc::new(RefCell::new(false));
        let ran2 = ran.clone();
        world.rpc_call(
            client,
            server,
            vec![],
            SimDuration::from_secs(1),
            move |_, _| {
                *ran2.borrow_mut() = true;
            },
        );
        world.crash(client);
        world.run();
        assert!(
            !*ran.borrow(),
            "continuation of crashed caller must not run"
        );
        assert_eq!(in_flight(&world), 0);
    }

    #[test]
    fn late_reply_after_timeout_is_ignored() {
        let mut world = World::new(3);
        let client = world.add_node("client");
        let server = world.add_node("server");
        // Slow link server -> client so the reply arrives after timeout.
        world.net_mut().set_link(
            server,
            client,
            crate::net::LinkConfig {
                base_latency: SimDuration::from_secs(10),
                jitter: SimDuration::ZERO,
                drop_prob: 0.0,
            },
        );
        world.set_handler(server, |world, env| {
            world.rpc_reply(env, vec![42]);
        });
        let results = Rc::new(RefCell::new(Vec::new()));
        let results2 = results.clone();
        world.rpc_call(
            client,
            server,
            vec![],
            SimDuration::from_millis(1),
            move |_, r| {
                results2.borrow_mut().push(r);
            },
        );
        world.run();
        assert_eq!(results.borrow().len(), 1, "callback must run exactly once");
        assert_eq!(results.borrow()[0], Err(RpcError::Timeout));
    }
}
