use std::fmt;

/// Identifies a scheduled event; returned by the scheduling calls on
/// [`crate::World`] so the event can later be cancelled (timers, retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}
