//! Structured event trace.
//!
//! Every externally visible simulation event is appended to the trace in
//! execution order. Tests assert determinism by comparing full traces from
//! same-seed runs, and assert behaviour ("the compensation ran after the
//! hotel failure") by querying it.

use std::fmt;

use crate::node::NodeId;
use crate::time::SimTime;

/// One entry in the simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left `src` heading for `dst`.
    MessageSent {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Payload length in bytes.
        bytes: usize,
    },
    /// A message arrived and was handed to the destination handler.
    MessageDelivered {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message was lost in transit.
    MessageDropped {
        /// Sender.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
        /// Why it was lost.
        reason: DropReason,
    },
    /// A node crashed.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
    },
    /// A node restarted (volatile state lost, durable state intact).
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
    },
    /// Two node groups were partitioned.
    Partitioned,
    /// All partitions healed.
    Healed,
    /// A domain-specific annotation from user code.
    Custom {
        /// Logical originator (free-form).
        node: String,
        /// The annotation text.
        label: String,
    },
}

/// Why a message never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// Source and destination were partitioned at send time.
    Partition,
    /// The destination was down at delivery time.
    NodeDown,
    /// The sender was down at send time.
    SenderDown,
    /// The destination restarted after the message was sent (stale
    /// incarnation).
    StaleIncarnation,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            DropReason::Loss => "loss",
            DropReason::Partition => "partition",
            DropReason::NodeDown => "node down",
            DropReason::SenderDown => "sender down",
            DropReason::StaleIncarnation => "stale incarnation",
        };
        f.write_str(text)
    }
}

/// The full ordered trace of a simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<(SimTime, TraceEvent)>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Disables recording (benchmarks use this to exclude trace cost).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.enabled {
            self.entries.push((at, event));
        }
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[(SimTime, TraceEvent)] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether any custom annotation with exactly this label was recorded.
    pub fn contains_custom(&self, label: &str) -> bool {
        self.entries
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::Custom { label: l, .. } if l == label))
    }

    /// All custom annotations, in order, as `(node, label)` pairs.
    pub fn custom_events(&self) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Custom { node, label } => Some((node.as_str(), label.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Count of messages dropped for the given reason.
    pub fn drops(&self, reason: DropReason) -> usize {
        self.entries
            .iter()
            .filter(
                |(_, e)| matches!(e, TraceEvent::MessageDropped { reason: r, .. } if *r == reason),
            )
            .count()
    }

    /// Count of messages delivered.
    pub fn deliveries(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::MessageDelivered { .. }))
            .count()
    }

    /// Renders the trace as one line per event (diagnostics).
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (at, event) in &self.entries {
            let _ = writeln!(out, "{at}: {event:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.record(
            SimTime::ZERO,
            TraceEvent::Custom {
                node: "x".into(),
                label: "y".into(),
            },
        );
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn queries_find_events() {
        let mut t = Trace::new();
        t.record(
            SimTime::ZERO,
            TraceEvent::Custom {
                node: "a".into(),
                label: "start".into(),
            },
        );
        t.record(
            SimTime::from_nanos(5),
            TraceEvent::MessageDropped {
                src: NodeId(0),
                dst: NodeId(1),
                reason: DropReason::Loss,
            },
        );
        t.record(
            SimTime::from_nanos(9),
            TraceEvent::MessageDelivered {
                src: NodeId(0),
                dst: NodeId(1),
            },
        );
        assert!(t.contains_custom("start"));
        assert!(!t.contains_custom("nope"));
        assert_eq!(t.custom_events(), vec![("a", "start")]);
        assert_eq!(t.drops(DropReason::Loss), 1);
        assert_eq!(t.drops(DropReason::Partition), 0);
        assert_eq!(t.deliveries(), 1);
        assert_eq!(t.len(), 3);
        assert!(t.render().lines().count() == 3);
    }
}
