use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::EventId;
use crate::net::{DeliveryFailure, Network};
use crate::node::{NodeId, NodeState, NodeStatus};
use crate::rpc::{self, RpcError, RpcState};
use crate::sched::Scheduler;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, Trace, TraceEvent};

/// How a payload should be interpreted at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PayloadKind {
    /// Plain one-way message.
    Raw,
    /// RPC request carrying a correlation id; the handler may reply via
    /// [`World::rpc_reply`].
    Request(u64),
    /// RPC reply; routed by the world to the pending callback.
    Reply(u64),
}

/// A message as seen by a node's handler.
#[derive(Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Opaque message body.
    pub payload: Vec<u8>,
    pub(crate) kind: PayloadKind,
}

impl Envelope {
    /// Whether this message is an RPC request expecting a reply.
    pub fn is_request(&self) -> bool {
        matches!(self.kind, PayloadKind::Request(_))
    }

    /// Captures a token allowing a reply after the handler returns
    /// (deferred replies). Returns `None` for non-request envelopes.
    pub fn reply_token(&self) -> Option<ReplyToken> {
        match self.kind {
            PayloadKind::Request(call_id) => Some(ReplyToken {
                server: self.dst,
                client: self.src,
                call_id,
            }),
            _ => None,
        }
    }
}

/// A deferred-reply capability captured from a request envelope via
/// [`Envelope::reply_token`].
#[derive(Debug, Clone, Copy)]
pub struct ReplyToken {
    server: NodeId,
    client: NodeId,
    call_id: u64,
}

type Handler = Rc<dyn Fn(&mut World, &Envelope)>;
type RestartHook = Rc<dyn Fn(&mut World, NodeId)>;

/// The simulation: virtual clock, event queue, nodes, network, RNG, trace.
///
/// All state mutation happens through `&mut World` inside event closures,
/// which the single-threaded scheduler runs one at a time in deterministic
/// order. See the crate-level example for typical use.
pub struct World {
    sched: Scheduler,
    rng: SmallRng,
    net: Network,
    nodes: Vec<NodeState>,
    handlers: Vec<Option<Handler>>,
    restart_hooks: Vec<Option<RestartHook>>,
    trace: Trace,
    pub(crate) rpc: RpcState,
    /// Hard cap on events processed by [`World::run`]; guards against
    /// accidental infinite event loops in tests.
    event_budget: u64,
}

impl World {
    /// Creates a world with the given RNG seed. Equal seeds and equal
    /// programs produce identical traces.
    pub fn new(seed: u64) -> Self {
        Self {
            sched: Scheduler::new(),
            rng: SmallRng::seed_from_u64(seed),
            net: Network::new(),
            nodes: Vec::new(),
            handlers: Vec::new(),
            restart_hooks: Vec::new(),
            trace: Trace::new(),
            rpc: RpcState::new(),
            event_budget: 50_000_000,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Mutable access to the network fabric.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the network fabric.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to disable recording in benches).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Caps the number of events [`World::run`] will process.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Adds a node, initially up, with no handler.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState::new(name));
        self.handlers.push(None);
        self.restart_hooks.push(None);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's configured name.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this world.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// A node's liveness status.
    pub fn node_status(&self, node: NodeId) -> NodeStatus {
        self.nodes[node.index()].status
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node.index()].status == NodeStatus::Up
    }

    pub(crate) fn incarnation(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].incarnation
    }

    /// Installs the message handler for `node`, replacing any previous one.
    pub fn set_handler<F>(&mut self, node: NodeId, handler: F)
    where
        F: Fn(&mut World, &Envelope) + 'static,
    {
        self.handlers[node.index()] = Some(Rc::new(handler));
    }

    /// Installs a hook invoked after `node` restarts (used for recovery).
    pub fn set_restart_hook<F>(&mut self, node: NodeId, hook: F)
    where
        F: Fn(&mut World, NodeId) + 'static,
    {
        self.restart_hooks[node.index()] = Some(Rc::new(hook));
    }

    /// Draws a uniform sample in `[0, 1)` from the world RNG.
    pub fn sample_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Draws a uniform integer in `[lo, hi)` from the world RNG.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn sample_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// Records a custom annotation in the trace.
    pub fn trace_custom(&mut self, node: impl Into<String>, label: impl Into<String>) {
        let event = TraceEvent::Custom {
            node: node.into(),
            label: label.into(),
        };
        self.trace.record(self.sched.now(), event);
    }

    /// Schedules `f` to run at absolute time `at`.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut World) + 'static,
    {
        self.sched.schedule_at(at, Box::new(f))
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut World) + 'static,
    {
        let at = self.sched.now() + delay;
        self.sched.schedule_at(at, Box::new(f))
    }

    /// Schedules `f` on behalf of `node`: it is silently skipped if the
    /// node has crashed or restarted in the meantime (a restarted process
    /// does not inherit its predecessor's timers).
    pub fn schedule_node_after<F>(&mut self, node: NodeId, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut World) + 'static,
    {
        let incarnation = self.incarnation(node);
        self.schedule_after(delay, move |world| {
            if world.is_up(node) && world.incarnation(node) == incarnation {
                f(world);
            }
        })
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) {
        self.sched.cancel(id);
    }

    /// Sends a one-way message. Silently dropped (with a trace entry) if
    /// the sender is down, the pair is partitioned, the link loses it, or
    /// the destination is down/restarted at delivery time.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>) {
        self.send_kind(src, dst, PayloadKind::Raw, payload);
    }

    pub(crate) fn send_kind(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: PayloadKind,
        payload: Vec<u8>,
    ) {
        let now = self.sched.now();
        if !self.is_up(src) {
            self.trace.record(
                now,
                TraceEvent::MessageDropped {
                    src,
                    dst,
                    reason: DropReason::SenderDown,
                },
            );
            return;
        }
        self.trace.record(
            now,
            TraceEvent::MessageSent {
                src,
                dst,
                bytes: payload.len(),
            },
        );
        let drop_sample = self.sample_f64();
        let jitter_sample = self.sample_f64();
        match self.net.route(src, dst, drop_sample, jitter_sample) {
            Err(failure) => {
                let reason = match failure {
                    DeliveryFailure::Dropped => DropReason::Loss,
                    DeliveryFailure::Partitioned => DropReason::Partition,
                };
                self.trace
                    .record(now, TraceEvent::MessageDropped { src, dst, reason });
            }
            Ok(latency) => {
                let expected_incarnation = self.incarnation(dst);
                self.schedule_after(latency, move |world| {
                    world.deliver(src, dst, kind, payload, expected_incarnation);
                });
            }
        }
    }

    fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        kind: PayloadKind,
        payload: Vec<u8>,
        expected_incarnation: u64,
    ) {
        let now = self.sched.now();
        if !self.is_up(dst) {
            self.trace.record(
                now,
                TraceEvent::MessageDropped {
                    src,
                    dst,
                    reason: DropReason::NodeDown,
                },
            );
            return;
        }
        if self.incarnation(dst) != expected_incarnation {
            self.trace.record(
                now,
                TraceEvent::MessageDropped {
                    src,
                    dst,
                    reason: DropReason::StaleIncarnation,
                },
            );
            return;
        }
        self.trace
            .record(now, TraceEvent::MessageDelivered { src, dst });
        let envelope = Envelope {
            src,
            dst,
            payload,
            kind,
        };
        match kind {
            PayloadKind::Reply(call_id) => {
                rpc::complete_call(self, call_id, Ok(envelope.payload));
            }
            PayloadKind::Raw | PayloadKind::Request(_) => {
                if let Some(handler) = self.handlers[dst.index()].clone() {
                    handler(self, &envelope);
                }
            }
        }
    }

    /// Issues an RPC from `src` to `dst`. `on_done` runs with the reply
    /// payload, or with an [`RpcError`] on timeout / sender failure. The
    /// callback is discarded if the calling node crashes or restarts before
    /// completion.
    pub fn rpc_call<F>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Vec<u8>,
        timeout: SimDuration,
        on_done: F,
    ) where
        F: FnOnce(&mut World, Result<Vec<u8>, RpcError>) + 'static,
    {
        rpc::call(self, src, dst, payload, timeout, Box::new(on_done));
    }

    /// Replies to an RPC request previously delivered to a handler.
    ///
    /// # Panics
    ///
    /// Panics if `request` is not an RPC request envelope.
    pub fn rpc_reply(&mut self, request: &Envelope, payload: Vec<u8>) {
        let PayloadKind::Request(call_id) = request.kind else {
            panic!("rpc_reply on a non-request envelope");
        };
        self.send_kind(
            request.dst,
            request.src,
            PayloadKind::Reply(call_id),
            payload,
        );
    }

    /// Replies to an RPC request via a stored [`ReplyToken`] (deferred
    /// replies issued after the handler returned).
    pub fn rpc_reply_to(&mut self, token: ReplyToken, payload: Vec<u8>) {
        self.send_kind(
            token.server,
            token.client,
            PayloadKind::Reply(token.call_id),
            payload,
        );
    }

    /// Crashes a node: volatile state is lost, in-flight messages to and
    /// from it will be dropped, its timers will not fire.
    pub fn crash(&mut self, node: NodeId) {
        if self.nodes[node.index()].status == NodeStatus::Crashed {
            return;
        }
        self.nodes[node.index()].status = NodeStatus::Crashed;
        self.trace
            .record(self.sched.now(), TraceEvent::NodeCrashed { node });
        rpc::fail_calls_from(self, node);
    }

    /// Restarts a crashed node and runs its restart hook (recovery).
    pub fn restart(&mut self, node: NodeId) {
        if self.nodes[node.index()].status == NodeStatus::Up {
            return;
        }
        self.nodes[node.index()].status = NodeStatus::Up;
        self.nodes[node.index()].incarnation += 1;
        self.trace
            .record(self.sched.now(), TraceEvent::NodeRestarted { node });
        if let Some(hook) = self.restart_hooks[node.index()].clone() {
            hook(self, node);
        }
    }

    /// Partitions two groups of nodes (trace-recorded).
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        self.net.partition(side_a, side_b);
        self.trace.record(self.sched.now(), TraceEvent::Partitioned);
    }

    /// Heals all partitions (trace-recorded).
    pub fn heal_all(&mut self) {
        self.net.heal_all();
        self.trace.record(self.sched.now(), TraceEvent::Healed);
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, _, run)) => {
                run(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty (or the event budget trips).
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted, which indicates a runaway
    /// event loop.
    pub fn run(&mut self) {
        let mut processed = 0u64;
        while self.step() {
            processed += 1;
            assert!(
                processed <= self.event_budget,
                "event budget exhausted after {processed} events: runaway loop?"
            );
        }
    }

    /// Runs events with time ≤ `deadline`, leaving later events queued,
    /// then advances the clock to `deadline` itself — so waiting out a
    /// quiet stretch (retry backoff, admission polling) really spends
    /// the virtual time instead of spinning at the last event's
    /// timestamp.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.sched.peek_time() {
            if next > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        self.sched.advance_to(deadline);
    }

    /// Number of pending (uncancelled) events.
    pub fn pending_events(&self) -> usize {
        self.sched.pending()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now())
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.pending_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn message_roundtrip_advances_clock() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.set_handler(b, |world, env| {
            assert_eq!(env.payload, b"ping");
            world.trace_custom("b", "got ping");
        });
        world.send(a, b, b"ping".to_vec());
        world.run();
        assert!(world.now() > SimTime::ZERO);
        assert!(world.trace().contains_custom("got ping"));
        assert_eq!(world.trace().deliveries(), 1);
    }

    #[test]
    fn crashed_destination_drops_message() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.set_handler(b, |_, _| panic!("handler must not run"));
        world.crash(b);
        world.send(a, b, b"x".to_vec());
        world.run();
        assert_eq!(world.trace().drops(DropReason::NodeDown), 1);
    }

    #[test]
    fn message_sent_before_crash_dropped_after_restart() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.set_handler(b, |_, _| panic!("stale message delivered"));
        world.send(a, b, b"x".to_vec());
        // Crash and immediately restart b before delivery.
        world.crash(b);
        world.restart(b);
        world.run();
        assert_eq!(world.trace().drops(DropReason::StaleIncarnation), 1);
    }

    #[test]
    fn node_timer_skipped_after_crash() {
        let fired = Rc::new(RefCell::new(false));
        let mut world = World::new(1);
        let a = world.add_node("a");
        let fired2 = fired.clone();
        world.schedule_node_after(a, SimDuration::from_millis(1), move |_| {
            *fired2.borrow_mut() = true;
        });
        world.crash(a);
        world.run();
        assert!(!*fired.borrow());
    }

    #[test]
    fn restart_hook_runs_on_restart() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        world.set_restart_hook(a, |world, node| {
            let name = world.node_name(node).to_string();
            world.trace_custom(name, "recovered");
        });
        world.crash(a);
        world.restart(a);
        assert!(world.trace().contains_custom("recovered"));
        assert_eq!(world.node_status(a), NodeStatus::Up);
    }

    #[test]
    fn partition_blocks_then_heal_restores() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        let seen = Rc::new(RefCell::new(0u32));
        let seen2 = seen.clone();
        world.set_handler(b, move |_, _| *seen2.borrow_mut() += 1);
        world.partition(&[a], &[b]);
        world.send(a, b, b"lost".to_vec());
        world.run();
        assert_eq!(*seen.borrow(), 0);
        world.heal_all();
        world.send(a, b, b"found".to_vec());
        world.run();
        assert_eq!(*seen.borrow(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> String {
            let mut world = World::new(seed);
            let a = world.add_node("a");
            let b = world.add_node("b");
            world.net_mut().set_default_link(crate::net::LinkConfig {
                drop_prob: 0.3,
                ..Default::default()
            });
            world.set_handler(b, |world, env| {
                if env.payload[0] < 100 {
                    let (src, dst) = (env.dst, env.src);
                    world.send(src, dst, vec![env.payload[0] + 100]);
                }
            });
            world.set_handler(a, |world, env| {
                let label = format!("echo {}", env.payload[0]);
                world.trace_custom("a", label);
            });
            for i in 0..50u8 {
                world.send(a, b, vec![i]);
            }
            world.run();
            world.trace().render()
        }
        let t1 = run_once(7);
        let t2 = run_once(7);
        let t3 = run_once(8);
        assert_eq!(t1, t2, "same seed must give identical traces");
        assert_ne!(t1, t3, "different seed should differ under loss");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut world = World::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o1 = order.clone();
        let o2 = order.clone();
        world.schedule_at(SimTime::from_nanos(10), move |_| o1.borrow_mut().push(1));
        world.schedule_at(SimTime::from_nanos(20), move |_| o2.borrow_mut().push(2));
        world.run_until(SimTime::from_nanos(15));
        assert_eq!(*order.borrow(), vec![1]);
        assert_eq!(world.pending_events(), 1);
        world.run();
        assert_eq!(*order.borrow(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn runaway_loop_trips_budget() {
        let mut world = World::new(1);
        world.set_event_budget(100);
        fn reschedule(world: &mut World) {
            world.schedule_after(SimDuration::from_nanos(1), reschedule);
        }
        world.schedule_after(SimDuration::from_nanos(1), reschedule);
        world.run();
    }
}
