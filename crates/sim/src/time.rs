use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Virtual time lets the long-running applications the paper targets
/// ("executions could span arbitrarily large durations") complete in
/// milliseconds of wall-clock time without changing event ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any schedulable event.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a duration from seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// The duration in whole nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds, truncating.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor (used for backoff).
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nanos = self.0;
        if nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", nanos as f64 / 1e9)
        } else if nanos >= 1_000_000 {
            write!(f, "{:.3}ms", nanos as f64 / 1e6)
        } else if nanos >= 1_000 {
            write!(f, "{:.3}us", nanos as f64 / 1e3)
        } else {
            write!(f, "{nanos}ns")
        }
    }
}

impl Encode for SimTime {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for SimTime {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SimTime(r.get_u64()?))
    }
}

impl Encode for SimDuration {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for SimDuration {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SimDuration(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn since_and_ordering() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b.since(a), SimDuration::from_nanos(150));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert!(a < b);
    }

    #[test]
    fn codec_roundtrip() {
        let t = SimTime::from_nanos(123_456_789);
        let bytes = flowscript_codec::to_bytes(&t);
        assert_eq!(flowscript_codec::from_bytes::<SimTime>(&bytes).unwrap(), t);
    }
}
