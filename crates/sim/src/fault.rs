//! Declarative fault plans.
//!
//! A [`FaultPlan`] scripts the environmental failures of the paper's §2 —
//! processor crashes, network partitions (healing or not), lossy periods —
//! as timed actions applied to the [`World`]. Benchmarks and tests build
//! plans once and replay them deterministically.
//!
//! # Examples
//!
//! ```
//! use flowscript_sim::{FaultAction, FaultPlan, SimTime, World};
//!
//! let mut world = World::new(1);
//! let a = world.add_node("a");
//! let b = world.add_node("b");
//! let plan = FaultPlan::new()
//!     .at(SimTime::from_nanos(100), FaultAction::Crash(a))
//!     .at(SimTime::from_nanos(500), FaultAction::Restart(a))
//!     .at(
//!         SimTime::from_nanos(200),
//!         FaultAction::Partition(vec![a], vec![b]),
//!     )
//!     .at(SimTime::from_nanos(900), FaultAction::HealAll);
//! plan.apply(&mut world);
//! world.run();
//! ```

use crate::net::LinkConfig;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::world::World;

/// One scripted environmental failure (or repair).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Crash a node.
    Crash(NodeId),
    /// Restart a crashed node (running its restart hook).
    Restart(NodeId),
    /// Partition two groups of nodes.
    Partition(Vec<NodeId>, Vec<NodeId>),
    /// Heal all partitions.
    HealAll,
    /// Replace the default link configuration (e.g. enter a lossy period).
    SetDefaultLink(LinkConfig),
}

/// A timed sequence of [`FaultAction`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action at an absolute virtual time (builder style).
    /// Times already in the past when the plan is applied fire
    /// immediately.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.actions.push((time, action));
        self
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The scheduled actions, in insertion order.
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Schedules every action onto the world.
    pub fn apply(&self, world: &mut World) {
        for (time, action) in self.actions.clone() {
            world.schedule_at(time, move |world| match action {
                FaultAction::Crash(node) => world.crash(node),
                FaultAction::Restart(node) => world.restart(node),
                FaultAction::Partition(ref a, ref b) => world.partition(a, b),
                FaultAction::HealAll => world.heal_all(),
                FaultAction::SetDefaultLink(config) => {
                    world.net_mut().set_default_link(config);
                }
            });
        }
    }

    /// Convenience: a plan that crashes `node` at `at` and restarts it
    /// after `downtime`.
    pub fn crash_restart(node: NodeId, at: SimTime, downtime: crate::SimDuration) -> Self {
        Self::new()
            .at(at, FaultAction::Crash(node))
            .at(at + downtime, FaultAction::Restart(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::NodeStatus;

    #[test]
    fn crash_restart_cycle() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        FaultPlan::crash_restart(a, SimTime::from_nanos(10), SimDuration::from_nanos(20))
            .apply(&mut world);
        world.run_until(SimTime::from_nanos(15));
        assert_eq!(world.node_status(a), NodeStatus::Crashed);
        world.run();
        assert_eq!(world.node_status(a), NodeStatus::Up);
    }

    #[test]
    fn partition_and_heal_scheduled() {
        let mut world = World::new(1);
        let a = world.add_node("a");
        let b = world.add_node("b");
        FaultPlan::new()
            .at(
                SimTime::from_nanos(5),
                FaultAction::Partition(vec![a], vec![b]),
            )
            .at(SimTime::from_nanos(10), FaultAction::HealAll)
            .apply(&mut world);
        world.run_until(SimTime::from_nanos(7));
        assert!(!world.net().can_communicate(a, b));
        world.run();
        assert!(world.net().can_communicate(a, b));
    }

    #[test]
    fn lossy_period_via_link_swap() {
        let mut world = World::new(1);
        let lossy = LinkConfig {
            drop_prob: 1.0,
            ..LinkConfig::default()
        };
        FaultPlan::new()
            .at(SimTime::from_nanos(1), FaultAction::SetDefaultLink(lossy))
            .apply(&mut world);
        world.run();
        assert_eq!(world.net().default_link().drop_prob, 1.0);
    }

    #[test]
    fn plan_introspection() {
        let plan = FaultPlan::new().at(SimTime::ZERO, FaultAction::HealAll);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
        assert_eq!(plan.actions().len(), 1);
        assert!(FaultPlan::new().is_empty());
    }
}
