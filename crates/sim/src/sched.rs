use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::event::EventId;
use crate::time::SimTime;
use crate::world::World;

/// A pending simulation event: a closure to run at a virtual instant.
pub(crate) type EventFn = Box<dyn FnOnce(&mut World)>;

struct Entry {
    at: SimTime,
    /// Monotonic tie-breaker: two events at the same instant run in the
    /// order they were scheduled. This is the root of determinism.
    seq: u64,
    id: EventId,
    run: EventFn,
}

/// Heap key ordering: earliest time first, then scheduling order.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

/// The event queue: a time-ordered heap of closures with stable ordering
/// and tombstone-based cancellation.
pub(crate) struct Scheduler {
    heap: BinaryHeap<Reverse<(Key, u64)>>,
    entries: std::collections::HashMap<u64, Entry>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    next_event: u64,
    now: SimTime,
}

impl Scheduler {
    pub(crate) fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            entries: std::collections::HashMap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            next_event: 0,
            now: SimTime::ZERO,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `run` at `at`; times already in the past are clamped to
    /// "now" (the event runs as soon as possible, after events already
    /// queued for the current instant).
    pub(crate) fn schedule_at(&mut self, at: SimTime, run: EventFn) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(self.next_event);
        self.next_event += 1;
        self.heap.push(Reverse((Key(at, seq), seq)));
        self.entries.insert(seq, Entry { at, seq, id, run });
        id
    }

    pub(crate) fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries
            .values()
            .all(|e| self.cancelled.contains(&e.id))
    }

    pub(crate) fn pending(&self) -> usize {
        self.entries
            .values()
            .filter(|e| !self.cancelled.contains(&e.id))
            .count()
    }

    /// Pops the next runnable event, advancing the clock to its time.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventId, EventFn)> {
        while let Some(Reverse((_, seq))) = self.heap.pop() {
            let entry = self
                .entries
                .remove(&seq)
                .expect("heap entry without table entry");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "clock went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.id, entry.run));
        }
        None
    }

    /// Advances the clock to `at` without running anything; a no-op if
    /// `at` is in the past. Callers must have drained events ≤ `at`
    /// first, or the next pop would run behind the clock.
    pub(crate) fn advance_to(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|next| next >= at),
            "advance_to past a pending event"
        );
        self.now = self.now.max(at);
    }

    /// Time of the next runnable event, if any.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.entries
            .values()
            .filter(|e| !self.cancelled.contains(&e.id))
            .map(|e| (e.at, e.seq))
            .min()
            .map(|(at, _)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn noop() -> EventFn {
        Box::new(|_| {})
    }

    #[test]
    fn pops_in_time_order_then_fifo() {
        let mut s = Scheduler::new();
        let t1 = SimTime::from_nanos(10);
        let t2 = SimTime::from_nanos(20);
        let a = s.schedule_at(t2, noop());
        let b = s.schedule_at(t1, noop());
        let c = s.schedule_at(t1, noop());
        let (at1, id1, _) = s.pop().unwrap();
        let (at2, id2, _) = s.pop().unwrap();
        let (at3, id3, _) = s.pop().unwrap();
        assert_eq!((at1, id1), (t1, b));
        assert_eq!((at2, id2), (t1, c), "same-time events pop in FIFO order");
        assert_eq!((at3, id3), (t2, a));
        assert!(s.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(5), noop());
        assert_eq!(s.now(), SimTime::ZERO);
        let _ = s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_nanos(5));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut s = Scheduler::new();
        let id = s.schedule_at(SimTime::from_nanos(1), noop());
        let keep = s.schedule_at(SimTime::from_nanos(2), noop());
        s.cancel(id);
        assert_eq!(s.pending(), 1);
        let (_, popped, _) = s.pop().unwrap();
        assert_eq!(popped, keep);
        assert!(s.pop().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn peek_ignores_cancelled() {
        let mut s = Scheduler::new();
        let early = s.schedule_at(SimTime::from_nanos(1), noop());
        s.schedule_at(SimTime::from_nanos(9), noop());
        s.cancel(early);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(100), noop());
        let _ = s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_nanos(100));
        // Scheduling "in the past" runs at the current instant instead.
        let id = s.schedule_at(SimTime::from_nanos(5), noop());
        let (at, popped, _) = s.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(100));
        assert_eq!(popped, id);
        assert_eq!(s.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn zero_delay_events_preserve_order() {
        let mut s = Scheduler::new();
        let now = s.now();
        let ids: Vec<_> = (0..10).map(|_| s.schedule_at(now, noop())).collect();
        let popped: Vec<_> = std::iter::from_fn(|| s.pop().map(|(_, id, _)| id)).collect();
        assert_eq!(ids, popped);
        let _ = SimDuration::ZERO;
    }
}
