//! The simulated network: latency, jitter, loss and partitions.
//!
//! The paper's fault model is "temporary network related failures" plus the
//! pathological case of "a network partition that is not healing"; both are
//! expressible here and driven either directly or via [`crate::FaultPlan`].

use std::collections::{HashMap, HashSet};

use crate::node::NodeId;
use crate::time::SimDuration;

/// Delivery characteristics of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed transit latency component.
    pub base_latency: SimDuration,
    /// Maximum additional uniformly distributed jitter.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
}

impl Default for LinkConfig {
    /// A LAN-ish default: 200µs ± 100µs, lossless.
    fn default() -> Self {
        Self {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(100),
            drop_prob: 0.0,
        }
    }
}

/// Why the network refused to carry a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFailure {
    /// The link randomly dropped the message.
    Dropped,
    /// Source and destination are in different partitions.
    Partitioned,
}

/// The network fabric connecting nodes.
///
/// Local delivery (`src == dst`) bypasses the fabric entirely: it is always
/// instantaneous and reliable, like a same-process call.
#[derive(Debug, Default)]
pub struct Network {
    default_link: LinkConfig,
    overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Unordered pairs that cannot currently communicate.
    blocked: HashSet<(NodeId, NodeId)>,
}

impl Network {
    /// Creates a network with the default link configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the default link configuration for all unconfigured pairs.
    pub fn set_default_link(&mut self, config: LinkConfig) {
        self.default_link = config;
    }

    /// The default link configuration.
    pub fn default_link(&self) -> LinkConfig {
        self.default_link
    }

    /// Sets an override for messages from `src` to `dst` (directional).
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, config: LinkConfig) {
        self.overrides.insert((src, dst), config);
    }

    /// The effective configuration for `src → dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Splits the given nodes into two groups that cannot reach each other.
    ///
    /// Nodes not mentioned keep full connectivity with everyone.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                if a != b {
                    self.blocked.insert(Self::pair(a, b));
                }
            }
        }
    }

    /// Removes every partition, restoring full connectivity.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Restores connectivity between two specific nodes.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&Self::pair(a, b));
    }

    /// Whether `a` and `b` can currently exchange messages.
    pub fn can_communicate(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.blocked.contains(&Self::pair(a, b))
    }

    /// Number of blocked node pairs (diagnostic).
    pub fn blocked_pairs(&self) -> usize {
        self.blocked.len()
    }

    /// Decides the fate of one message given a uniform random sample in
    /// `[0, 1)` and a jitter sample in `[0, 1)`.
    ///
    /// Returns the transit latency on success. Pure function of its inputs,
    /// keeping all randomness in the caller's seeded RNG.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        drop_sample: f64,
        jitter_sample: f64,
    ) -> Result<SimDuration, DeliveryFailure> {
        if src == dst {
            return Ok(SimDuration::ZERO);
        }
        if !self.can_communicate(src, dst) {
            return Err(DeliveryFailure::Partitioned);
        }
        let link = self.link(src, dst);
        if drop_sample < link.drop_prob {
            return Err(DeliveryFailure::Dropped);
        }
        let jitter_nanos = (link.jitter.as_nanos() as f64 * jitter_sample) as u64;
        Ok(link.base_latency + SimDuration::from_nanos(jitter_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn local_delivery_is_free_and_unblockable() {
        let mut net = Network::new();
        net.partition(&[n(0)], &[n(1)]);
        assert_eq!(net.route(n(0), n(0), 0.99, 0.5), Ok(SimDuration::ZERO));
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = Network::new();
        net.partition(&[n(0), n(1)], &[n(2)]);
        assert!(!net.can_communicate(n(0), n(2)));
        assert!(!net.can_communicate(n(2), n(1)));
        assert!(net.can_communicate(n(0), n(1)));
        assert_eq!(
            net.route(n(0), n(2), 0.0, 0.0),
            Err(DeliveryFailure::Partitioned)
        );
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut net = Network::new();
        net.partition(&[n(0)], &[n(1), n(2)]);
        net.heal(n(0), n(1));
        assert!(net.can_communicate(n(0), n(1)));
        assert!(!net.can_communicate(n(0), n(2)));
        net.heal_all();
        assert!(net.can_communicate(n(0), n(2)));
        assert_eq!(net.blocked_pairs(), 0);
    }

    #[test]
    fn drop_probability_uses_sample() {
        let mut net = Network::new();
        net.set_default_link(LinkConfig {
            drop_prob: 0.5,
            ..LinkConfig::default()
        });
        assert_eq!(
            net.route(n(0), n(1), 0.49, 0.0),
            Err(DeliveryFailure::Dropped)
        );
        assert!(net.route(n(0), n(1), 0.51, 0.0).is_ok());
    }

    #[test]
    fn latency_includes_scaled_jitter() {
        let mut net = Network::new();
        net.set_default_link(LinkConfig {
            base_latency: SimDuration::from_nanos(100),
            jitter: SimDuration::from_nanos(50),
            drop_prob: 0.0,
        });
        assert_eq!(
            net.route(n(0), n(1), 1.0, 0.0),
            Ok(SimDuration::from_nanos(100))
        );
        assert_eq!(
            net.route(n(0), n(1), 1.0, 0.5),
            Ok(SimDuration::from_nanos(125))
        );
    }

    #[test]
    fn per_link_override_is_directional() {
        let mut net = Network::new();
        let slow = LinkConfig {
            base_latency: SimDuration::from_secs(1),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
        };
        net.set_link(n(0), n(1), slow);
        assert_eq!(net.link(n(0), n(1)), slow);
        assert_eq!(net.link(n(1), n(0)), net.default_link());
    }
}
