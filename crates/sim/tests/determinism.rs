//! Determinism guarantee: the same seed and the same program produce
//! identical traces, even under heavy message loss, crashes and partitions.

use std::cell::RefCell;
use std::rc::Rc;

use flowscript_sim::{
    net::LinkConfig, FaultAction, FaultPlan, NodeId, SimDuration, SimTime, World,
};
use proptest::prelude::*;

/// Builds a chatty 4-node world with loss, a crash/restart and a partition,
/// runs it, and returns the rendered trace.
fn run_scenario(seed: u64, drop_prob: f64, fanout: u8) -> String {
    let mut world = World::new(seed);
    let nodes: Vec<NodeId> = (0..4).map(|i| world.add_node(format!("node{i}"))).collect();
    world.net_mut().set_default_link(LinkConfig {
        drop_prob,
        ..LinkConfig::default()
    });

    // Every node echoes decremented payloads to the next node until zero.
    for (i, &node) in nodes.iter().enumerate() {
        let next = nodes[(i + 1) % nodes.len()];
        world.set_handler(node, move |world, env| {
            let value = env.payload[0];
            if value > 0 {
                let dst = env.dst;
                world.send(dst, next, vec![value - 1]);
            } else {
                world.trace_custom(format!("{}", env.dst), "chain done");
            }
        });
    }

    FaultPlan::new()
        .at(SimTime::from_nanos(400_000), FaultAction::Crash(nodes[2]))
        .at(SimTime::from_nanos(900_000), FaultAction::Restart(nodes[2]))
        .at(
            SimTime::from_nanos(600_000),
            FaultAction::Partition(vec![nodes[0]], vec![nodes[3]]),
        )
        .at(SimTime::from_nanos(1_200_000), FaultAction::HealAll)
        .apply(&mut world);

    for i in 0..fanout {
        world.send(nodes[0], nodes[1], vec![i.wrapping_mul(3) % 17]);
    }
    world.run();
    world.trace().render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_same_trace(seed: u64, drop in 0.0f64..0.6, fanout in 1u8..24) {
        let a = run_scenario(seed, drop, fanout);
        let b = run_scenario(seed, drop, fanout);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rpc_under_faults_always_terminates(seed: u64, drop in 0.0f64..0.9) {
        let mut world = World::new(seed);
        let client = world.add_node("client");
        let server = world.add_node("server");
        world.net_mut().set_default_link(LinkConfig {
            drop_prob: drop,
            ..LinkConfig::default()
        });
        world.set_handler(server, |world, env| {
            world.rpc_reply(env, env.payload.clone());
        });
        let outcomes = Rc::new(RefCell::new(0u32));
        for i in 0..10u8 {
            let outcomes = outcomes.clone();
            world.rpc_call(
                client,
                server,
                vec![i],
                SimDuration::from_millis(50),
                move |_, _| {
                    *outcomes.borrow_mut() += 1;
                },
            );
        }
        world.run();
        // Every call resolves exactly once, success or timeout.
        prop_assert_eq!(*outcomes.borrow(), 10);
    }
}

#[test]
fn trace_differs_across_seeds_under_loss() {
    let a = run_scenario(1, 0.4, 16);
    let b = run_scenario(2, 0.4, 16);
    assert_ne!(a, b);
}
