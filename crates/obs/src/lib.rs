#![warn(missing_docs)]
//! Low-overhead observability for the flowscript engine.
//!
//! Two cooperating pieces, both single-threaded (`Rc`/`Cell` — the
//! whole system runs inside one deterministic simulation thread):
//!
//! - a **metrics [`Registry`]** of typed [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s. Handles are cheap clones of shared cells, so hot
//!   paths increment without a registry lookup; [`Registry::snapshot`]
//!   materialises everything into a [`Snapshot`] that merges across
//!   shards and exports as JSON or CSV,
//! - a **[`FlightRecorder`]**: a bounded ring buffer of structured
//!   lifecycle [`ObsEvent`]s (instance start, commit, dispatch, retry,
//!   forward, stuck, recovery…), each carrying the instance id, task
//!   path, shard, attempt and a monotonic virtual timestamp. The
//!   engine queries it per instance to reconstruct a causal history.
//!
//! How much the engine feeds these is a branch on [`ObserveLevel`]:
//! `Off` costs one enum compare per hook point.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// How much the engine observes itself.
///
/// Checked at every hook point; `Off` reduces a hook to a branch on
/// this enum. Levels are cumulative: `Trace` implies `Metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObserveLevel {
    /// No optional instrumentation. Always-on counters (the ones the
    /// public stats getters are built from) still tick.
    #[default]
    Off,
    /// Record optional metrics (histograms: drain lengths, dispatch
    /// latency, WAL frames per commit, scheduler load…).
    Metrics,
    /// `Metrics` plus the flight recorder of lifecycle events.
    Trace,
}

impl ObserveLevel {
    /// True when optional metrics (histograms, gauges) should tick.
    #[inline]
    pub fn metrics(self) -> bool {
        self >= ObserveLevel::Metrics
    }

    /// True when lifecycle events should be recorded.
    #[inline]
    pub fn trace(self) -> bool {
        self >= ObserveLevel::Trace
    }
}

/// A monotonically increasing `u64` counter.
///
/// Clones share the same cell — register once, clone the handle into
/// the hot path, and increment without any lookup.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Overwrites the value (used when recovery re-derives a count).
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.set(value);
    }
}

/// A signed instantaneous value (queue depths, in-flight counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.set(value);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.set(self.0.get().wrapping_add(delta));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Number of power-of-two buckets a histogram tracks: bucket `i`
/// counts samples with `ilog2(value) == i` (bucket 0 also takes 0).
const HIST_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
struct HistState {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistState {
    fn default() -> Self {
        HistState {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Recording is O(1); quantiles are estimated from the bucket upper
/// bounds (good to a factor of two, which is plenty for latency
/// distributions in a simulated clock).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistState>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let mut state = self.0.borrow_mut();
        state.count += 1;
        state.sum = state.sum.saturating_add(value);
        state.min = state.min.min(value);
        state.max = state.max.max(value);
        let bucket = if value == 0 {
            0
        } else {
            value.ilog2() as usize
        };
        state.buckets[bucket] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.0.borrow().max
    }

    /// Mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> u64 {
        let state = self.0.borrow();
        state.sum.checked_div(state.count).unwrap_or(0)
    }

    /// Estimated quantile (`q` in `0.0..=1.0`): the upper bound of the
    /// bucket holding the q-th sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        let state = self.0.borrow();
        if state.count == 0 {
            return 0;
        }
        let rank = ((state.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in state.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i + 1 >= HIST_BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(state.max);
            }
        }
        state.max
    }

    fn summary(&self) -> HistogramSummary {
        let state = self.0.borrow();
        HistogramSummary {
            count: state.count,
            sum: state.sum,
            min: if state.count == 0 { 0 } else { state.min },
            max: state.max,
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            buckets: state.buckets,
        }
    }
}

/// An exported histogram: totals plus the raw power-of-two buckets so
/// merged snapshots can still estimate quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Power-of-two bucket counts (`buckets[i]` holds samples whose
    /// `ilog2` is `i`).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSummary {
    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn merge(&mut self, other: &HistogramSummary) {
        let had = self.count > 0;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = if had {
                self.min.min(other.min)
            } else {
                other.min
            };
            self.max = self.max.max(other.max);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        // Re-estimate quantiles from the merged buckets.
        let (p50, p99) = quantiles_from_buckets(&self.buckets, self.count, self.max);
        self.p50 = p50;
        self.p99 = p99;
    }
}

fn quantiles_from_buckets(buckets: &[u64; HIST_BUCKETS], count: u64, max: u64) -> (u64, u64) {
    let at = |q: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i + 1 >= HIST_BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(max);
            }
        }
        max
    };
    (at(0.5), at(0.99))
}

/// One exported metric value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram summary (boxed: it carries the full bucket array).
    Histogram(Box<HistogramSummary>),
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics for one shard (or one subsystem).
///
/// Cloning shares the underlying table. `counter`/`gauge`/`histogram`
/// get-or-register by name and hand back a clone-cheap handle;
/// re-registering the same name with the same type returns the same
/// underlying cell (so the engine and tests can both reach it).
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Rc<RefCell<BTreeMap<String, Metric>>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.borrow().len())
            .finish()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.borrow_mut();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.borrow_mut();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or registers the histogram `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.borrow_mut();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Materialises every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.borrow();
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(counter) => MetricValue::Counter(counter.get()),
                    Metric::Gauge(gauge) => MetricValue::Gauge(gauge.get()),
                    Metric::Histogram(histogram) => {
                        MetricValue::Histogram(Box::new(histogram.summary()))
                    }
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// A point-in-time export of a [`Registry`], mergeable across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metric name → exported value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Folds another snapshot in: counters and gauges add, histograms
    /// merge bucket-wise. Type mismatches keep `self`'s entry.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.entries {
            match (self.entries.get_mut(name), value) {
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Gauge(mine)), MetricValue::Gauge(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(theirs)) => {
                    mine.merge(theirs);
                }
                (Some(_), _) => {}
                (None, value) => {
                    self.entries.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// Counter total by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(value)) => *value,
            _ => 0,
        }
    }

    /// Gauge reading by name (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(value)) => *value,
            _ => 0,
        }
    }

    /// Histogram summary by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(summary)) => Some(summary.as_ref()),
            _ => None,
        }
    }

    /// Renders the snapshot as a JSON object keyed by metric name.
    ///
    /// Counters/gauges become numbers; histograms become objects with
    /// `count`/`sum`/`min`/`max`/`mean`/`p50`/`p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  {}: ", json_string(name)));
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.p50,
                        h.p99
                    ));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the snapshot as CSV with a fixed header:
    /// `metric,kind,count,sum,min,max,mean,p50,p99`. Counters and
    /// gauges fill only `count` (their value); histograms fill all
    /// columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,count,sum,min,max,mean,p50,p99\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name},counter,{v},,,,,,\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name},gauge,{v},,,,,,\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name},histogram,{},{},{},{},{},{},{}\n",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.p50,
                        h.p99
                    ));
                }
            }
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What happened, in a flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEventKind {
    /// The instance was started (its metadata committed).
    InstanceStart,
    /// A state change committed; `what` names it (e.g. `done`,
    /// `executing`, `mark via=approve`).
    Commit {
        /// Short description of the committed change.
        what: String,
        /// Batch id when this commit coalesced into a group-commit
        /// window; `None` for a stand-alone commit.
        batch: Option<u64>,
    },
    /// A task was dispatched to `executor`.
    Dispatch {
        /// Executor node index the task went to.
        executor: u32,
    },
    /// A failed or timed-out task was scheduled for retry.
    Retry {
        /// Why the previous attempt ended.
        reason: String,
    },
    /// A misdirected request was forwarded to the owning shard.
    Forward {
        /// Owning shard the request was relayed to.
        to: u32,
        /// Shard-map epoch the forwarder routed under.
        epoch: u64,
    },
    /// The instance became stuck; `reason` is the diagnosis.
    Stuck {
        /// Stuck diagnosis (same text as [`InstanceStatus::Stuck`]).
        ///
        /// [`InstanceStatus::Stuck`]: https://docs.rs/flowscript-engine
        reason: String,
    },
    /// The owning shard recovered this instance from its WAL.
    Recovery {
        /// Shard-map epoch in force when recovery ran.
        epoch: u64,
    },
    /// The instance was handed off to a new owning shard.
    HandOff {
        /// Destination shard that adopted the instance.
        to: u32,
        /// Shard-map epoch the hand-off committed under.
        epoch: u64,
    },
    /// The instance reached a terminal outcome.
    Terminal {
        /// `done` or `aborted`.
        outcome: String,
    },
    /// An operator repair op was applied (e.g. `repair_fact`).
    Repair {
        /// What was repaired.
        what: String,
    },
    /// A dispatch (or an instance start) was parked behind saturated
    /// capacity / the admission cap instead of proceeding.
    Parked {
        /// Queue depth *after* parking (ready or admission queue).
        queue_depth: u64,
    },
    /// A previously parked dispatch or instance start was released
    /// from its queue and proceeded.
    Admitted {
        /// Virtual nanoseconds the work spent parked.
        wait_ns: u64,
    },
    /// A planned drain of this shard began: its whole live population
    /// is about to move to the survivors (shard-scoped; the recorded
    /// "instance" is the shard label).
    DrainBegin {
        /// Resident instances the drain must move.
        remaining: u64,
    },
    /// The planned drain finished and the shard left the map.
    DrainEnd {
        /// Instances moved off.
        moved: u64,
        /// Batched 2PC rounds the moves rode (fewer than `moved` when
        /// id-range allocation let instances share prepare rounds).
        rounds: u64,
    },
    /// This instance's keyspace was claimed from a dead shard's
    /// surviving storage under an epoch-stamped fence.
    Claim {
        /// The dead shard the keyspace was claimed from.
        from: u32,
        /// The bumped membership epoch stamped into the fence.
        epoch: u64,
    },
    /// The instance came alive on this shard via crash-driven adoption
    /// (claimed, re-keyed and re-armed without its old owner's help).
    Adopted {
        /// The dead shard it survived.
        from: u32,
        /// Membership epoch the adoption ran under.
        epoch: u64,
    },
}

impl ObsEventKind {
    /// Stable lowercase tag for filtering and display.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsEventKind::InstanceStart => "start",
            ObsEventKind::Commit { .. } => "commit",
            ObsEventKind::Dispatch { .. } => "dispatch",
            ObsEventKind::Retry { .. } => "retry",
            ObsEventKind::Forward { .. } => "forward",
            ObsEventKind::Stuck { .. } => "stuck",
            ObsEventKind::Recovery { .. } => "recovery",
            ObsEventKind::HandOff { .. } => "handoff",
            ObsEventKind::Terminal { .. } => "terminal",
            ObsEventKind::Repair { .. } => "repair",
            ObsEventKind::Parked { .. } => "parked",
            ObsEventKind::Admitted { .. } => "admitted",
            ObsEventKind::DrainBegin { .. } => "drain",
            ObsEventKind::DrainEnd { .. } => "drained",
            ObsEventKind::Claim { .. } => "claim",
            ObsEventKind::Adopted { .. } => "adopted",
        }
    }
}

/// One structured lifecycle event in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Per-recorder monotonic sequence number (total order within a
    /// shard, survives ring eviction).
    pub seq: u64,
    /// Virtual timestamp (simulation nanoseconds).
    pub at_ns: u64,
    /// Shard that recorded the event.
    pub shard: u32,
    /// Instance the event concerns.
    pub instance: String,
    /// Task path within the instance, when task-scoped.
    pub task: Option<String>,
    /// Dispatch attempt number, when task-scoped (0 otherwise).
    pub attempt: u32,
    /// What happened.
    pub kind: ObsEventKind,
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ns] shard {} {:<9} {}",
            self.at_ns,
            self.shard,
            self.kind.tag(),
            self.instance
        )?;
        if let Some(task) = &self.task {
            write!(f, " {task}")?;
            if self.attempt > 0 {
                write!(f, "#{}", self.attempt)?;
            }
        }
        match &self.kind {
            ObsEventKind::Commit { what, batch } => {
                write!(f, ": {what}")?;
                if let Some(batch) = batch {
                    write!(f, " [batch {batch}]")?;
                }
                Ok(())
            }
            ObsEventKind::Dispatch { executor } => write!(f, " -> executor node {executor}"),
            ObsEventKind::Retry { reason } => write!(f, ": {reason}"),
            ObsEventKind::Forward { to, epoch } => write!(f, " -> shard {to} @epoch {epoch}"),
            ObsEventKind::Stuck { reason } => write!(f, ": {reason}"),
            ObsEventKind::Recovery { epoch } => write!(f, " @epoch {epoch}"),
            ObsEventKind::HandOff { to, epoch } => write!(f, " -> shard {to} @epoch {epoch}"),
            ObsEventKind::Terminal { outcome } => write!(f, ": {outcome}"),
            ObsEventKind::Repair { what } => write!(f, ": {what}"),
            ObsEventKind::Parked { queue_depth } => write!(f, ": depth {queue_depth}"),
            ObsEventKind::Admitted { wait_ns } => write!(f, " after {wait_ns} ns"),
            ObsEventKind::DrainBegin { remaining } => write!(f, ": {remaining} to move"),
            ObsEventKind::DrainEnd { moved, rounds } => {
                write!(f, ": {moved} moved in {rounds} rounds")
            }
            ObsEventKind::Claim { from, epoch } => write!(f, " <- shard {from} @epoch {epoch}"),
            ObsEventKind::Adopted { from, epoch } => write!(f, " <- shard {from} @epoch {epoch}"),
            _ => Ok(()),
        }
    }
}

/// A bounded ring buffer of [`ObsEvent`]s for one shard.
///
/// When full, the oldest events are evicted first, so the recorder
/// always keeps the *newest* events per instance. Cloning shares the
/// ring (handle semantics, like the metric types).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<RecorderState>>,
}

#[derive(Debug)]
struct RecorderState {
    shard: u32,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<ObsEvent>,
}

impl FlightRecorder {
    /// A recorder for `shard` holding at most `capacity` events
    /// (clamped to at least 1).
    pub fn new(shard: u32, capacity: usize) -> Self {
        FlightRecorder {
            inner: Rc::new(RefCell::new(RecorderState {
                shard,
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                ring: VecDeque::new(),
            })),
        }
    }

    /// Records one event. `task`/`attempt` scope it to a dispatch when
    /// applicable.
    pub fn record(
        &self,
        at_ns: u64,
        instance: &str,
        task: Option<&str>,
        attempt: u32,
        kind: ObsEventKind,
    ) {
        let mut state = self.inner.borrow_mut();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == state.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        let shard = state.shard;
        state.ring.push_back(ObsEvent {
            seq,
            at_ns,
            shard,
            instance: instance.to_string(),
            task: task.map(str::to_string),
            attempt,
            kind,
        });
    }

    /// Every retained event, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.borrow().ring.iter().cloned().collect()
    }

    /// Retained events concerning `instance`, oldest first.
    pub fn events_for(&self, instance: &str) -> Vec<ObsEvent> {
        self.inner
            .borrow()
            .ring
            .iter()
            .filter(|event| event.instance == instance)
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().ring.is_empty()
    }

    /// Number of events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_level_ordering() {
        assert!(!ObserveLevel::Off.metrics());
        assert!(!ObserveLevel::Off.trace());
        assert!(ObserveLevel::Metrics.metrics());
        assert!(!ObserveLevel::Metrics.trace());
        assert!(ObserveLevel::Trace.metrics());
        assert!(ObserveLevel::Trace.trace());
    }

    #[test]
    fn counter_handles_share_state() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().counter("x"), 3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.histogram("x");
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) >= 3);
        assert!(h.quantile(1.0) <= 1000);

        let other = Registry::new();
        let g = other.histogram("lat");
        g.record(5000);
        let mut snap = registry.snapshot();
        snap.merge(&other.snapshot());
        let merged = snap.histogram("lat").expect("histogram survives merge");
        assert_eq!(merged.count, 6);
        assert_eq!(merged.max, 5000);
        assert_eq!(merged.min, 1);
    }

    #[test]
    fn snapshot_merge_adds_counters() {
        let a = Registry::new();
        a.counter("n").add(2);
        let b = Registry::new();
        b.counter("n").add(3);
        b.counter("only_b").inc();
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("n"), 5);
        assert_eq!(snap.counter("only_b"), 1);
    }

    #[test]
    fn snapshot_exports() {
        let registry = Registry::new();
        registry.counter("c").add(7);
        registry.gauge("g").set(-2);
        registry.histogram("h").record(10);
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"c\": 7"));
        assert!(json.contains("\"g\": -2"));
        assert!(json.contains("\"count\": 1"));
        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,kind,"));
        assert!(csv.contains("c,counter,7"));
        assert!(csv.contains("h,histogram,1"));
    }

    #[test]
    fn recorder_evicts_oldest_first() {
        let rec = FlightRecorder::new(0, 3);
        for i in 0..5u64 {
            rec.record(i, "inst", None, 0, ObsEventKind::InstanceStart);
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 2);
        // Oldest evicted: the newest three survive, in order.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn recorder_filters_per_instance() {
        let rec = FlightRecorder::new(1, 16);
        rec.record(1, "a", None, 0, ObsEventKind::InstanceStart);
        rec.record(2, "b", Some("t"), 1, ObsEventKind::Dispatch { executor: 4 });
        rec.record(
            3,
            "a",
            None,
            0,
            ObsEventKind::Terminal {
                outcome: "done".into(),
            },
        );
        let a = rec.events_for("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].kind, ObsEventKind::InstanceStart);
        assert_eq!(a[1].kind.tag(), "terminal");
        assert_eq!(rec.events_for("b")[0].shard, 1);
    }
}
