#![warn(missing_docs)]
//! # flowscript
//!
//! A scripting language and transactional workflow engine for composing
//! **reliable distributed applications** — a from-scratch reproduction of
//! *"A Language for Specifying the Composition of Reliable Distributed
//! Applications"* (F. Ranno, S. K. Shrivastava, S. M. Wheater,
//! ICDCS 1998).
//!
//! The system is layered as a Cargo workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`flowscript_core`] | the language: parser, semantic analysis, templates, formatter, DOT export, compiled schemas |
//! | [`flowscript_plan`] | compiled execution plans: the dense, index-based IR the coordinator's hot paths run off (lowered once per script version, cached by the repository) |
//! | [`flowscript_engine`] | the execution environment: repository + execution services, Fig. 3 task lifecycle, compound scopes, retries, recovery, dynamic reconfiguration |
//! | [`flowscript_tx`] | Arjuna-style transactions: atomic actions, 2PL, write-ahead log, recovery, 2PC |
//! | [`flowscript_sim`] | deterministic discrete-event simulation: nodes, faulty network, RPC, virtual time |
//! | [`flowscript_codec`] | binary encoding, framing, checksums |
//!
//! (`flowscript-bench`, the seventh workspace crate, holds the
//! per-figure benchmark workloads.)
//!
//! # Quick start
//!
//! ```
//! use flowscript::prelude::*;
//!
//! let mut sys = WorkflowSystem::builder().executors(2).seed(7).build();
//! sys.register_script("hello", flowscript::samples::QUICKSTART, "pipeline")?;
//! sys.bind_fn("refProduce", |ctx| {
//!     TaskBehavior::outcome("produced")
//!         .with_object("message", ObjectVal::text("Message", format!("{}!", ctx.input_text("seed"))))
//! });
//! sys.bind_fn("refConsume", |ctx| {
//!     TaskBehavior::outcome("consumed")
//!         .with_object("result", ObjectVal::text("Message", ctx.input_text("message")))
//! });
//! sys.start("run", "hello", "main", [("seed", ObjectVal::text("Message", "hi"))])?;
//! sys.run();
//! assert_eq!(sys.outcome("run").unwrap().objects["result"].as_text(), "hi!");
//! # Ok::<(), EngineError>(())
//! ```

pub use flowscript_codec as codec;
pub use flowscript_core as lang;
pub use flowscript_engine as engine;
pub use flowscript_plan as plan;
pub use flowscript_sim as sim;
pub use flowscript_tx as tx;

/// The paper's example applications as ready-to-run scripts.
pub use flowscript_core::samples;

/// The most common imports in one place.
pub mod prelude {
    pub use flowscript_core::schema::{compile_source, Schema};
    pub use flowscript_core::{parse, sema, Diagnostics};
    pub use flowscript_engine::{
        CbState, EngineConfig, EngineError, InstanceStatus, ObjectVal, ObsEvent, ObsEventKind,
        ObserveLevel, Outcome, Reconfig, Snapshot, TaskBehavior, WorkflowSystem,
    };
    pub use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let sys = WorkflowSystem::builder().seed(1).build();
        let _ = sys.stats();
        let _ = SimDuration::from_millis(1);
    }
}
