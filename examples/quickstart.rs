//! Quickstart: parse a script, bind implementations, run a workflow.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flowscript::prelude::*;

fn main() -> Result<(), EngineError> {
    // 1. A workflow system: client + repository + coordinator + 2
    //    executor nodes on a simulated network (the paper's Fig. 4).
    let mut sys = WorkflowSystem::builder().executors(2).seed(7).build();

    // 2. Register a script with the repository service. The script (see
    //    `flowscript::samples::QUICKSTART`) declares a two-task pipeline:
    //    produce → consume, composed as a compound task.
    let version = sys.register_script("hello", flowscript::samples::QUICKSTART, "pipeline")?;
    println!("registered script `hello` v{version}");

    // 3. Bind the abstract implementation names from the script
    //    (`"code" is "refProduce"`) to behaviour — run-time binding is
    //    the paper's route to online upgrades.
    sys.bind_fn("refProduce", |ctx| {
        let seed = ctx.input_text("seed");
        TaskBehavior::outcome("produced").with_object(
            "message",
            ObjectVal::text("Message", format!("{seed}, world")),
        )
    });
    sys.bind_fn("refConsume", |ctx| {
        let message = ctx.input_text("message");
        TaskBehavior::outcome("consumed")
            .with_object("result", ObjectVal::text("Message", message.to_uppercase()))
    });

    // 4. Start an instance, bind the root input set, and run the
    //    simulation to quiescence.
    sys.start(
        "run-1",
        "hello",
        "main",
        [("seed", ObjectVal::text("Message", "hello"))],
    )?;
    sys.run();

    // 5. Inspect the result.
    let outcome = sys.outcome("run-1").expect("pipeline completes");
    println!("outcome: {}", outcome.name);
    println!("result:  {}", outcome.objects["result"].as_text());
    println!("task states:");
    for (path, state) in sys.task_states("run-1") {
        println!("  {path}: {state:?}");
    }
    println!(
        "virtual time: {}, dispatches: {}",
        sys.now(),
        sys.stats().dispatches
    );
    assert_eq!(outcome.objects["result"].as_text(), "HELLO, WORLD");
    Ok(())
}
