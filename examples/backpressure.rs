//! Admission control in two flavors of backpressure. Act 1: with no
//! admission queue, a saturated shard answers `start` with the typed,
//! retryable [`EngineError::Busy`] and the client backs off and
//! retries — twelve instances squeeze through two shards capped at two
//! live instances each, and nothing is lost. Act 2: with queue room,
//! the same overload *queues* instead — the start call simply blocks
//! in virtual time until an earlier instance finishes, and the flight
//! recorder shows the park and the admit.
//!
//! ```sh
//! cargo run --example backpressure
//! ```

use flowscript::prelude::*;
use flowscript_engine::coordinator::EngineConfig;

const SLOW_JOB: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task w of taskclass Work {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs { outcome done { notification from { task w if output done } } }
}
"#;

fn build(coordinators: usize, cap: usize, queue: usize) -> Result<WorkflowSystem, EngineError> {
    let config = EngineConfig {
        max_inflight_instances: Some(cap),
        admission_queue_limit: queue,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .coordinators(coordinators)
        .executors(2)
        .seed(1998)
        .config(config)
        .build();
    sys.register_script("job", SLOW_JOB, "root")?;
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(200))
    });
    Ok(sys)
}

fn main() -> Result<(), EngineError> {
    // ------------------------------------------------------------------
    // Act 1: reject-and-retry. Zero queue room, so every start beyond
    // the two live instances a shard allows comes back as Busy.
    // ------------------------------------------------------------------
    println!("act 1: cap 2/shard, no admission queue — typed Busy, client retries\n");
    let mut sys = build(2, 2, 0)?;
    let jobs: Vec<String> = (0..12).map(|i| format!("job-{i:02}")).collect();
    let mut rejections = 0u64;
    for name in &jobs {
        loop {
            match sys.start(
                name,
                "job",
                "main",
                [("seed", ObjectVal::text("Data", "s"))],
            ) {
                Ok(()) => {
                    println!(
                        "{name} admitted on shard {} at {}",
                        sys.shard_of(name),
                        sys.now()
                    );
                    break;
                }
                Err(EngineError::Busy { queue_depth }) => {
                    rejections += 1;
                    println!("{name} rejected Busy (queue depth {queue_depth}) — backing off 50ms");
                    sys.run_for(SimDuration::from_millis(50));
                }
                Err(err) => return Err(err),
            }
        }
    }
    sys.run();
    for name in &jobs {
        assert_eq!(sys.outcome(name).expect("job completes").name, "done");
    }
    println!(
        "\nall {} jobs completed by {}; {} Busy rejections, zero lost",
        jobs.len(),
        sys.now(),
        rejections
    );
    for shard in 0..sys.shard_count() {
        let stats = sys.shard_stats(shard);
        println!(
            "shard {shard}: dispatches {:>2}, busy rejections {:>2}",
            stats.dispatches, stats.busy_rejections
        );
    }
    let total: u64 = (0..sys.shard_count())
        .map(|s| sys.shard_stats(s).busy_rejections)
        .sum();
    assert_eq!(total, rejections, "every Busy the client saw is counted");
    assert!(rejections > 0, "twelve jobs against cap 2x2 must overflow");

    // ------------------------------------------------------------------
    // Act 2: queue-and-wait. Cap 1 with queue room: the second start
    // parks in the admission queue and the call blocks in virtual time
    // until the first job's 200ms of work frees the slot.
    // ------------------------------------------------------------------
    println!("\nact 2: cap 1, admission queue 4 — the start call waits its turn\n");
    let mut sys = build(1, 1, 4)?;
    sys.start(
        "slow-a",
        "job",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )?;
    let before = sys.now();
    sys.start(
        "slow-b",
        "job",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )?;
    let after = sys.now();
    println!("slow-b's start blocked from {before} to {after} while slow-a ran");
    assert!(after.since(before) >= SimDuration::from_millis(190));
    sys.run();
    assert!(sys.outcome("slow-a").is_some());
    assert!(sys.outcome("slow-b").is_some());
    for event in sys.trace("slow-b") {
        match event.kind {
            ObsEventKind::Parked { queue_depth } => {
                println!("  flight recorder: slow-b parked (queue depth {queue_depth})");
            }
            ObsEventKind::Admitted { wait_ns } => {
                println!(
                    "  flight recorder: slow-b admitted after {:.1}ms in the queue",
                    wait_ns as f64 / 1_000_000.0
                );
            }
            _ => {}
        }
    }
    assert_eq!(sys.stats().busy_rejections, 0, "queue room means no Busy");
    println!("\nboth flavors drained the same overload — reject loudly or queue quietly");
    Ok(())
}
