//! §2's dynamic reconfiguration scenario: while the Fig. 1 diamond is
//! running, atomically add a task `t5` with dependencies from `t2` and
//! `t4`, then rebind an implementation (online upgrade) — all without
//! stopping the instance.
//!
//! ```sh
//! cargo run --example dynamic_reconfig
//! ```

use flowscript::prelude::*;

fn main() -> Result<(), EngineError> {
    let mut sys = WorkflowSystem::builder().executors(2).seed(5).build();
    sys.register_script("diamond", flowscript::samples::FIG1_DIAMOND, "diamond")?;

    sys.bind_fn("refT1", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(50))
            .with_object(
                "out",
                ObjectVal::text("Data", format!("{}·t1", ctx.input_text("seed"))),
            )
    });
    sys.bind_fn("refT2", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(50))
            .with_object("out", ObjectVal::text("Data", "t2"))
    });
    sys.bind_fn("refT3", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(50))
            .with_object(
                "out",
                ObjectVal::text("Data", format!("{}·t3", ctx.input_text("in"))),
            )
    });
    sys.bind_fn("refT4", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(50))
            .with_object(
                "out",
                ObjectVal::text(
                    "Data",
                    format!(
                        "join({}, {})",
                        ctx.input_text("left"),
                        ctx.input_text("right")
                    ),
                ),
            )
    });
    sys.bind_fn("refT5", |ctx| {
        println!(
            "t5 (added at run time) saw: left={}, right={}",
            ctx.input_text("left"),
            ctx.input_text("right")
        );
        TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "t5"))
    });

    sys.start(
        "d1",
        "diamond",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )?;

    // Upgrade t3's implementation on the fly, before it is dispatched
    // (t1 is still executing at this point).
    sys.bind_fn("refT3v2", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text("Data", format!("v2({})", ctx.input_text("in"))),
        )
    });
    sys.reconfigure(
        "d1",
        Reconfig::Rebind {
            code: "refT3".into(),
            to: "refT3v2".into(),
        },
    )?;

    // Let t1 finish but not the rest, then change the running structure.
    sys.run_for(SimDuration::from_millis(60));
    println!("reconfiguring at {} …", sys.now());
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: r#"
                task t5 of taskclass Join {
                    implementation { "code" is "refT5" };
                    inputs {
                        input main {
                            inputobject left from { out of task t2 if output done };
                            inputobject right from { out of task t4 if output done }
                        }
                    }
                }
            "#
            .into(),
        },
    )?;

    sys.run();
    let outcome = sys.outcome("d1").expect("diamond completes");
    println!("diamond outcome: {}", outcome.objects["out"].as_text());
    println!("reconfigurations applied: {}", sys.stats().reconfigs);
    let states = sys.task_states("d1");
    println!("t5: {:?}", states["diamond/t5"]);
    assert_eq!(sys.stats().reconfigs, 2);
    assert!(outcome.objects["out"].as_text().contains("v2"));
    Ok(())
}
