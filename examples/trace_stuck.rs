//! The flight recorder as a debugging tool: a fact is corrupted in
//! storage, the instance parks itself as `Stuck{fact storage fault}`,
//! and `WorkflowSystem::trace` prints the recorder's explanation of
//! exactly what happened and when. The operator then repairs the fact
//! with `repair_fact` and the instance completes.
//!
//! ```sh
//! cargo run --example trace_stuck
//! ```

use flowscript::prelude::*;
use flowscript_engine::coordinator::EngineConfig;

const JOIN: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Join {
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task fast of taskclass Work {
        implementation { "code" is "refFast" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task slow of taskclass Work {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task join of taskclass Join {
        implementation { "code" is "refJoin" };
        inputs { input main {
            inputobject left from { out of task fast if output done };
            inputobject right from { out of task slow if output done }
        } }
    };
    outputs { outcome done { notification from { task join if output done } } }
}
"#;

fn main() -> Result<(), EngineError> {
    let config = EngineConfig {
        // Full tracing: every lifecycle event lands in the recorder.
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(2026)
        .config(config)
        .build();
    sys.register_script("join", JOIN, "root")?;
    sys.bind_fn("refFast", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(5))
            .with_object("out", ObjectVal::text("Data", "fast"))
    });
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(200))
            .with_object("out", ObjectVal::text("Data", "slow"))
    });
    sys.bind_fn("refJoin", |_| TaskBehavior::outcome("done"));

    sys.start(
        "j-1",
        "join",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )?;

    // The fast producer commits its fact, then "disk corruption" hits
    // the stored record while the slow producer is still executing.
    sys.run_for(SimDuration::from_millis(50));
    assert!(sys.poison_fact("j-1", "root/fast", "done"));
    sys.run();

    // The instance has parked itself with a diagnosis…
    let status = sys.status("j-1")?;
    println!("status: {status:?}\n");
    assert!(matches!(status, InstanceStatus::Stuck { .. }));

    // …and the flight recorder explains the whole lifecycle: starts,
    // dispatches, commits, and finally the stuck event naming the
    // fault.
    println!("flight recorder for j-1:");
    for event in sys.trace("j-1") {
        println!("  {event}");
    }

    // The repair: re-publish the fact the storage fault destroyed. The
    // instance revives, the join dispatches, the workflow completes.
    sys.repair_fact(
        "j-1",
        "root/fast",
        "done",
        [("out", ObjectVal::text("Data", "fast"))],
    )?;
    sys.run();
    let outcome = sys.outcome("j-1").expect("repaired instance completes");
    println!(
        "\nafter repair_fact: outcome `{}` at {}",
        outcome.name,
        sys.now()
    );

    println!("\nfull trace including the repair:");
    for event in sys.trace("j-1") {
        println!("  {event}");
    }

    // The unified metrics registry watched the same run.
    let snapshot = sys.metrics_snapshot();
    println!(
        "\nmetrics: {} dispatches, {} tx commits, commit-drain p99 {}",
        snapshot.counter("coord.dispatches"),
        snapshot.counter("tx.commits"),
        snapshot
            .histogram("coord.commit_drain_len")
            .map_or(0, |h| h.p99),
    );
    assert_eq!(outcome.name, "done");
    Ok(())
}
