//! §5.3 / Figs. 8–9: the business trip application.
//!
//! Demonstrates, in one workflow:
//! - **redundant data sources**: three parallel airline queries, first
//!   answer wins (`flightFound` maps alternatives from all three),
//! - **compensation**: if the hotel cannot be booked, the compensating
//!   task `flightCancellation` undoes the flight reservation,
//! - **looping via a repeat outcome**: `businessReservation` retries
//!   until it reaches a final outcome (Fig. 8),
//! - **marks (early release)**: the cost is released through the `toPay`
//!   mark while `tripReservation` is still running.
//!
//! ```sh
//! cargo run --example business_trip
//! ```

use std::cell::Cell;
use std::rc::Rc;

use flowscript::prelude::*;
use flowscript_engine::TaskBehavior as TB;

fn main() -> Result<(), EngineError> {
    let mut sys = WorkflowSystem::builder().executors(4).seed(99).build();
    sys.register_script(
        "trip",
        flowscript::samples::BUSINESS_TRIP,
        "tripReservation",
    )?;

    sys.bind_fn("refDataAcquisition", |ctx| {
        TB::outcome("acquired").with_object(
            "tripData",
            ObjectVal::text(
                "TripData",
                format!("AMS 26–29 May 1998, ≤ £500, for {}", ctx.input_text("user")),
            ),
        )
    });

    // Three airlines answer at different speeds; A finds nothing.
    sys.bind_fn("refAirlineQueryA", |_| {
        TB::outcome("notFound").with_work(SimDuration::from_millis(35))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TB::outcome("found")
            .with_work(SimDuration::from_millis(90))
            .with_object(
                "flightList",
                ObjectVal::text(
                    "FlightList",
                    format!("KL-1234 [{}]", ctx.input_text("tripData")),
                ),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TB::outcome("found")
            .with_work(SimDuration::from_millis(150))
            .with_object(
                "flightList",
                ObjectVal::text(
                    "FlightList",
                    format!("BA-5678 [{}]", ctx.input_text("tripData")),
                ),
            )
    });

    sys.bind_fn("refFlightReservation", |ctx| {
        TB::outcome("reserved")
            .with_object(
                "plane",
                ObjectVal::text(
                    "Plane",
                    format!("seat 12A on {}", ctx.input_text("flightList")),
                ),
            )
            .with_object("cost", ObjectVal::text("Cost", "£432"))
    });

    // The hotel is full twice; the third incarnation succeeds. Each
    // failure triggers the compensation (flight cancellation) and a
    // businessReservation repeat.
    let hotel_attempts = Rc::new(Cell::new(0u32));
    let attempts = hotel_attempts.clone();
    sys.bind_fn("refHotelReservation", move |_| {
        attempts.set(attempts.get() + 1);
        if attempts.get() <= 2 {
            TB::outcome("failed").with_work(SimDuration::from_millis(70))
        } else {
            TB::outcome("hotelBooked")
                .with_work(SimDuration::from_millis(70))
                .with_object("hotel", ObjectVal::text("Hotel", "Hotel Krasnapolsky"))
        }
    });
    sys.bind_fn("refFlightCancellation", |ctx| {
        println!("  compensation: cancelling {}", ctx.input_text("plane"));
        TB::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |ctx| {
        TB::outcome("printed").with_object(
            "tickets",
            ObjectVal::text(
                "Tickets",
                format!("{} + {}", ctx.input_text("plane"), ctx.input_text("hotel")),
            ),
        )
    });

    sys.start(
        "trip-1",
        "trip",
        "main",
        [("user", ObjectVal::text("User", "s.k.shrivastava"))],
    )?;
    sys.run();

    let outcome = sys.outcome("trip-1").expect("trip settles");
    println!("\noutcome: {}", outcome.name);
    assert_eq!(outcome.name, "booked");
    println!("tickets: {}", outcome.objects["tickets"].as_text());
    println!("hotel attempts: {}", hotel_attempts.get());
    println!("compound repeats taken: {}", sys.stats().repeats);

    // The `toPay` mark was released before the trip finished.
    let to_pay = sys
        .output_fact("trip-1", "tripReservation", "toPay")
        .expect("mark released");
    println!("toPay mark: {}", to_pay["cost"].as_text());
    assert_eq!(sys.stats().repeats, 2);
    Ok(())
}
