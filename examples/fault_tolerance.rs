//! System-level fault tolerance under a scripted fault plan: executor
//! crashes, a coordinator crash with write-ahead-log recovery, and a
//! healing network partition — the order application completes anyway.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use flowscript::prelude::*;
use flowscript_engine::coordinator::EngineConfig;

fn main() -> Result<(), EngineError> {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(25),
        max_retries: 6,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .seed(2024)
        .config(config)
        .build();
    sys.register_script(
        "order",
        flowscript::samples::ORDER_PROCESSING,
        "processOrderApplication",
    )?;

    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(60))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "visa-….1234"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(80))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "warehouse-2"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(100))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "parcel-77"))
    });
    sys.bind_fn("refPaymentCapture", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(40))
    });

    // The fault plan: an executor dies mid-run; the coordinator crashes
    // and recovers; the network partitions briefly.
    let executor0 = sys.executor_nodes()[0];
    let coordinator = sys.coordinator_node();
    let executors = sys.executor_nodes().to_vec();
    let plan = FaultPlan::new()
        .at(
            SimTime::from_nanos(30_000_000),
            FaultAction::Crash(executor0),
        )
        .at(
            SimTime::from_nanos(120_000_000),
            FaultAction::Crash(coordinator),
        )
        .at(
            SimTime::from_nanos(200_000_000),
            FaultAction::Restart(coordinator),
        )
        .at(
            SimTime::from_nanos(250_000_000),
            FaultAction::Partition(vec![coordinator], executors),
        )
        .at(SimTime::from_nanos(600_000_000), FaultAction::HealAll);
    println!("fault plan: {} scheduled failures/repairs", plan.len());
    sys.apply_faults(&plan);

    sys.start(
        "o-1",
        "order",
        "main",
        [("order", ObjectVal::text("Order", "order-42"))],
    )?;
    sys.run();

    let outcome = sys.outcome("o-1").expect("the order survives the faults");
    println!("outcome: {} at {}", outcome.name, sys.now());
    let stats = sys.stats();
    println!(
        "dispatches: {}, retries: {}, recovered instances: {}",
        stats.dispatches, stats.retries, stats.recovered_instances
    );
    let trace = sys.sim_trace();
    println!(
        "trace: {} events, {} deliveries, {} drops to down nodes",
        trace.len(),
        trace.deliveries(),
        trace.drops(flowscript_sim::trace::DropReason::NodeDown)
            + trace.drops(flowscript_sim::trace::DropReason::StaleIncarnation)
            + trace.drops(flowscript_sim::trace::DropReason::Partition)
    );
    assert_eq!(outcome.name, "orderCompleted");
    assert!(stats.recovered_instances >= 1, "recovery must have run");
    Ok(())
}
