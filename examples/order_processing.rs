//! §5.2 / Fig. 7: electronic order processing.
//!
//! `paymentAuthorisation` and `checkStock` run concurrently; `dispatch`
//! starts only when payment is authorised (notification) *and* stock
//! information arrives (dataflow); `paymentCapture` runs after dispatch.
//! The `dispatchFailed` output is an **abort outcome**: dispatch is an
//! atomic task, and an abort means no side effects escaped.
//!
//! ```sh
//! cargo run --example order_processing
//! ```

use flowscript::prelude::*;

fn run_order(order_id: &str, in_stock: bool, seed: u64) -> Outcome {
    let mut sys = WorkflowSystem::builder().executors(4).seed(seed).build();
    sys.register_script(
        "order",
        flowscript::samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .expect("sample script is valid");

    sys.bind_fn("refPaymentAuthorisation", |ctx| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(80))
            .with_object(
                "paymentInfo",
                ObjectVal::text("PaymentInfo", format!("auth({})", ctx.input_text("order"))),
            )
    });
    let stocked = in_stock;
    sys.bind_fn("refCheckStock", move |ctx| {
        if stocked {
            TaskBehavior::outcome("stockAvailable")
                .with_work(SimDuration::from_millis(40))
                .with_object(
                    "stockInfo",
                    ObjectVal::text(
                        "StockInfo",
                        format!("bin-C4 for {}", ctx.input_text("order")),
                    ),
                )
        } else {
            TaskBehavior::outcome("stockNotAvailable").with_work(SimDuration::from_millis(40))
        }
    });
    sys.bind_fn("refDispatch", |ctx| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(120))
            .with_object(
                "dispatchNote",
                ObjectVal::text(
                    "DispatchNote",
                    format!("shipped from {}", ctx.input_text("stockInfo")),
                ),
            )
    });
    sys.bind_fn("refPaymentCapture", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(60))
    });

    sys.start(
        order_id,
        "order",
        "main",
        [("order", ObjectVal::text("Order", order_id))],
    )
    .expect("starts");
    sys.run();

    println!("order {order_id}:");
    for (path, state) in sys.task_states(order_id) {
        println!("  {path}: {state:?}");
    }
    let outcome = sys.outcome(order_id).expect("terminates");
    println!("  → {} (virtual time {})\n", outcome.name, sys.now());
    outcome
}

fn main() {
    let completed = run_order("order-1001", true, 10);
    assert_eq!(completed.name, "orderCompleted");
    println!(
        "dispatch note: {}",
        completed.objects["dispatchNote"].as_text()
    );

    let cancelled = run_order("order-1002", false, 11);
    assert_eq!(cancelled.name, "orderCancelled");
    println!("order-1002 was cancelled (stock unavailable), as scripted.");
}
