//! §5.1 / Fig. 6: the network-management *service impact application*.
//!
//! An alarm source feeds an alarm correlator; the deduced fault is
//! analysed for service impact; a resolution step restructures services.
//! The same compound task is instantiated for two scenarios by binding
//! different implementations — the paper's "template application" idea.
//!
//! ```sh
//! cargo run --example network_management
//! ```

use flowscript::prelude::*;

fn bind_common(sys: &WorkflowSystem) {
    sys.bind_fn("refAlarmCorrelator", |ctx| {
        let alarms = ctx.input_text("alarmSource");
        TaskBehavior::outcome("foundFault").with_object(
            "faultReport",
            ObjectVal::text("FaultReport", format!("correlated fault from [{alarms}]")),
        )
    });
    sys.bind_fn("refServiceImpactAnalysis", |ctx| {
        TaskBehavior::outcome("foundImpacts").with_object(
            "serviceImpactReports",
            ObjectVal::text(
                "ServiceImpactReports",
                format!("impacted services for: {}", ctx.input_text("faultReport")),
            ),
        )
    });
}

fn main() -> Result<(), EngineError> {
    // Scenario 1: the fault is resolvable (reschedule a low-priority
    // service off the degraded link).
    let mut sys = WorkflowSystem::builder().executors(3).seed(1).build();
    sys.register_script(
        "service-impact",
        flowscript::samples::SERVICE_IMPACT,
        "serviceImpactApplication",
    )?;
    bind_common(&sys);
    sys.bind_fn("refServiceImpactResolution", |ctx| {
        TaskBehavior::outcome("foundResolution").with_object(
            "resolutionReport",
            ObjectVal::text(
                "ResolutionReport",
                format!(
                    "rescheduled bulk transfers; kept voice ({})",
                    ctx.input_text("serviceImpactReports")
                ),
            ),
        )
    });
    sys.start(
        "incident-17",
        "service-impact",
        "main",
        [(
            "alarmsSource",
            ObjectVal::text("AlarmsSource", "link-7 loss, bandwidth degradation"),
        )],
    )?;
    sys.run();
    let outcome = sys.outcome("incident-17").expect("application terminates");
    println!("scenario 1 — outcome: {}", outcome.name);
    println!("  {}", outcome.objects["resolutionReport"].as_text());
    assert_eq!(outcome.name, "resolved");

    // Scenario 2: no resolution exists; the compound task reports
    // `notResolved` through its notification mapping.
    let mut sys = WorkflowSystem::builder().executors(3).seed(2).build();
    sys.register_script(
        "service-impact",
        flowscript::samples::SERVICE_IMPACT,
        "serviceImpactApplication",
    )?;
    bind_common(&sys);
    sys.bind_fn("refServiceImpactResolution", |_| {
        TaskBehavior::outcome("foundNoResolution")
    });
    sys.start(
        "incident-18",
        "service-impact",
        "main",
        [(
            "alarmsSource",
            ObjectVal::text("AlarmsSource", "core router down"),
        )],
    )?;
    sys.run();
    let outcome = sys.outcome("incident-18").expect("terminates");
    println!("scenario 2 — outcome: {}", outcome.name);
    assert_eq!(outcome.name, "notResolved");

    Ok(())
}
