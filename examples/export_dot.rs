//! Renders the paper's three applications as Graphviz graphs in the
//! paper's visual idiom (solid = dataflow, dashed = notification,
//! double-bordered = abort outcome, dotted = repeat, dashed ellipse =
//! mark).
//!
//! ```sh
//! cargo run --example export_dot > figures.dot
//! dot -Tsvg figures.dot -o figures.svg   # if graphviz is installed
//! ```

use flowscript::lang::dot;
use flowscript::lang::schema::compile_source;
use flowscript::samples;

fn main() {
    for (name, source) in samples::all() {
        let root = samples::root_of(name);
        let schema = compile_source(source, root).expect("sample compiles");
        println!("// ==== {name} (root: {root}) ====");
        println!("{}", dot::render(&schema));
    }
}
