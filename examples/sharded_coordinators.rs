//! Sharded coordinators: instance ownership split across four
//! execution-service nodes by rendezvous hash of the instance name.
//! Twelve orders spread over the shards; mid-run, one coordinator node
//! crashes and recovers **its shard alone** from its own write-ahead
//! log while the other three keep committing.
//!
//! ```sh
//! cargo run --example sharded_coordinators
//! ```

use flowscript::prelude::*;
use flowscript_engine::coordinator::EngineConfig;

fn main() -> Result<(), EngineError> {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(25),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .coordinators(4)
        .executors(3)
        .seed(1998)
        .config(config)
        .build();
    sys.register_script(
        "order",
        flowscript::samples::ORDER_PROCESSING,
        "processOrderApplication",
    )?;

    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(60))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "visa"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(80))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "warehouse-2"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(40))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "sent"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));

    // Twelve orders, rendezvous-spread over the four shards.
    let orders: Vec<String> = (0..12).map(|i| format!("order-{i:02}")).collect();
    for name in &orders {
        sys.start(
            name,
            "order",
            "main",
            [("order", ObjectVal::text("Order", name))],
        )?;
        println!("{name} → shard {}", sys.shard_of(name));
    }

    // Crash the shard owning order-00 mid-flight; restart 150ms later.
    let victim = sys.coordinator_node_for(&orders[0]);
    let victim_shard = sys.shard_of(&orders[0]);
    sys.apply_faults(&FaultPlan::crash_restart(
        victim,
        SimTime::from_nanos(70_000_000),
        SimDuration::from_millis(150),
    ));
    println!("\nscheduled crash of shard {victim_shard} at t+70ms …\n");
    sys.run();

    for name in &orders {
        let outcome = sys.outcome(name).expect("order completes");
        assert_eq!(outcome.name, "orderCompleted");
    }
    println!(
        "all {} orders completed (virtual time {})",
        orders.len(),
        sys.now()
    );
    for shard in 0..sys.shard_count() {
        let stats = sys.shard_stats(shard);
        println!(
            "shard {shard}: dispatches {:>2}, recovered instances {}, forwarded {}",
            stats.dispatches, stats.recovered_instances, stats.forwarded
        );
    }
    assert!(sys.shard_stats(victim_shard).recovered_instances > 0);
    assert!((0..sys.shard_count())
        .filter(|&s| s != victim_shard)
        .all(|s| sys.shard_stats(s).recovered_instances == 0));
    println!("shard {victim_shard} replayed its own WAL; the others never ran recovery");
    Ok(())
}
